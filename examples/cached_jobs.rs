//! Cached jobs: cross-job memoization through the shared result cache.
//!
//! ```sh
//! cargo run --release --example cached_jobs
//! ```
//!
//! A [`SharedCache`] is one content-addressed, byte-budgeted store of
//! (a) per-split raw map output and (b) sealed whole-job results. Keys
//! hash the input bytes plus the app identity and the config knobs that
//! shape the artifact, so identical work deduplicates across jobs,
//! runs, and tenants — and anything that differs cannot alias. Warm
//! runs are byte-identical to cold ones; only the `cache.*` counters
//! tell them apart.

use barrier_mapreduce::apps::WordCount;
use barrier_mapreduce::core::counters::names;
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{
    serve, CacheBudget, HashPartitioner, JobConfig, ServiceConfig, SharedCache,
};
use std::time::Instant;

fn splits_for(tag: usize) -> Vec<Vec<(u64, String)>> {
    (0..6)
        .map(|s| {
            (0..400)
                .map(|l| {
                    (
                        l as u64,
                        format!("tag{tag} word{} word{} cached", (s + l) % 7, l % 5),
                    )
                })
                .collect()
        })
        .collect()
}

fn main() {
    // Jobs opt in per config; the budget bounds resident artifact bytes
    // with LRU eviction (an oversized artifact is refused, not stored).
    let cfg = JobConfig::new(4).cache(CacheBudget::enabled());
    let cache = SharedCache::new(32 << 20);
    let runner = LocalRunner::new(4);
    let splits = splits_for(0);

    // Cold: every split misses, artifacts are published on the way out.
    let t = Instant::now();
    let cold = runner
        .run_cached(&WordCount, splits.clone(), &cfg, &HashPartitioner, &cache)
        .expect("cold run");
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    // Warm: the whole-job artifact hits; map and reduce never run.
    let t = Instant::now();
    let warm = runner
        .run_cached(&WordCount, splits.clone(), &cfg, &HashPartitioner, &cache)
        .expect("warm run");
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        cold.partitions, warm.partitions,
        "warm output must be byte-identical"
    );
    assert!(warm.counters.get(names::CACHE_HITS) >= 1);
    println!(
        "cold {cold_ms:.2} ms ({} misses) -> warm {warm_ms:.2} ms ({} hits), {} bytes resident",
        cold.counters.get(names::CACHE_MISSES),
        warm.counters.get(names::CACHE_HITS),
        cache.used_bytes(),
    );

    // The same cache semantics at the service layer: `serve` owns one
    // cache for every tenant, sized by the service config. Content
    // addressing is the isolation story — tenant 1 hits only because it
    // submitted bit-for-bit the work tenant 0 already paid for.
    let svc_cfg = ServiceConfig::new(2)
        .pool_workers(2)
        .cache(CacheBudget::Limit { bytes: 32 << 20 });
    let ((first, second), report) = serve(&WordCount, &HashPartitioner, &svc_cfg, |svc| {
        let first = svc
            .submit(0, splits_for(1), &cfg)
            .expect("admitted")
            .wait()
            .expect("tenant 0 job");
        let second = svc
            .submit(1, splits_for(1), &cfg)
            .expect("admitted")
            .wait()
            .expect("tenant 1 job");
        (first, second)
    })
    .expect("service session");
    assert_eq!(first.partitions, second.partitions);
    assert!(second.counters.get(names::CACHE_HITS) >= 1);
    println!(
        "service: tenant 0 computed ({} misses), tenant 1 hit ({} hits), {} jobs completed",
        first.counters.get(names::CACHE_MISSES),
        second.counters.get(names::CACHE_HITS),
        report.completed,
    );
}
