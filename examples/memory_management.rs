//! Memory management under the barrier-less engine (§5): the same job
//! run with an unbounded in-memory store, a capped one (which dies), the
//! disk spill-and-merge store, and the KV-backed store — all producing
//! identical output where they survive.
//!
//! ```sh
//! cargo run --release --example memory_management
//! ```

use barrier_mapreduce::apps::UniqueListens;
use barrier_mapreduce::core::counters::names;
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{Engine, JobConfig, MemoryPolicy, MrError};
use barrier_mapreduce::workloads::LastFmWorkload;

fn main() {
    // Unique-listener counting: the post-reduction class whose partial
    // results grow with records — the paper's motivating OOM case.
    let workload = LastFmWorkload {
        seed: 99,
        users: 200_000,
        tracks: 500,
        listens_per_chunk: 5_000,
    };
    let splits: Vec<_> = (0..8).map(|c| workload.chunk(c)).collect();
    let runner = LocalRunner::new(4);
    let scratch = std::env::temp_dir().join("mr-example-memmgmt");

    let mut reference = None;
    for (label, policy, cap) in [
        ("in-memory (unbounded)", MemoryPolicy::InMemory, None),
        (
            "in-memory (64 KB cap)",
            MemoryPolicy::InMemory,
            Some(64 << 10),
        ),
        (
            "spill-and-merge (64 KB threshold)",
            MemoryPolicy::SpillMerge {
                threshold_bytes: 64 << 10,
            },
            None,
        ),
        (
            "kv-store (32 KB cache)",
            MemoryPolicy::KvStore {
                cache_bytes: 32 << 10,
            },
            None,
        ),
    ] {
        let mut cfg = JobConfig::new(2)
            .engine(Engine::BarrierLess { memory: policy })
            .scratch_dir(&scratch);
        cfg.heap_cap_bytes = cap;
        match runner.run(&UniqueListens, splits.clone(), &cfg) {
            Ok(out) => {
                let spills = out.counters.get(names::SPILL_FILES);
                let kv_miss = out.counters.get(names::KV_CACHE_MISSES);
                let peak = out.max_peak_bytes();
                let result = out.into_sorted_output();
                if let Some(reference) = &reference {
                    assert_eq!(&result, reference, "policies must agree");
                } else {
                    reference = Some(result.clone());
                }
                println!(
                    "{label:<34} OK    peak heap {:>8} B  spills {spills:>3}  kv misses {kv_miss:>6}  ({} tracks)",
                    peak,
                    result.len()
                );
            }
            Err(MrError::OutOfMemory {
                reducer,
                used_bytes,
                cap_bytes,
            }) => {
                println!(
                    "{label:<34} DIED  reducer {reducer} used {used_bytes} B > cap {cap_bytes} B (the Figure 5a failure)"
                );
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
}
