//! Log analysis: chain two MapReduce jobs — a Distributed Grep (the
//! paper's Identity class) filtering error lines, then an aggregation
//! counting errors per service. The grep stage runs barrier-less at zero
//! conversion cost; the aggregation keeps per-service partial results.
//!
//! ```sh
//! cargo run --release --example log_analysis
//! ```

use barrier_mapreduce::apps::Grep;
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{Application, Emit, Engine, JobConfig};

/// Counts matched error lines per service (the token after "svc=").
struct ErrorsPerService;

impl Application for ErrorsPerService {
    type InKey = u64;
    type InValue = String;
    type MapKey = String;
    type MapValue = u64;
    type OutKey = String;
    type OutValue = u64;
    type State = u64;
    type Shared = ();

    fn map(&self, _line: &u64, text: &String, out: &mut dyn Emit<String, u64>) {
        if let Some(svc) = text
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("svc="))
        {
            out.emit(svc.to_string(), 1);
        }
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        k: &String,
        v: Vec<u64>,
        _s: &mut (),
        out: &mut dyn Emit<String, u64>,
    ) {
        out.emit(k.clone(), v.iter().sum());
    }

    fn init(&self, _k: &String) -> u64 {
        0
    }

    fn absorb(
        &self,
        _k: &String,
        state: &mut u64,
        v: u64,
        _s: &mut (),
        _o: &mut dyn Emit<String, u64>,
    ) {
        *state += v;
    }

    fn merge(&self, _k: &String, a: u64, b: u64) -> u64 {
        a + b
    }

    fn finalize(&self, k: String, state: u64, _s: &mut (), out: &mut dyn Emit<String, u64>) {
        out.emit(k, state);
    }
}

fn synthetic_logs(lines: u64) -> Vec<Vec<(u64, String)>> {
    let services = ["auth", "billing", "search", "frontend"];
    let levels = ["INFO", "INFO", "INFO", "WARN", "ERROR"];
    let mut splits = vec![Vec::new(); 4];
    for i in 0..lines {
        let svc = services[(i % 7 % 4) as usize];
        let level = levels[(i * 2654435761 % 5) as usize];
        splits[(i % 4) as usize].push((
            i,
            format!("{level} svc={svc} req={i} latency={}ms", i % 900),
        ));
    }
    splits
}

fn main() {
    let logs = synthetic_logs(10_000);
    let runner = LocalRunner::new(4);

    // Stage 1: barrier-less grep — results stream straight to output, no
    // partial results at all (Table 1: Identity, O(1)).
    let grep_cfg = JobConfig::new(4).engine(Engine::barrierless());
    let errors = runner
        .run(&Grep::new("ERROR"), logs, &grep_cfg)
        .expect("grep stage");
    println!(
        "grep stage: {} error lines found, peak partial results = {}",
        errors.record_count(),
        errors.total_peak_entries(),
    );

    // Stage 2: feed the matches into the aggregation job.
    let stage2_input: Vec<Vec<(u64, String)>> = errors
        .partitions
        .into_iter()
        .filter(|p| !p.is_empty())
        .collect();
    let agg_cfg = JobConfig::new(2).engine(Engine::barrierless());
    let per_service = runner
        .run(&ErrorsPerService, stage2_input, &agg_cfg)
        .expect("aggregation stage");

    println!("errors per service:");
    for (svc, count) in per_service.into_sorted_output() {
        println!("  {svc:<10} {count}");
    }
}
