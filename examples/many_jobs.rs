//! Many small jobs on one fixed-size worker pool.
//!
//! ```sh
//! cargo run --release --example many_jobs
//! ```
//!
//! Thread-per-task execution would need hundreds of OS threads to run
//! this batch concurrently; the pool runtime multiplexes every job's
//! task state machines onto [`JobConfig::pool_workers`] threads and
//! reports the peak thread count as evidence.

use barrier_mapreduce::apps::WordCount;
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{Engine, HashPartitioner, JobConfig};

fn main() {
    const JOBS: usize = 64;

    // Each job: two splits of synthetic text, seeded by job id so the
    // answers differ.
    let jobs: Vec<Vec<Vec<(u64, String)>>> = (0..JOBS)
        .map(|j| {
            (0..2)
                .map(|s| {
                    (0..8)
                        .map(|line| {
                            let text = format!(
                                "job {j} split {s} line word{} word{} barrier",
                                (j + line) % 5,
                                (j * 3 + line) % 7
                            );
                            (line as u64, text)
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let cfg = JobConfig::new(2)
        .engine(Engine::barrierless())
        .pool_workers(4);
    let batch = LocalRunner::new(2)
        .run_many(&WordCount, jobs, &cfg, &HashPartitioner)
        .expect("batch");

    let ok = batch.jobs.iter().filter(|j| j.is_ok()).count();
    println!(
        "{ok}/{JOBS} jobs completed on {} pool workers (peak live pool threads: {})",
        batch.pool.workers, batch.pool.peak_threads
    );
    assert_eq!(ok, JOBS);
    assert!(batch.pool.peak_threads <= batch.pool.workers);

    // Spot-check one job's answer.
    let first = batch.jobs[0].as_ref().expect("job 0");
    let count = first
        .partitions
        .iter()
        .flatten()
        .find(|(w, _)| w == "barrier")
        .map(|(_, c)| *c)
        .expect("'barrier' appears in every line");
    println!("job 0 counted 'barrier' {count} times");
    assert_eq!(count, 16);
}
