//! A multi-tenant job service over one long-lived worker pool.
//!
//! ```sh
//! cargo run --release --example job_service
//! ```
//!
//! `serve` owns a pool for the whole session: tenants submit jobs
//! continuously, admission is bounded and typed (a full queue or a
//! blown quota rejects instead of hanging), slots are shared by
//! deficit-style weighted fairness, and every task span is
//! tenant-stamped so the trace answers "who used the cluster".

use barrier_mapreduce::apps::WordCount;
use barrier_mapreduce::core::{
    serve, Engine, HashPartitioner, JobConfig, ServiceConfig, SubmitError, TenantSpec, TraceQuery,
};

fn main() {
    // Two tenants: "batch" (weight 1) and "analytics" (weight 3, so it
    // gets ~3x the slot share while both have work), plus a queued-job
    // quota on batch — large enough for the steady workload below (12
    // jobs), tight enough that the later flood shows a typed rejection.
    let svc_cfg = ServiceConfig::new(2)
        .tenant(0, TenantSpec::default().weight(1).max_queued_jobs(16))
        .tenant(1, TenantSpec::default().weight(3))
        .pool_workers(4);

    let job_cfg = JobConfig::new(2).engine(Engine::barrierless());
    let splits_for = |j: usize| -> Vec<Vec<(u64, String)>> {
        vec![(0..12)
            .map(|line| {
                (
                    line as u64,
                    format!(
                        "job {j} line word{} word{} service",
                        (j + line) % 5,
                        line % 3
                    ),
                )
            })
            .collect()]
    };

    let (outputs, report) = serve(&WordCount, &HashPartitioner, &svc_cfg, |svc| {
        // Both tenants flood the service; waits interleave with
        // submissions, as a long-lived server's would.
        let handles: Vec<_> = (0..24)
            .map(|j| {
                svc.submit(j % 2, splits_for(j), &job_cfg)
                    .expect("admitted")
            })
            .collect();
        let mut outputs = Vec::new();
        for (j, h) in handles.into_iter().enumerate() {
            let out = h.wait().expect("job result");
            let words: u64 = out.partitions.iter().flatten().map(|(_, c)| c).sum();
            println!("job {j:>2} (tenant {}): {words} words", j % 2);
            outputs.push(out);
        }
        // Overflow batch's queued-job quota on purpose: the service
        // answers with a typed reason, not a hang or a panic.
        let flood: Vec<_> = (0..64)
            .map(|j| svc.submit(0, splits_for(j), &job_cfg))
            .collect();
        if let Some(Err(SubmitError::Rejected { reason })) = flood.into_iter().find(|r| r.is_err())
        {
            println!("overload answered gracefully: {reason}");
        }
        outputs
    })
    .expect("service session");

    println!(
        "service session: {} admitted, {} rejected, {} completed",
        report.admitted, report.rejected, report.completed
    );
    assert!(report.completed >= 24);

    // Every job's trace is tenant-stamped; summed, they break the
    // session's task time down by tenant.
    let mut busy = std::collections::BTreeMap::new();
    for out in &outputs {
        for (tenant, secs) in TraceQuery::new(&out.trace).per_tenant_secs() {
            *busy.entry(tenant).or_insert(0.0) += secs;
        }
    }
    for (tenant, secs) in busy {
        println!("tenant {tenant} busy {:.3}ms of task time", secs * 1e3);
    }
}
