//! Monte-Carlo option pricing — the paper's best case (§6.1.6): a
//! single-reducer aggregation whose barrier-less form needs only O(1)
//! memory (running sums) and no sort at all.
//!
//! ```sh
//! cargo run --release --example options_pricing
//! ```

use barrier_mapreduce::apps::BlackScholes;
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{Engine, JobConfig};
use barrier_mapreduce::workloads::PricingWorkload;

fn main() {
    // 16 "mappers", each drawing 50k Monte-Carlo samples of an
    // at-the-money European call (S=K=100, r=5%, sigma=20%, T=1y).
    let workload = PricingWorkload::new(2024, 50_000);
    let splits: Vec<_> = (0..16).map(|m| workload.chunk(m)).collect();
    let analytic = BlackScholes::analytic_price(&splits[0][0].1);

    let cfg = JobConfig::new(1).engine(Engine::barrierless());
    let out = LocalRunner::new(8)
        .run(&BlackScholes, splits, &cfg)
        .expect("pricing job");

    assert_eq!(
        out.reports[0].store.peak_entries, 0,
        "single-reducer aggregation keeps no per-key state"
    );
    let (_, (mean, std, n)) = out.partitions[0][0];
    let stderr = std / (n as f64).sqrt();
    println!("samples:          {n}");
    println!("Monte-Carlo mean: {mean:.4} ± {stderr:.4}");
    println!("analytic price:   {analytic:.4}");
    println!("payoff stddev:    {std:.4}");
    println!(
        "abs error:        {:.4} ({:.2} standard errors)",
        (mean - analytic).abs(),
        (mean - analytic).abs() / stderr
    );
}
