//! Simulated-cluster run: WordCount on the paper's 15-worker testbed,
//! with and without the barrier — a miniature of Figure 4, showing where
//! each stage starts and ends and what the barrier costs.
//!
//! ```sh
//! cargo run --release --example cluster_simulation
//! ```

use barrier_mapreduce::cluster::{ClusterParams, CostModel, FnInput, SimExecutor, SpanKind};
use barrier_mapreduce::core::{Engine, HashPartitioner, JobConfig};
use barrier_mapreduce::workloads::TextWorkload;

fn main() {
    let workload = TextWorkload::wikipedia(7);
    let chunks = 48; // 3 GB of 64 MB chunks
    let costs = CostModel {
        map_cpu_per_chunk: 45.0,
        shuffle_selectivity: 1.0,
        reduce_cpu_per_record: 5.0e-4,
        combine_cpu_per_record: 2.0e-4,
        absorb_extra_per_record: 0.0,
        kv_cpu_per_record: 0.03,
        sort_cpu_coeff: 3.2e-4,
        finalize_cpu_per_entry: 1.0e-3,
        snapshot_cpu_per_record: 1.0e-4,
        output_selectivity: 0.5,
        chain_map_cpu_per_record: 5.0e-3,
        chain_handoff_byte_scale: 4096.0,
        speculation_launch_overhead_secs: 1.0,
        speculation_cancel_overhead_secs: 0.5,
    };

    for engine in [Engine::Barrier, Engine::barrierless()] {
        let label = match engine {
            Engine::Barrier => "WITH barrier",
            _ => "WITHOUT barrier",
        };
        let exec = SimExecutor::new(ClusterParams::paper_testbed(7));
        let cfg = JobConfig::new(40).engine(engine);
        let report = exec.run(
            &barrier_mapreduce::apps::WordCount,
            &FnInput(|c| workload.chunk(c)),
            chunks,
            &cfg,
            &costs,
            &HashPartitioner,
        );
        println!("== {label} ==");
        println!(
            "  maps: first done {:>6.1}s, last done {:>6.1}s (mapper slack {:.1}s)",
            report.first_map_done.as_secs_f64(),
            report.last_map_done.as_secs_f64(),
            report.mapper_slack_secs(),
        );
        for (kind, name) in [
            (SpanKind::Shuffle, "shuffle"),
            (SpanKind::SortReduce, "sort+reduce"),
            (SpanKind::ShuffleReduce, "shuffle+reduce"),
            (SpanKind::Output, "output write"),
        ] {
            if let Some((start, end)) = report.timeline.kind_window(kind) {
                println!(
                    "  {name:<14} {:>6.1}s .. {:>6.1}s",
                    start.as_secs_f64(),
                    end.as_secs_f64()
                );
            }
        }
        println!(
            "  job completed {:>6.1}s | shuffled {} MB | {} map tasks, {} reduce tasks\n",
            report.completion_secs(),
            report.shuffle_bytes >> 20,
            report.map_tasks_run,
            report.reduce_tasks_run,
        );
    }
}
