//! Chained jobs: `grep → sort` log analysis with no barrier *between*
//! the jobs.
//!
//! Job 1 (Distributed Grep, the Identity class) filters error lines out
//! of a generated log; job 2 (Sort) orders the matching timestamps.
//! Classic frameworks materialize job 1's full output before job 2's
//! map stage may start. With [`HandoffMode::Streaming`] every record a
//! grep reducer emits flows straight into the sort stage's map intake
//! through the same bounded batched channels the shuffle uses — sort
//! work overlaps grep work, and the final output is identical byte for
//! byte.
//!
//! ```sh
//! cargo run --release --example job_chain
//! ```

use barrier_mapreduce::apps::sort::RangePartitioner;
use barrier_mapreduce::apps::{Grep, Sort};
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{ChainSpec, Engine, HandoffMode, HashPartitioner, JobConfig};

/// A deterministic "log": every fifth line is an error, ids are
/// timestamps.
fn log_splits() -> Vec<Vec<(u64, String)>> {
    (0..8)
        .map(|chunk| {
            (0..500u64)
                .map(|line| {
                    let ts = chunk * 10_000 + line;
                    let text = if ts % 5 == 0 {
                        format!("ts={ts} level=error svc=db disk wobbled")
                    } else {
                        format!("ts={ts} level=info all good")
                    };
                    (ts, text)
                })
                .collect()
        })
        .collect()
}

fn main() {
    let splits = log_splits();
    let total_lines: usize = splits.iter().map(Vec::len).sum();
    let grep = Grep::new("level=error");
    let runner = LocalRunner::new(4);

    let mut outputs = Vec::new();
    for engine in [Engine::Barrier, Engine::barrierless()] {
        for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
            let spec = ChainSpec::new(vec![
                JobConfig::new(3).engine(engine.clone()),
                JobConfig::new(2).engine(engine.clone()),
            ])
            .handoff(handoff);
            let out = runner
                .run_chain2(
                    &grep,
                    &Sort,
                    splits.clone(),
                    &spec,
                    &HashPartitioner,
                    &RangePartitioner::uniform(2),
                )
                .expect("chain run");
            println!(
                "engine {:<12} handoff {:<10} matches {:>5}  handoff batches {:>4}  first handoff {}",
                format!("{engine:?}").split(' ').next().unwrap(),
                format!("{handoff:?}"),
                out.stages[0].handoff_records,
                out.stages[0].handoff_batches,
                out.stages[0]
                    .first_handoff_secs
                    .map_or("after stage 1".to_string(), |s| format!("{:.4}s", s)),
            );
            outputs.push(out.output.partitions.clone());
        }
    }

    // The point of the exercise: four engine × handoff combinations, one
    // byte-identical answer.
    for pair in outputs.windows(2) {
        assert_eq!(pair[0], pair[1], "chained output depends on the mode");
    }
    let matches: Vec<u64> = outputs[0].iter().flatten().map(|(ts, _)| *ts).collect();
    assert_eq!(matches.len(), total_lines / 5);
    assert!(matches.windows(2).all(|w| w[0] <= w[1]), "not sorted");
    println!(
        "\n{} of {} log lines matched; output globally sorted and identical under every mode",
        matches.len(),
        total_lines
    );
}
