//! Quickstart: WordCount under both engines on the real threaded runner.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use barrier_mapreduce::apps::WordCount;
use barrier_mapreduce::core::local::LocalRunner;
use barrier_mapreduce::core::{counters::names, Engine, JobConfig};

fn main() {
    // Input splits: (document id, text). In a cluster these would be DFS
    // chunks; locally any Vec of records works.
    let splits: Vec<Vec<(u64, String)>> = vec![
        vec![
            (0, "the barrier stands between map and reduce".into()),
            (1, "breaking the barrier lets reduce begin early".into()),
        ],
        vec![
            (2, "the reduce function sees one record at a time".into()),
            (3, "partial results live in the reduce side store".into()),
        ],
    ];

    // Classic Hadoop-style execution: shuffle barrier, sort, grouped reduce.
    let barrier_cfg = JobConfig::new(2); // 2 reducers, Engine::Barrier default
    let barrier_out = LocalRunner::new(4)
        .run(&WordCount, splits.clone(), &barrier_cfg)
        .expect("barrier job");

    // The paper's contribution: no barrier, reduce-per-record, partial
    // results in an in-memory ordered map.
    let pipelined_cfg = JobConfig::new(2).engine(Engine::barrierless());
    let pipelined_out = LocalRunner::new(4)
        .run(&WordCount, splits, &pipelined_cfg)
        .expect("barrier-less job");

    println!(
        "map output records: {}",
        barrier_out.counters.get(names::MAP_OUTPUT_RECORDS)
    );

    let a = barrier_out.into_sorted_output();
    let b = pipelined_out.into_sorted_output();
    assert_eq!(a, b, "the engines must agree");

    println!("top words (both engines agree):");
    let mut by_count = a.clone();
    by_count.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
    for (word, count) in by_count.into_iter().take(5) {
        println!("  {count:>3}  {word}");
    }
}
