//! `barrier-mapreduce` — facade crate for the barrier-less MapReduce
//! reproduction of *Breaking the MapReduce Stage Barrier* (Verma et al.,
//! CLUSTER 2010).
//!
//! This crate re-exports the workspace members under stable names so that
//! examples and downstream users need a single dependency:
//!
//! * [`core`] — the MapReduce framework itself: job API, the
//!   barrier and barrier-less engines, partial-result stores, and the real
//!   multi-threaded local executor.
//! * [`cluster`] — the execution-driven discrete-event cluster
//!   simulator used to regenerate the paper's figures.
//! * [`apps`] — the paper's seven application classes in original
//!   and barrier-less form.
//! * [`workloads`] — seeded input generators.
//! * [`kvstore`] — the disk-spilling key/value store
//!   (BerkeleyDB stand-in).
//! * [`cache`] — the content-addressed shared result cache behind
//!   cross-job memoization (`core::local::cache` wires it in).
//! * [`sim`], [`net`], [`dfs`] — simulation substrates.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; the short version:
//!
//! ```
//! use barrier_mapreduce::core::local::LocalRunner;
//! use barrier_mapreduce::core::{Engine, JobConfig, MemoryPolicy};
//! use barrier_mapreduce::apps::wordcount::WordCount;
//!
//! let splits: Vec<Vec<(u64, String)>> = vec![
//!     vec![(0, "a b a".to_string())],
//!     vec![(1, "b c".to_string())],
//! ];
//! let cfg = JobConfig::new(2).engine(Engine::BarrierLess {
//!     memory: MemoryPolicy::InMemory,
//! });
//! let out = LocalRunner::new(2).run(&WordCount::default(), splits, &cfg).unwrap();
//! let mut pairs = out.into_sorted_output();
//! assert_eq!(pairs.remove(0), ("a".to_string(), 2));
//! ```

pub use mr_apps as apps;
pub use mr_cache as cache;
pub use mr_cluster as cluster;
pub use mr_core as core;
pub use mr_dfs as dfs;
pub use mr_kvstore as kvstore;
pub use mr_net as net;
pub use mr_sim as sim;
pub use mr_workloads as workloads;
