//! Read-side analytics over a finished [`TraceLog`]: spans by kind,
//! counter totals, per-stage and per-node time breakdowns, progress
//! series, and critical-path extraction.

use crate::event::{
    Scope, SpanKind, SpecEvent, TaskKind, TraceEvent, TraceInstant, NO_NODE, NO_TENANT,
};
use crate::label::Label;
use crate::log::TraceLog;
use std::collections::BTreeMap;

/// A span joined with its scope — the query layer's flat span view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRec {
    /// Where the span happened.
    pub scope: Scope,
    /// Span category.
    pub kind: SpanKind,
    /// Interval start.
    pub start: TraceInstant,
    /// Interval end.
    pub end: TraceInstant,
}

impl SpanRec {
    /// Start in seconds since run start.
    pub fn start_secs(&self) -> f64 {
        self.start.as_secs_f64()
    }

    /// End in seconds since run start.
    pub fn end_secs(&self) -> f64 {
        self.end.as_secs_f64()
    }

    /// Span length in seconds.
    pub fn duration_secs(&self) -> f64 {
        (self.end_secs() - self.start_secs()).max(0.0)
    }
}

/// Mirrors `SimTime::from_secs_f64` so progress series sampled through
/// the query layer land on exactly the grid the simulator's native
/// timeline used.
fn secs_to_micros(s: f64) -> u64 {
    (s.max(0.0) * 1e6).round() as u64
}

/// Analytics over one run's [`TraceLog`]. Construction is free; every
/// method is a scan, which is fine at the log sizes one run produces
/// (thousands of entries).
#[derive(Debug, Clone, Copy)]
pub struct TraceQuery<'a> {
    log: &'a TraceLog,
}

impl<'a> TraceQuery<'a> {
    /// Wraps a finished log.
    pub fn new(log: &'a TraceLog) -> Self {
        TraceQuery { log }
    }

    /// The underlying log.
    pub fn log(&self) -> &'a TraceLog {
        self.log
    }

    fn span_iter(&self) -> impl Iterator<Item = SpanRec> + 'a {
        self.log.iter().filter_map(|e| match e.event {
            TraceEvent::Span { kind, start, end } => Some(SpanRec {
                scope: e.scope,
                kind,
                start,
                end,
            }),
            _ => None,
        })
    }

    /// Every span in the log, in log order.
    pub fn spans(&self) -> Vec<SpanRec> {
        self.span_iter().collect()
    }

    /// All spans of one kind, any job.
    pub fn spans_by_kind(&self, kind: SpanKind) -> Vec<SpanRec> {
        self.span_iter().filter(|s| s.kind == kind).collect()
    }

    /// Spans of one kind within one job (chain stage).
    pub fn job_spans_by_kind(&self, job: u32, kind: SpanKind) -> Vec<SpanRec> {
        self.span_iter()
            .filter(|s| s.scope.job == job && s.kind == kind)
            .collect()
    }

    /// Total of one counter across every scope (static or dynamic
    /// label — lookup is by string content).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.log
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Counter { label, delta } if label.as_str() == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// All counters summed across every scope, name-sorted.
    pub fn counter_totals(&self) -> Vec<(Label, u64)> {
        self.counter_map(None).into_iter().collect()
    }

    /// All counters of one job summed across its scopes, name-sorted.
    pub fn job_counter_totals(&self, job: u32) -> Vec<(Label, u64)> {
        self.counter_map(Some(job)).into_iter().collect()
    }

    fn counter_map(&self, job: Option<u32>) -> BTreeMap<Label, u64> {
        let mut m = BTreeMap::new();
        for e in self.log.iter() {
            if job.is_some_and(|j| e.scope.job != j) {
                continue;
            }
            if let TraceEvent::Counter { label, delta } = &e.event {
                *m.entry(label.clone()).or_insert(0) += delta;
            }
        }
        m
    }

    /// Busy seconds per span kind within one job — the per-stage time
    /// breakdown (map vs shuffle vs reduce vs output).
    pub fn stage_breakdown(&self, job: u32) -> Vec<(SpanKind, f64)> {
        let mut m: BTreeMap<SpanKind, f64> = BTreeMap::new();
        for s in self.span_iter().filter(|s| s.scope.job == job) {
            *m.entry(s.kind).or_insert(0.0) += s.duration_secs();
        }
        m.into_iter().collect()
    }

    /// Busy seconds per node across all spans with node attribution.
    pub fn per_node_secs(&self) -> BTreeMap<u32, f64> {
        let mut m = BTreeMap::new();
        for s in self.span_iter().filter(|s| s.scope.node != NO_NODE) {
            *m.entry(s.scope.node).or_insert(0.0) += s.duration_secs();
        }
        m
    }

    /// Busy seconds per tenant across all tenant-attributed spans — the
    /// service layer's fairness measure (slot-seconds actually consumed
    /// by each tenant's tasks). Spans without tenant attribution are
    /// excluded.
    pub fn per_tenant_secs(&self) -> BTreeMap<u32, f64> {
        let mut m = BTreeMap::new();
        for s in self.span_iter().filter(|s| s.scope.tenant != NO_TENANT) {
            *m.entry(s.scope.tenant).or_insert(0.0) += s.duration_secs();
        }
        m
    }

    /// Every span attributed to one tenant, in log order.
    pub fn tenant_spans(&self, tenant: u32) -> Vec<SpanRec> {
        self.span_iter()
            .filter(|s| s.scope.tenant == tenant)
            .collect()
    }

    /// All counters of one tenant summed across its scopes, name-sorted.
    pub fn tenant_counter_totals(&self, tenant: u32) -> Vec<(Label, u64)> {
        let mut m: BTreeMap<Label, u64> = BTreeMap::new();
        for e in self.log.iter().filter(|e| e.scope.tenant == tenant) {
            if let TraceEvent::Counter { label, delta } = &e.event {
                *m.entry(label.clone()).or_insert(0) += delta;
            }
        }
        m.into_iter().collect()
    }

    /// The tenants that appear anywhere in the log, ascending.
    pub fn tenants(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self
            .log
            .iter()
            .map(|e| e.scope.tenant)
            .filter(|&t| t != NO_TENANT)
            .collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// The chain of spans ending at job completion, each the
    /// latest-ending span that finished no later than its successor
    /// started — a lower-bound critical path through the recorded
    /// activity. Returned in chronological order; empty when the log has
    /// no spans.
    pub fn critical_path(&self) -> Vec<SpanRec> {
        // Deterministic tie-break: later end wins, then scope key.
        let best = |a: &SpanRec, b: &SpanRec| -> std::cmp::Ordering {
            a.end_secs()
                .total_cmp(&b.end_secs())
                .then_with(|| b.scope.sort_key().cmp(&a.scope.sort_key()))
        };
        let spans = self.spans();
        let Some(mut cur) = spans.iter().max_by(|a, b| best(a, b)).copied() else {
            return Vec::new();
        };
        let mut path = vec![cur];
        loop {
            let pred = spans
                .iter()
                .filter(|s| s.end_secs() <= cur.start_secs())
                .max_by(|a, b| best(a, b));
            match pred {
                Some(p) => {
                    cur = *p;
                    path.push(cur);
                }
                None => break,
            }
        }
        path.reverse();
        path
    }

    /// Number of spans of `kind` in `job` active at `t_secs` — one point
    /// of a Figure 4 progress curve. Matches the legacy timeline's
    /// half-open `[start, end)` semantics exactly (virtual instants are
    /// compared in integer microseconds).
    pub fn active_at(&self, job: u32, kind: SpanKind, t_secs: f64) -> usize {
        let t_us = secs_to_micros(t_secs);
        self.span_iter()
            .filter(|s| s.scope.job == job && s.kind == kind)
            .filter(|s| match (s.start, s.end) {
                (TraceInstant::Virtual { micros: a }, TraceInstant::Virtual { micros: b }) => {
                    a <= t_us && t_us < b
                }
                _ => s.start_secs() <= t_secs && t_secs < s.end_secs(),
            })
            .count()
    }

    /// The full progress series for `kind` in `job`, sampled every
    /// `step_secs` from zero through `horizon_secs`.
    pub fn series(
        &self,
        job: u32,
        kind: SpanKind,
        step_secs: f64,
        horizon_secs: f64,
    ) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        let mut t = 0.0f64;
        while t <= horizon_secs + step_secs {
            out.push((t, self.active_at(job, kind, t)));
            t += step_secs;
        }
        out
    }

    /// Latest span end across the whole log, in seconds (run completion
    /// from the record; 0.0 for an empty log).
    pub fn last_end_secs(&self) -> f64 {
        self.span_iter()
            .map(|s| s.end_secs())
            .fold(0.0f64, f64::max)
    }

    /// Latest span end within one job, in seconds.
    pub fn job_last_end_secs(&self, job: u32) -> f64 {
        self.span_iter()
            .filter(|s| s.scope.job == job)
            .map(|s| s.end_secs())
            .fold(0.0f64, f64::max)
    }

    /// Heap series of one reducer in one job: `(seconds, bytes)`.
    pub fn heap_series(&self, job: u32, reducer: u32) -> Vec<(f64, u64)> {
        self.log
            .iter()
            .filter(|e| {
                e.scope.job == job && e.scope.kind == TaskKind::Reduce && e.scope.index == reducer
            })
            .filter_map(|e| match e.event {
                TraceEvent::HeapSample { at, bytes } => Some((at.as_secs_f64(), bytes)),
                _ => None,
            })
            .collect()
    }

    /// All heap samples of one job: `(reducer, seconds, bytes)`.
    pub fn heap_samples(&self, job: u32) -> Vec<(u32, f64, u64)> {
        self.log
            .iter()
            .filter(|e| e.scope.job == job)
            .filter_map(|e| match e.event {
                TraceEvent::HeapSample { at, bytes } => {
                    Some((e.scope.index, at.as_secs_f64(), bytes))
                }
                _ => None,
            })
            .collect()
    }

    /// Snapshot publications of one reducer: `(seconds, estimate
    /// records)`.
    pub fn snapshot_series(&self, job: u32, reducer: u32) -> Vec<(f64, u64)> {
        self.log
            .iter()
            .filter(|e| {
                e.scope.job == job && e.scope.kind == TaskKind::Reduce && e.scope.index == reducer
            })
            .filter_map(|e| match e.event {
                TraceEvent::SnapshotMark { at, records, .. } => Some((at.as_secs_f64(), records)),
                _ => None,
            })
            .collect()
    }

    /// Number of snapshot publications in one job.
    pub fn snapshot_count(&self, job: u32) -> usize {
        self.log
            .iter()
            .filter(|e| e.scope.job == job && matches!(e.event, TraceEvent::SnapshotMark { .. }))
            .count()
    }

    /// Handoff departures of one upstream reducer: `(seconds, records)`.
    pub fn handoff_series(&self, job: u32, upstream_reducer: u32) -> Vec<(f64, u64)> {
        self.log
            .iter()
            .filter(|e| {
                e.scope.job == job
                    && e.scope.kind == TaskKind::Reduce
                    && e.scope.index == upstream_reducer
            })
            .filter_map(|e| match e.event {
                TraceEvent::HandoffMark { at, records, .. } => Some((at.as_secs_f64(), records)),
                _ => None,
            })
            .collect()
    }

    /// First handoff departure instant of one job, in seconds.
    pub fn first_handoff_secs(&self, job: u32) -> Option<f64> {
        self.log
            .iter()
            .filter(|e| e.scope.job == job)
            .find_map(|e| match e.event {
                TraceEvent::HandoffMark { at, .. } => Some(at.as_secs_f64()),
                _ => None,
            })
    }

    /// Number of speculation events of one flavour across the run.
    pub fn speculation_count(&self, event: SpecEvent) -> usize {
        self.log
            .iter()
            .filter(
                |e| matches!(e.event, TraceEvent::SpeculationMark { event: ev, .. } if ev == event),
            )
            .count()
    }

    /// The deadline instant of one job, if a deadline fired.
    pub fn deadline_secs(&self, job: u32) -> Option<f64> {
        self.log
            .iter()
            .filter(|e| e.scope.job == job)
            .find_map(|e| match e.event {
                TraceEvent::DeadlineMark { at } => Some(at.as_secs_f64()),
                _ => None,
            })
    }

    /// Cache marks of one job: `(seconds, hits, misses, hit bytes)` —
    /// the sealed result-cache accounting of each run that consulted
    /// the shared cache.
    pub fn cache_marks(&self, job: u32) -> Vec<(f64, u64, u64, u64)> {
        self.log
            .iter()
            .filter(|e| e.scope.job == job)
            .filter_map(|e| match e.event {
                TraceEvent::CacheMark {
                    at,
                    hits,
                    misses,
                    bytes,
                } => Some((at.as_secs_f64(), hits, misses, bytes)),
                _ => None,
            })
            .collect()
    }

    /// Cache marks attributed to one tenant: `(job, hits, misses, hit
    /// bytes)` — the per-tenant view of shared-cache behaviour under
    /// the job service.
    pub fn tenant_cache_marks(&self, tenant: u32) -> Vec<(u32, u64, u64, u64)> {
        self.log
            .iter()
            .filter(|e| e.scope.tenant == tenant)
            .filter_map(|e| match e.event {
                TraceEvent::CacheMark {
                    hits,
                    misses,
                    bytes,
                    ..
                } => Some((e.scope.job, hits, misses, bytes)),
                _ => None,
            })
            .collect()
    }

    /// When one chain stage finished, if its driver marked completion.
    pub fn stage_done_secs(&self, job: u32) -> Option<f64> {
        self.log
            .iter()
            .filter(|e| e.scope.job == job)
            .find_map(|e| match e.event {
                TraceEvent::StageDone { at } => Some(at.as_secs_f64()),
                _ => None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{TraceDispatcher, TraceRecorder, TraceSink};

    fn vt(s: f64) -> TraceInstant {
        TraceInstant::Virtual {
            micros: secs_to_micros(s),
        }
    }

    fn span(job: u32, kind: SpanKind, task: u32, node: u32, a: f64, b: f64) -> (Scope, TraceEvent) {
        let tk = match kind {
            SpanKind::Map => TaskKind::Map,
            _ => TaskKind::Reduce,
        };
        (
            Scope::task(job, tk, task, 0, node),
            TraceEvent::Span {
                kind,
                start: vt(a),
                end: vt(b),
            },
        )
    }

    fn demo_log() -> TraceLog {
        let mut log = TraceLog::new();
        for (sc, ev) in [
            span(0, SpanKind::Map, 0, 0, 0.0, 10.0),
            span(0, SpanKind::Map, 1, 1, 0.0, 14.0),
            span(0, SpanKind::ShuffleReduce, 0, 2, 2.0, 20.0),
            span(0, SpanKind::Output, 0, 2, 20.0, 22.0),
            span(1, SpanKind::Map, 0, 3, 15.0, 24.0),
        ] {
            log.push(sc, ev);
        }
        log.push(
            Scope::job(0),
            TraceEvent::Counter {
                label: Label::Static("map.output.records"),
                delta: 100,
            },
        );
        log.push(
            Scope::task(0, TaskKind::Reduce, 0, 0, 2),
            TraceEvent::Counter {
                label: Label::Static("map.output.records"),
                delta: 20,
            },
        );
        log
    }

    #[test]
    fn spans_counters_and_series() {
        let log = demo_log();
        let q = TraceQuery::new(&log);
        assert_eq!(q.spans_by_kind(SpanKind::Map).len(), 3);
        assert_eq!(q.job_spans_by_kind(0, SpanKind::Map).len(), 2);
        assert_eq!(q.counter_total("map.output.records"), 120);
        assert_eq!(q.counter_total("nope"), 0);
        assert_eq!(q.counter_totals().len(), 1);
        assert_eq!(q.job_counter_totals(1), vec![]);
        assert_eq!(q.active_at(0, SpanKind::Map, 5.0), 2);
        assert_eq!(q.active_at(0, SpanKind::Map, 14.0), 0, "end exclusive");
        assert_eq!(q.last_end_secs(), 24.0);
        assert_eq!(q.job_last_end_secs(0), 22.0);
        let s = q.series(0, SpanKind::Map, 5.0, 22.0);
        assert_eq!(s[0], (0.0, 2));
        assert_eq!(s[1], (5.0, 2));
        assert_eq!(s[3].1, 0);
    }

    #[test]
    fn stage_and_node_breakdowns() {
        let log = demo_log();
        let q = TraceQuery::new(&log);
        let b: BTreeMap<SpanKind, f64> = q.stage_breakdown(0).into_iter().collect();
        assert_eq!(b[&SpanKind::Map], 24.0);
        assert_eq!(b[&SpanKind::ShuffleReduce], 18.0);
        assert_eq!(b[&SpanKind::Output], 2.0);
        let nodes = q.per_node_secs();
        assert_eq!(nodes[&2], 20.0);
        assert_eq!(nodes[&3], 9.0);
    }

    #[test]
    fn critical_path_walks_back_through_latest_predecessors() {
        let log = demo_log();
        let q = TraceQuery::new(&log);
        let path = q.critical_path();
        // j1 map ends last (24.0); its predecessor must end <= 15.0: the
        // j0 map ending at 14.0; that one's predecessor must end <= 0.0:
        // none.
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].scope.job, 0);
        assert_eq!(path[0].end_secs(), 14.0);
        assert_eq!(path[1].scope.job, 1);
        assert_eq!(path[1].end_secs(), 24.0);
        assert!(TraceQuery::new(&TraceLog::new()).critical_path().is_empty());
    }

    #[test]
    fn marks_round_trip() {
        let mut log = TraceLog::new();
        let r0 = Scope::task(0, TaskKind::Reduce, 0, 0, 1);
        log.push(
            r0,
            TraceEvent::HeapSample {
                at: vt(1.0),
                bytes: 64,
            },
        );
        log.push(
            r0,
            TraceEvent::SnapshotMark {
                at: vt(2.0),
                seq: 0,
                records: 9,
                entries: 9,
            },
        );
        log.push(
            r0,
            TraceEvent::HandoffMark {
                at: vt(3.0),
                downstream_map: 4,
                records: 7,
                bytes: 70,
            },
        );
        log.push(
            Scope::task(0, TaskKind::Map, 2, 1, 0),
            TraceEvent::SpeculationMark {
                at: vt(4.0),
                event: SpecEvent::Launched,
            },
        );
        log.push(Scope::job(0), TraceEvent::DeadlineMark { at: vt(5.0) });
        log.push(Scope::job(0), TraceEvent::StageDone { at: vt(6.0) });
        log.push(
            Scope::job(0).with_tenant(2),
            TraceEvent::CacheMark {
                at: vt(7.0),
                hits: 3,
                misses: 1,
                bytes: 640,
            },
        );
        let q = TraceQuery::new(&log);
        assert_eq!(q.heap_series(0, 0), vec![(1.0, 64)]);
        assert_eq!(q.heap_samples(0), vec![(0, 1.0, 64)]);
        assert_eq!(q.snapshot_series(0, 0), vec![(2.0, 9)]);
        assert_eq!(q.snapshot_count(0), 1);
        assert_eq!(q.handoff_series(0, 0), vec![(3.0, 7)]);
        assert_eq!(q.first_handoff_secs(0), Some(3.0));
        assert_eq!(q.first_handoff_secs(1), None);
        assert_eq!(q.speculation_count(SpecEvent::Launched), 1);
        assert_eq!(q.speculation_count(SpecEvent::Won), 0);
        assert_eq!(q.deadline_secs(0), Some(5.0));
        assert_eq!(q.stage_done_secs(0), Some(6.0));
        assert_eq!(q.cache_marks(0), vec![(7.0, 3, 1, 640)]);
        assert_eq!(q.cache_marks(1), vec![]);
        assert_eq!(q.tenant_cache_marks(2), vec![(0, 3, 1, 640)]);
        assert_eq!(q.tenant_cache_marks(9), vec![]);
    }

    /// Tenant-attributed spans break down by tenant; unattributed spans
    /// stay out of the fairness measure, and the tenant prefix shows up
    /// in the canonical stream only when set.
    #[test]
    fn tenant_breakdowns() {
        let mut log = TraceLog::new();
        let (sc, ev) = span(0, SpanKind::Map, 0, 0, 0.0, 10.0);
        log.push(sc.with_tenant(3), ev);
        let (sc, ev) = span(1, SpanKind::Map, 0, 1, 0.0, 4.0);
        log.push(sc.with_tenant(3), ev);
        let (sc, ev) = span(2, SpanKind::ShuffleReduce, 0, 1, 0.0, 6.0);
        log.push(sc.with_tenant(1), ev);
        let (sc, ev) = span(3, SpanKind::Map, 0, 0, 0.0, 99.0);
        log.push(sc, ev); // no tenant
        log.push(
            Scope::job(2).with_tenant(1),
            TraceEvent::Counter {
                label: Label::Static("map.output.records"),
                delta: 5,
            },
        );
        let q = TraceQuery::new(&log);
        let shares = q.per_tenant_secs();
        assert_eq!(shares.len(), 2);
        assert_eq!(shares[&3], 14.0);
        assert_eq!(shares[&1], 6.0);
        assert_eq!(q.tenant_spans(3).len(), 2);
        assert_eq!(q.tenant_spans(7), vec![]);
        assert_eq!(q.tenants(), vec![1, 3]);
        assert_eq!(q.tenant_counter_totals(1).len(), 1);
        assert_eq!(q.tenant_counter_totals(3), vec![]);
        let canon = log.to_canonical_string();
        assert!(canon.contains("t3 j0 map[0]a0 n0"));
        assert!(
            canon.contains("\nj3 map[0]a0 n0"),
            "unset tenant prints no prefix"
        );
    }

    /// A dynamic (runtime-built) counter label survives the full
    /// recorder → dispatcher → query round trip and is queryable by
    /// string content, interchangeably with static labels.
    #[test]
    fn dynamic_label_round_trips_through_query_layer() {
        let disp = TraceDispatcher::new(true);
        let mut rec = TraceRecorder::new(Scope::task(0, TaskKind::Reduce, 0, 0, 0), true);
        let tenant = format!("tenant.{}.records", 7); // not 'static
        rec.counter(tenant.clone(), 11);
        rec.counter("tenant.7.records", 4); // static spelling of the same key
        disp.submit(rec.into_batch());
        let log = disp.finish();
        let q = TraceQuery::new(&log);
        assert_eq!(q.counter_total(&tenant), 15);
        let totals = q.counter_totals();
        assert_eq!(totals.len(), 1, "static and owned labels merged by content");
        assert_eq!(totals[0].0.as_str(), "tenant.7.records");
        assert_eq!(totals[0].1, 15);
        // And the canonical serialization spells the label out.
        assert!(log.to_canonical_string().contains("tenant.7.records +11"));
    }
}
