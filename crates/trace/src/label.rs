//! Counter labels: static for the well-known names, interned-owned for
//! dynamic ones.

use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A counter label. The engines' well-known names stay `&'static str`
/// (zero-cost, exactly as `Counters` always keyed them); dynamic labels
/// — per-tenant, per-stage — carry a cheaply clonable interned string.
/// Equality, ordering and hashing all go through the string content, so
/// a dynamic `"map.output.records"` and the static constant are the same
/// key.
#[derive(Debug, Clone)]
pub enum Label {
    /// A well-known compile-time name.
    Static(&'static str),
    /// A runtime-built name (shared, so clones are pointer bumps).
    Owned(Arc<str>),
}

impl Label {
    /// The label text.
    pub fn as_str(&self) -> &str {
        match self {
            Label::Static(s) => s,
            Label::Owned(s) => s,
        }
    }

    /// Builds an owned (dynamic) label.
    pub fn owned(s: impl Into<Arc<str>>) -> Self {
        Label::Owned(s.into())
    }
}

impl PartialEq for Label {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Label {}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl Hash for Label {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl Borrow<str> for Label {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&'static str> for Label {
    fn from(s: &'static str) -> Self {
        Label::Static(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Self {
        Label::Owned(s.into())
    }
}

impl From<Arc<str>> for Label {
    fn from(s: Arc<str>) -> Self {
        Label::Owned(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn static_and_owned_compare_by_content() {
        let a = Label::Static("x.y");
        let b = Label::owned(String::from("x.y"));
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        let mut m: BTreeMap<Label, u64> = BTreeMap::new();
        m.insert(a, 1);
        *m.entry(b).or_insert(0) += 2;
        assert_eq!(m.len(), 1);
        // Borrow<str> allows str-keyed lookup.
        assert_eq!(m.get("x.y"), Some(&3));
    }
}
