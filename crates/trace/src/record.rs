//! The recording side: per-task buffered recorders, the sink trait, and
//! the batch dispatcher that assembles an ordered [`TraceLog`].

use crate::event::{Scope, SpanKind, TraceEvent, TraceInstant};
use crate::label::Label;
use crate::log::TraceLog;
use std::sync::Mutex;

/// One task's worth of events, flushed as a unit when the task finishes
/// — the trace analogue of merging a task's local `Counters` into the
/// job total at task end.
#[derive(Debug, Clone)]
pub struct TraceBatch {
    /// The scope every event in the batch belongs to.
    pub scope: Scope,
    /// Events in emission order.
    pub events: Vec<TraceEvent>,
}

/// Anything that accepts finished batches. The workspace ships one
/// implementation, [`TraceDispatcher`]; tests and external tools can
/// plug their own (a streaming printer, a network forwarder).
pub trait TraceSink {
    /// Accepts one finished batch. Called from worker threads, so
    /// implementations must be internally synchronized.
    fn submit(&self, batch: TraceBatch);
}

/// A per-task buffered recorder: plain `Vec` pushes on the hot path, no
/// locks, no channels. When tracing is disabled every `record` call is a
/// branch on a bool and nothing else, so the data plane pays nothing.
#[derive(Debug)]
pub struct TraceRecorder {
    scope: Scope,
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl TraceRecorder {
    /// A recorder for one task scope.
    pub fn new(scope: Scope, enabled: bool) -> Self {
        TraceRecorder {
            scope,
            events: Vec::new(),
            enabled,
        }
    }

    /// Whether this recorder keeps events at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The scope this recorder writes under.
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// Records one event (dropped when disabled).
    pub fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Records a counter increment.
    pub fn counter(&mut self, label: impl Into<Label>, delta: u64) {
        if self.enabled && delta > 0 {
            self.events.push(TraceEvent::Counter {
                label: label.into(),
                delta,
            });
        }
    }

    /// Records a wall-clock span.
    pub fn span_wall(&mut self, kind: SpanKind, start_secs: f64, end_secs: f64) {
        self.record(TraceEvent::Span {
            kind,
            start: TraceInstant::Wall { secs: start_secs },
            end: TraceInstant::Wall { secs: end_secs },
        });
    }

    /// Records a wall-clock snapshot publication.
    pub fn snapshot_wall(&mut self, at_secs: f64, seq: u64, records: u64, entries: u64) {
        self.record(TraceEvent::SnapshotMark {
            at: TraceInstant::Wall { secs: at_secs },
            seq,
            records,
            entries,
        });
    }

    /// Records a wall-clock cache mark (a job's sealed result-cache
    /// accounting: hits, misses, and hit bytes handed out).
    pub fn cache_mark_wall(&mut self, at_secs: f64, hits: u64, misses: u64, bytes: u64) {
        self.record(TraceEvent::CacheMark {
            at: TraceInstant::Wall { secs: at_secs },
            hits,
            misses,
            bytes,
        });
    }

    /// Finishes the task: everything recorded, as one batch.
    pub fn into_batch(self) -> TraceBatch {
        TraceBatch {
            scope: self.scope,
            events: self.events,
        }
    }

    /// Finishes the task and hands the batch to `sink` (no-op when the
    /// recorder is disabled or empty).
    pub fn flush_into(self, sink: &dyn TraceSink) {
        if self.enabled && !self.events.is_empty() {
            sink.submit(self.into_batch());
        }
    }
}

/// Collects batches from concurrently finishing tasks and orders them
/// into a [`TraceLog`] whose byte layout never depends on thread
/// scheduling: batches are sorted by [`Scope::sort_key`] (ties broken by
/// event content), while events inside one batch keep their emission
/// order.
#[derive(Debug, Default)]
pub struct TraceDispatcher {
    batches: Mutex<Vec<TraceBatch>>,
    enabled: bool,
}

impl TraceDispatcher {
    /// A dispatcher; when `enabled` is false it discards every batch and
    /// [`finish`](TraceDispatcher::finish) yields an empty log.
    pub fn new(enabled: bool) -> Self {
        TraceDispatcher {
            batches: Mutex::new(Vec::new()),
            enabled,
        }
    }

    /// Whether submissions are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Orders the collected batches deterministically and produces the
    /// run's log.
    pub fn finish(self) -> TraceLog {
        let mut batches = self.batches.into_inner().unwrap_or_else(|e| e.into_inner());
        batches.sort_by_cached_key(|b| {
            let detail: Vec<String> = b.events.iter().map(|e| e.canonical()).collect();
            (b.scope.sort_key(), detail)
        });
        let mut log = TraceLog::new();
        for b in batches {
            for e in b.events {
                log.push(b.scope, e);
            }
        }
        log
    }
}

impl TraceSink for TraceDispatcher {
    fn submit(&self, batch: TraceBatch) {
        if self.enabled && !batch.events.is_empty() {
            self.batches
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskKind;

    #[test]
    fn dispatcher_orders_batches_by_scope_regardless_of_submission_order() {
        let disp = TraceDispatcher::new(true);
        let mut late = TraceRecorder::new(Scope::task(0, TaskKind::Reduce, 2, 0, 1), true);
        late.counter("reduce.output.records", 5);
        let mut early = TraceRecorder::new(Scope::task(0, TaskKind::Map, 7, 0, 0), true);
        early.span_wall(SpanKind::Map, 0.0, 1.0);
        early.counter("map.output.records", 9);
        // Submit in "wrong" (scheduling-dependent) order.
        late.flush_into(&disp);
        early.flush_into(&disp);
        let log = disp.finish();
        assert_eq!(log.len(), 3);
        assert_eq!(log.entries[0].scope.kind, TaskKind::Map);
        assert_eq!(log.entries[2].scope.kind, TaskKind::Reduce);
    }

    #[test]
    fn disabled_recorder_and_dispatcher_keep_nothing() {
        let disp = TraceDispatcher::new(false);
        let mut r = TraceRecorder::new(Scope::job(0), false);
        r.counter("x", 1);
        assert!(!r.is_enabled());
        r.flush_into(&disp);
        let mut keen = TraceRecorder::new(Scope::job(0), true);
        keen.counter("y", 1);
        keen.flush_into(&disp); // dispatcher itself disabled: dropped too
        assert!(disp.finish().is_empty());
    }

    #[test]
    fn zero_deltas_are_not_recorded() {
        let mut r = TraceRecorder::new(Scope::job(0), true);
        r.counter("x", 0);
        r.counter("x", 3);
        assert_eq!(r.into_batch().events.len(), 1);
    }
}
