//! The ordered per-run event log.

use crate::event::{Scope, TraceEntry, TraceEvent};

/// The ordered event log of one run: what the dispatcher produces and
/// the query layer consumes.
///
/// Ordering contract: entries appear in a deterministic order — the
/// cluster simulator pushes them in virtual-time (event-loop) order,
/// which is reproducible by construction; the local executor's
/// dispatcher sorts finished-task batches by scope key. Reruns of the
/// same seed therefore produce byte-identical
/// [canonical serializations](TraceLog::to_canonical_string).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceLog {
    /// Scoped events in log order.
    pub entries: Vec<TraceEntry>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends one scoped event.
    pub fn push(&mut self, scope: Scope, event: TraceEvent) {
        self.entries.push(TraceEntry { scope, event });
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries (tracing disabled, or nothing
    /// happened).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in log order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> + '_ {
        self.entries.iter()
    }

    /// The canonical text serialization: one line per entry, virtual
    /// instants exact, wall instants masked (`w*`). Two runs of the same
    /// seed serialize byte-identically; diffing two logs shows exactly
    /// which facts changed.
    pub fn to_canonical_string(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 48 + 32);
        out.push_str("trace-log/v1\n");
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanKind, TaskKind, TraceInstant};
    use crate::Label;

    #[test]
    fn canonical_form_is_stable_and_masks_wall_time() {
        let mut log = TraceLog::new();
        log.push(
            Scope::task(0, TaskKind::Map, 3, 0, 2),
            TraceEvent::Span {
                kind: SpanKind::Map,
                start: TraceInstant::Virtual { micros: 1_500_000 },
                end: TraceInstant::Virtual { micros: 2_500_000 },
            },
        );
        log.push(
            Scope::job(0),
            TraceEvent::Counter {
                label: Label::Static("map.output.records"),
                delta: 42,
            },
        );
        log.push(
            Scope::task(0, TaskKind::Reduce, 1, 0, 0),
            TraceEvent::HeapSample {
                at: TraceInstant::Wall { secs: 0.123456 },
                bytes: 1024,
            },
        );
        let s = log.to_canonical_string();
        assert_eq!(
            s,
            "trace-log/v1\n\
             j0 map[3]a0 n2 | span map v1500000 v2500000\n\
             j0 job[0]a0 n- | counter map.output.records +42\n\
             j0 reduce[1]a0 n0 | heap w* 1024\n"
        );
        // A different wall reading serializes identically.
        let mut log2 = log.clone();
        log2.entries[2].event = TraceEvent::HeapSample {
            at: TraceInstant::Wall { secs: 9.9 },
            bytes: 1024,
        };
        assert_eq!(log2.to_canonical_string(), s);
    }
}
