//! `mr-trace` — the unified structured trace pipeline.
//!
//! One canonical event stream replaces the three ad-hoc observability
//! surfaces that grew alongside the executors: Hadoop-style `Counters`,
//! the simulator's `Timeline` span/mark records, and the chain drivers'
//! per-stage `StageStats`. Every fact those systems recorded is now a
//! [`TraceEvent`] stamped with a [`Scope`] (job / task kind / index /
//! attempt / node) and a [`TraceInstant`] (virtual or wall time).
//!
//! The pipeline has three stages, mirroring the sink → dispatcher →
//! query-service split:
//!
//! * **Sink** — a [`TraceRecorder`] buffers one task's events locally
//!   (allocation-light: no locks, no channels on the hot path, exactly
//!   like per-task `Counters` merged at task end) and flushes them as one
//!   [`TraceBatch`] into a [`TraceSink`].
//! * **Dispatcher** — [`TraceDispatcher`] collects batches from
//!   concurrently finishing tasks and orders them into a [`TraceLog`] by
//!   deterministic scope key, so the log's byte layout never depends on
//!   thread scheduling. Single-threaded emitters (the cluster simulator)
//!   can push entries straight into a [`TraceLog`] in virtual-time order.
//! * **Query** — [`TraceQuery`] answers spans-by-kind, counter totals,
//!   per-stage and per-node time breakdowns, and critical-path
//!   extraction over a finished log.
//!
//! Determinism: a [`TraceLog`] serializes to a canonical text form
//! ([`TraceLog::to_canonical_string`]) in which wall-clock instants are
//! masked (virtual instants are exact integers). Simulator logs are
//! byte-identical across reruns of the same seed; local-executor logs
//! are byte-identical because batches are ordered by scope, per-worker
//! counter attribution is pre-merged, and wall times are masked.

mod event;
mod label;
mod log;
mod query;
mod record;

pub use event::{
    Scope, SpanKind, SpecEvent, SpecTaskKind, TaskKind, TraceEntry, TraceEvent, TraceInstant,
    NO_NODE, NO_TENANT,
};
pub use label::Label;
pub use log::TraceLog;
pub use query::{SpanRec, TraceQuery};
pub use record::{TraceBatch, TraceDispatcher, TraceRecorder, TraceSink};
