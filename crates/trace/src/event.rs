//! The event schema: scopes, instants, and the one `TraceEvent` enum.

use crate::label::Label;
use std::fmt;

/// Node index meaning "no node attribution" (job-level facts, local
/// executors that have no placement notion).
pub const NO_NODE: u32 = u32::MAX;

/// Tenant index meaning "no tenant attribution" (single-job runs, the
/// batch `run_many` path — anything outside the job service).
pub const NO_TENANT: u32 = u32::MAX;

/// What a recorded span represents. These are the simulator's historical
/// span categories; the local executor reuses `Map` (one span per map
/// worker) and the reducer kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// A map task from schedule to output written.
    Map,
    /// A barrier reducer's fetch window (start → last flow received).
    Shuffle,
    /// A barrier reducer's sort + grouped reduce.
    SortReduce,
    /// A barrier-less reducer's combined shuffle+reduce window.
    ShuffleReduce,
    /// Final output being written to the DFS.
    Output,
}

impl SpanKind {
    fn code(self) -> &'static str {
        match self {
            SpanKind::Map => "map",
            SpanKind::Shuffle => "shuffle",
            SpanKind::SortReduce => "sort_reduce",
            SpanKind::ShuffleReduce => "shuffle_reduce",
            SpanKind::Output => "output",
        }
    }
}

/// Which kind of task a speculation event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecTaskKind {
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
}

/// What happened to a speculative attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecEvent {
    /// A backup attempt was launched for a detected straggler.
    Launched,
    /// A backup attempt finished before the original and supplied the
    /// task's output.
    Won,
    /// An attempt (original or backup) was cancelled because the other
    /// attempt of the same task won the race.
    Cancelled,
}

impl SpecEvent {
    fn code(self) -> &'static str {
        match self {
            SpecEvent::Launched => "launched",
            SpecEvent::Won => "won",
            SpecEvent::Cancelled => "cancelled",
        }
    }
}

/// The task category a scope points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// Job-level facts with no single task (merged map-side counters,
    /// stage summaries, deadline marks).
    Job,
    /// A map task (or map worker, under the local executor).
    Map,
    /// A reduce task.
    Reduce,
}

impl TaskKind {
    fn code(self) -> &'static str {
        match self {
            TaskKind::Job => "job",
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

/// Where an event happened: job (chain stage), task kind + index +
/// attempt, and node. Every entry in a [`TraceLog`](crate::TraceLog)
/// carries one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scope {
    /// Job index within the run (chain stage; 0 for single jobs).
    pub job: u32,
    /// Task category.
    pub kind: TaskKind,
    /// Task index within its category (0 for `TaskKind::Job`).
    pub index: u32,
    /// Attempt number (0 = original; speculation/faults bump it).
    pub attempt: u32,
    /// Node the fact is attributed to ([`NO_NODE`] when not placed).
    pub node: u32,
    /// Tenant the fact is attributed to ([`NO_TENANT`] outside the job
    /// service; the service stamps every admitted job's scopes).
    pub tenant: u32,
}

impl Scope {
    /// A job-level scope for `job`.
    pub fn job(job: u32) -> Self {
        Scope {
            job,
            kind: TaskKind::Job,
            index: 0,
            attempt: 0,
            node: NO_NODE,
            tenant: NO_TENANT,
        }
    }

    /// A task scope.
    pub fn task(job: u32, kind: TaskKind, index: u32, attempt: u32, node: u32) -> Self {
        Scope {
            job,
            kind,
            index,
            attempt,
            node,
            tenant: NO_TENANT,
        }
    }

    /// The same scope attributed to `tenant`.
    pub fn with_tenant(mut self, tenant: u32) -> Self {
        self.tenant = tenant;
        self
    }

    /// The deterministic ordering key the dispatcher sorts batches by.
    /// Tenant sorts last so pre-service logs keep their historical order.
    pub fn sort_key(&self) -> (u32, TaskKind, u32, u32, u32, u32) {
        (
            self.job,
            self.kind,
            self.index,
            self.attempt,
            self.node,
            self.tenant,
        )
    }

    fn canonical(&self) -> String {
        let node = if self.node == NO_NODE {
            "-".to_string()
        } else {
            self.node.to_string()
        };
        // The tenant prefix appears only when set, so canonical streams
        // recorded before the service layer existed are byte-identical.
        let tenant = if self.tenant == NO_TENANT {
            String::new()
        } else {
            format!("t{} ", self.tenant)
        };
        format!(
            "{}j{} {}[{}]a{} n{}",
            tenant,
            self.job,
            self.kind.code(),
            self.index,
            self.attempt,
            node
        )
    }
}

/// A point in time: exact virtual microseconds under the simulator, or
/// wall-clock seconds under the real local executor.
///
/// Virtual instants round-trip losslessly (the simulator's `SimTime` is
/// integer microseconds); wall instants are inherently nondeterministic
/// and are therefore *masked* in the canonical serialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceInstant {
    /// Virtual time, integer microseconds since run start.
    Virtual {
        /// Microseconds since the simulated run began.
        micros: u64,
    },
    /// Wall time, seconds since run start.
    Wall {
        /// Seconds since the run began.
        secs: f64,
    },
}

impl TraceInstant {
    /// Seconds since run start, for either clock.
    pub fn as_secs_f64(&self) -> f64 {
        match self {
            TraceInstant::Virtual { micros } => *micros as f64 / 1e6,
            TraceInstant::Wall { secs } => *secs,
        }
    }

    /// Virtual microseconds, if this is a virtual instant.
    pub fn virtual_micros(&self) -> Option<u64> {
        match self {
            TraceInstant::Virtual { micros } => Some(*micros),
            TraceInstant::Wall { .. } => None,
        }
    }

    fn canonical(&self) -> String {
        match self {
            // Exact and deterministic: print verbatim.
            TraceInstant::Virtual { micros } => format!("v{micros}"),
            // Wall clocks differ run to run: mask.
            TraceInstant::Wall { .. } => "w*".to_string(),
        }
    }
}

/// One structured trace event — every fact the legacy `Counters`,
/// `Timeline`, and `StageStats` surfaces recorded, in one schema. Task
/// identity (which reducer published a snapshot, which map a span
/// belongs to) lives in the entry's [`Scope`], not in the event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A completed task activity interval (start and end of the span).
    Span {
        /// Span category.
        kind: SpanKind,
        /// Interval start.
        start: TraceInstant,
        /// Interval end.
        end: TraceInstant,
    },
    /// A monotone counter increment, merged per task like `Counters`.
    Counter {
        /// Counter name; owned labels support dynamic (per-tenant,
        /// per-stage) counters that `&'static str` keys never could.
        label: Label,
        /// Increment.
        delta: u64,
    },
    /// A point sample of one reducer's partial-result heap.
    HeapSample {
        /// Sample instant.
        at: TraceInstant,
        /// Modelled heap bytes.
        bytes: u64,
    },
    /// One partial-result snapshot publication.
    SnapshotMark {
        /// Publication instant.
        at: TraceInstant,
        /// Per-reducer sequence number (monotone across re-runs).
        seq: u64,
        /// Estimated output records in the snapshot.
        records: u64,
        /// Live partial results covered.
        entries: u64,
    },
    /// A slice of an upstream reduce task's output leaving for a
    /// downstream chained map task (the scope names the upstream
    /// reducer).
    HandoffMark {
        /// Departure instant.
        at: TraceInstant,
        /// Downstream chained map task.
        downstream_map: u32,
        /// Records in this increment.
        records: u64,
        /// Nominal wire bytes of this increment.
        bytes: u64,
    },
    /// A speculative-execution event (the scope names the task).
    SpeculationMark {
        /// Event instant.
        at: TraceInstant,
        /// Launched / won / cancelled.
        event: SpecEvent,
    },
    /// A deadline fired and cut the job short.
    DeadlineMark {
        /// The deadline instant.
        at: TraceInstant,
    },
    /// A job finished consulting the shared result cache (the scope
    /// names the job, and the tenant when run under the service).
    CacheMark {
        /// Instant the job's cache accounting was sealed.
        at: TraceInstant,
        /// Artifact lookups that hit.
        hits: u64,
        /// Artifact lookups that missed.
        misses: u64,
        /// Payload bytes handed out by the hits.
        bytes: u64,
    },
    /// A chain stage finished its last task.
    StageDone {
        /// Completion instant.
        at: TraceInstant,
    },
}

impl TraceEvent {
    /// Intra-scope ordering class, used by the canonical form and the
    /// dispatcher only to keep the serialization stable; events within
    /// one batch keep their emission order.
    pub(crate) fn canonical(&self) -> String {
        match self {
            TraceEvent::Span { kind, start, end } => format!(
                "span {} {} {}",
                kind.code(),
                start.canonical(),
                end.canonical()
            ),
            TraceEvent::Counter { label, delta } => format!("counter {label} +{delta}"),
            TraceEvent::HeapSample { at, bytes } => {
                format!("heap {} {}", at.canonical(), bytes)
            }
            TraceEvent::SnapshotMark {
                at,
                seq,
                records,
                entries,
            } => format!("snapshot {} seq{seq} r{records} e{entries}", at.canonical()),
            TraceEvent::HandoffMark {
                at,
                downstream_map,
                records,
                bytes,
            } => format!(
                "handoff {} ->map[{downstream_map}] r{records} b{bytes}",
                at.canonical()
            ),
            TraceEvent::SpeculationMark { at, event } => {
                format!("speculation {} {}", at.canonical(), event.code())
            }
            TraceEvent::DeadlineMark { at } => format!("deadline {}", at.canonical()),
            TraceEvent::CacheMark {
                at,
                hits,
                misses,
                bytes,
            } => format!("cache {} h{hits} m{misses} b{bytes}", at.canonical()),
            TraceEvent::StageDone { at } => format!("stage_done {}", at.canonical()),
        }
    }
}

/// One scoped event — the unit a [`TraceLog`](crate::TraceLog) stores.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Where the event happened.
    pub scope: Scope,
    /// What happened.
    pub event: TraceEvent,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {}", self.scope.canonical(), self.event.canonical())
    }
}
