//! Global top-k selection — a Single-reducer-aggregation job (§4.7)
//! built to sit *downstream* of an aggregation: it consumes `(key,
//! count)` pairs (e.g. WordCount's final output) and reports the k
//! heaviest keys.
//!
//! Every mapper funnels its records to a single constant key; the
//! reducer keeps a bounded candidate list in cross-key shared state
//! (O(k) memory, Table 1's single-reducer-aggregation row) and emits the
//! ranked top-k when its input drains. Selection uses the total order
//! *(count desc, key asc)*, so the result — and its emission order — is
//! a pure function of the input multiset: byte-identical under either
//! engine, either chain handoff mode, and any arrival order.
//!
//! As the second stage of the `wordcount → top-k` chain
//! ([`ChainableApplication`] impl below), its input must be final
//! per-key counts — one record per key — which is exactly what a
//! finished aggregation stage hands off.

use mr_core::{Application, ChainableApplication, Emit, IdentityWriter};

/// Reports the `k` keys with the largest counts.
#[derive(Debug, Clone)]
pub struct TopK {
    /// How many ranked entries to keep.
    pub k: usize,
}

impl TopK {
    /// A selector for the heaviest `k` keys.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        TopK { k }
    }

    /// Total order for candidates: count descending, key ascending.
    fn better(a: &(String, u64), b: &(String, u64)) -> std::cmp::Ordering {
        b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0))
    }

    /// Admits one candidate, pruning to O(k) whenever the buffer doubles.
    fn admit(&self, candidates: &mut Vec<(String, u64)>, word: String, count: u64) {
        candidates.push((word, count));
        if candidates.len() >= self.k.saturating_mul(2).max(64) {
            candidates.sort_by(Self::better);
            candidates.truncate(self.k);
        }
    }

    /// Final ranking of whatever survived pruning.
    fn rank(&self, mut candidates: Vec<(String, u64)>, out: &mut dyn Emit<u64, (String, u64)>) {
        candidates.sort_by(Self::better);
        candidates.truncate(self.k);
        for (rank, (word, count)) in candidates.into_iter().enumerate() {
            out.emit(rank as u64 + 1, (word, count));
        }
    }
}

impl Application for TopK {
    type InKey = String;
    type InValue = u64;
    /// Single constant key: everything funnels to one reduce group.
    type MapKey = u8;
    type MapValue = (String, u64);
    /// Rank, starting at 1.
    type OutKey = u64;
    type OutValue = (String, u64);
    type State = ();
    type Shared = Vec<(String, u64)>;

    fn map(&self, word: &String, count: &u64, out: &mut dyn Emit<u8, (String, u64)>) {
        out.emit(0, (word.clone(), *count));
    }

    fn new_shared(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    fn reduce_grouped(
        &self,
        _key: &u8,
        values: Vec<(String, u64)>,
        candidates: &mut Vec<(String, u64)>,
        _out: &mut dyn Emit<u64, (String, u64)>,
    ) {
        for (word, count) in values {
            self.admit(candidates, word, count);
        }
    }

    /// O(k) shared candidates only — no per-key store (Table 1).
    fn uses_keyed_state(&self) -> bool {
        false
    }

    fn init(&self, _key: &u8) {}

    fn absorb(
        &self,
        _key: &u8,
        _state: &mut (),
        value: (String, u64),
        candidates: &mut Vec<(String, u64)>,
        _out: &mut dyn Emit<u64, (String, u64)>,
    ) {
        self.admit(candidates, value.0, value.1);
    }

    fn merge(&self, _key: &u8, _a: (), _b: ()) {}

    fn finalize(
        &self,
        _key: u8,
        _state: (),
        _candidates: &mut Vec<(String, u64)>,
        _out: &mut dyn Emit<u64, (String, u64)>,
    ) {
    }

    fn flush_shared(&self, candidates: Vec<(String, u64)>, out: &mut dyn Emit<u64, (String, u64)>) {
        if !candidates.is_empty() {
            self.rank(candidates, out);
        }
    }

    fn name(&self) -> &'static str {
        "top-k"
    }

    fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool {
        w.write_u64(self.k as u64);
        true
    }
}

/// The `wordcount → top-k` chain boundary: upstream hands over its final
/// `(word, count)` records, which are already this job's input type.
impl ChainableApplication<String, u64> for TopK {
    fn adapt_input(&self, word: String, count: u64) -> (String, u64) {
        (word, count)
    }

    fn handoff_bytes(&self, word: &String, _count: &u64) -> usize {
        word.len() + std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig};

    fn splits() -> Vec<Vec<(String, u64)>> {
        vec![
            vec![
                ("apple".to_string(), 10),
                ("pear".to_string(), 3),
                ("plum".to_string(), 7),
            ],
            vec![
                ("fig".to_string(), 10),
                ("kiwi".to_string(), 1),
                ("lime".to_string(), 9),
            ],
        ]
    }

    #[test]
    fn both_engines_rank_identically() {
        let app = TopK::new(3);
        let expect = vec![
            (1u64, ("apple".to_string(), 10u64)),
            (2, ("fig".to_string(), 10)),
            (3, ("lime".to_string(), 9)),
        ];
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let out = LocalRunner::new(2)
                .run(&app, splits(), &JobConfig::new(2).engine(engine.clone()))
                .unwrap();
            assert_eq!(
                out.into_sorted_output(),
                expect,
                "engine {engine:?} ranked differently"
            );
        }
    }

    #[test]
    fn ties_break_by_key_ascending_deterministically() {
        // apple and fig tie at 10; apple wins rank 1 by key order no
        // matter which arrives first.
        let app = TopK::new(2);
        let mut reversed = splits();
        reversed.reverse();
        let a = LocalRunner::new(1)
            .run(
                &app,
                splits(),
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap()
            .into_sorted_output();
        let b = LocalRunner::new(1)
            .run(
                &app,
                reversed,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap()
            .into_sorted_output();
        assert_eq!(a, b);
        assert_eq!(a[0], (1, ("apple".to_string(), 10)));
        assert_eq!(a[1], (2, ("fig".to_string(), 10)));
    }

    #[test]
    fn pruning_keeps_memory_bounded_and_result_exact() {
        // Far more candidates than k: pruning must never evict a true
        // top-k member.
        let app = TopK::new(5);
        let splits: Vec<Vec<(String, u64)>> = (0..8)
            .map(|s| (0..200u64).map(|i| (format!("w{:03}-{s}", i), i)).collect())
            .collect();
        let out = LocalRunner::new(4)
            .run(
                &app,
                splits,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        // No keyed state was kept.
        assert_eq!(out.reports[0].store.peak_entries, 0);
        let got = out.into_sorted_output();
        assert_eq!(got.len(), 5);
        // The heaviest counts are 199 from every split; key order breaks
        // the tie: w199-0 .. w199-4.
        for (i, (rank, (word, count))) in got.iter().enumerate() {
            assert_eq!(*rank, i as u64 + 1);
            assert_eq!(*count, 199);
            assert_eq!(word, &format!("w199-{i}"));
        }
    }

    #[test]
    fn wordcount_to_topk_chain_is_identical_under_both_handoffs() {
        use crate::wordcount::WordCount;
        use mr_core::{ChainSpec, CombinerPolicy, HandoffMode, HashPartitioner};
        use mr_workloads::TextWorkload;
        let w = TextWorkload {
            seed: 11,
            vocab: 300,
            zipf_s: 1.2,
            lines_per_chunk: 80,
            words_per_line: 7,
        };
        let splits: Vec<Vec<(u64, String)>> = (0..5).map(|c| w.chunk(c)).collect();
        // Reference: count by hand, rank by (count desc, word asc).
        let mut counts: std::collections::BTreeMap<String, u64> = Default::default();
        for (_, line) in splits.iter().flatten() {
            for word in line.split_whitespace() {
                *counts.entry(word.to_string()).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
        ranked.sort_by(TopK::better);
        ranked.truncate(10);
        let expect: Vec<(u64, (String, u64))> = ranked
            .into_iter()
            .enumerate()
            .map(|(i, wc)| (i as u64 + 1, wc))
            .collect();
        let app = TopK::new(10);
        let run = |handoff| {
            let spec = ChainSpec::new(vec![
                JobConfig::new(3)
                    .engine(Engine::barrierless())
                    .combiner(CombinerPolicy::enabled()),
                JobConfig::new(2).engine(Engine::barrierless()),
            ])
            .handoff(handoff);
            LocalRunner::new(4)
                .run_chain2(
                    &WordCount,
                    &app,
                    splits.clone(),
                    &spec,
                    &HashPartitioner,
                    &HashPartitioner,
                )
                .unwrap()
        };
        let barrier = run(HandoffMode::Barrier);
        let streaming = run(HandoffMode::Streaming);
        assert_eq!(
            barrier.output.partitions, streaming.output.partitions,
            "handoff mode changed the top-k"
        );
        // Every distinct word crossed the boundary exactly once.
        assert!(streaming.handoff_records() > 10);
        assert_eq!(streaming.handoff_records(), barrier.handoff_records());
        assert_eq!(streaming.output.into_sorted_output(), expect);
    }

    #[test]
    fn fewer_candidates_than_k_emits_them_all() {
        let app = TopK::new(50);
        let out = LocalRunner::new(1)
            .run(&app, splits(), &JobConfig::new(1))
            .unwrap();
        assert_eq!(out.record_count(), 6);
    }
}
