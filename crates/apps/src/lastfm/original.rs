//! Original (barrier) unique-listens reduce (§4.5).
//!
//! With all of a track's records delivered at once, the Reducer inserts
//! each userId into a deduplicating set (the *processing* step) and then
//! counts it (the *post-processing* step) — the structure lives only for
//! the duration of one reduce() call.

use mr_core::Emit;
use std::collections::HashSet;

/// Deduplicate users, then count.
pub fn reduce(track: u32, users: &[u32], out: &mut dyn Emit<u32, u64>) {
    let mut unique: HashSet<u32> = HashSet::new();
    for &user in users {
        unique.insert(user);
    }
    out.emit(track, unique.len() as u64);
}
