//! Last.fm unique listens — the Post-reduction-processing class (§4.5,
//! §6.1.4).
//!
//! Counts the distinct users who listened to each track: records are
//! first collected into a per-key deduplicating structure (the
//! *processing* step), and the count is taken only when the key is
//! complete (the *post-processing* step). Original logic in [`original`],
//! barrier-less rewrite in [`barrierless`] (the +25% LoC row of Table 2).

pub mod barrierless;
pub mod original;

use mr_core::{Application, Emit};
use std::collections::HashSet;

/// Unique-users-per-track counter.
#[derive(Debug, Clone, Default)]
pub struct UniqueListens;

impl Application for UniqueListens {
    type InKey = u64;
    type InValue = (u32, u32);
    type MapKey = u32;
    type MapValue = u32;
    type OutKey = u32;
    type OutValue = u64;
    type State = HashSet<u32>;
    type Shared = ();

    /// `(user, track)` event → `(track, user)` record.
    fn map(&self, _event: &u64, listen: &(u32, u32), out: &mut dyn Emit<u32, u32>) {
        let (user, track) = *listen;
        out.emit(track, user);
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &u32,
        values: Vec<u32>,
        _shared: &mut (),
        out: &mut dyn Emit<u32, u64>,
    ) {
        original::reduce(*key, &values, out);
    }

    fn init(&self, key: &u32) -> HashSet<u32> {
        barrierless::init(*key)
    }

    fn absorb(
        &self,
        key: &u32,
        state: &mut HashSet<u32>,
        user: u32,
        _shared: &mut (),
        _out: &mut dyn Emit<u32, u64>,
    ) {
        barrierless::absorb(*key, state, user);
    }

    fn merge(&self, key: &u32, a: HashSet<u32>, b: HashSet<u32>) -> HashSet<u32> {
        barrierless::merge(*key, a, b)
    }

    fn finalize(
        &self,
        key: u32,
        state: HashSet<u32>,
        _shared: &mut (),
        out: &mut dyn Emit<u32, u64>,
    ) {
        barrierless::finalize(key, state, out);
    }

    /// Deduplication combines: a map task's repeated `(track, user)`
    /// pairs collapse to one record each before the shuffle.
    fn combine_enabled(&self) -> bool {
        true
    }

    /// Ships the deduplicated user set, one record per distinct user —
    /// sorted so re-run map tasks emit byte-identical output.
    fn combiner_emit(&self, key: &u32, state: HashSet<u32>, out: &mut dyn Emit<u32, u32>) {
        let mut users: Vec<u32> = state.into_iter().collect();
        users.sort_unstable();
        for user in users {
            out.emit(*key, user);
        }
    }

    /// Snapshot accuracy for distinct-counting: relative L1 error of the
    /// per-track unique-user counts over the union of tracks. Distinct
    /// counts only grow as records arrive, so mid-job estimates are
    /// monotone under-counts converging to zero error.
    fn snapshot_error(&self, estimate: &[(u32, u64)], truth: &[(u32, u64)]) -> f64 {
        let total: u64 = truth.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let mut gap = 0u64;
        let mut est = estimate.iter().peekable();
        for (track, count) in truth {
            while est.peek().is_some_and(|(t, _)| t < track) {
                gap += est.next().expect("peeked").1;
            }
            if est.peek().is_some_and(|(t, _)| t == track) {
                let (_, have) = est.next().expect("peeked");
                gap += count.abs_diff(*have);
            } else {
                gap += count;
            }
        }
        gap += est.map(|(_, n)| n).sum::<u64>();
        (gap as f64 / total as f64).min(1.0)
    }

    fn name(&self) -> &'static str {
        "lastfm-unique-listens"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig, MemoryPolicy};
    use mr_workloads::LastFmWorkload;
    use std::collections::BTreeMap;

    #[allow(clippy::type_complexity)]
    fn splits(chunks: u64) -> Vec<Vec<(u64, (u32, u32))>> {
        let w = LastFmWorkload {
            seed: 13,
            users: 50,
            tracks: 200,
            listens_per_chunk: 300,
        };
        (0..chunks).map(|c| w.chunk(c)).collect()
    }

    fn reference(splits: &[Vec<(u64, (u32, u32))>]) -> BTreeMap<u32, u64> {
        let mut sets: BTreeMap<u32, std::collections::HashSet<u32>> = BTreeMap::new();
        for (_, (user, track)) in splits.iter().flatten() {
            sets.entry(*track).or_default().insert(*user);
        }
        sets.into_iter().map(|(t, s)| (t, s.len() as u64)).collect()
    }

    #[test]
    fn engines_agree_on_unique_counts() {
        let input = splits(4);
        let expect = reference(&input);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let out = LocalRunner::new(4)
                .run(
                    &UniqueListens,
                    input.clone(),
                    &JobConfig::new(3).engine(engine),
                )
                .unwrap();
            let got: BTreeMap<u32, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn spill_merge_unions_user_sets_correctly() {
        // Duplicates of a user for one track may land in different spill
        // runs; the set-union merge must not double count.
        let input = splits(6);
        let expect = reference(&input);
        let cfg = JobConfig::new(2)
            .engine(Engine::BarrierLess {
                memory: MemoryPolicy::SpillMerge {
                    threshold_bytes: 4096,
                },
            })
            .scratch_dir(std::env::temp_dir().join("mr-apps-lastfm"));
        let out = LocalRunner::new(4)
            .run(&UniqueListens, input, &cfg)
            .unwrap();
        assert!(
            out.reports.iter().any(|r| r.store.spill_files > 0),
            "test should spill"
        );
        let got: BTreeMap<u32, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn combiner_dedup_matches_uncombined_counts() {
        use mr_core::counters::names;
        use mr_core::CombinerPolicy;
        // Heavy listen duplication (50 users × 200 tracks × 1800 events)
        // gives the dedup combiner real work; distinct counts must not
        // change.
        let input = splits(6);
        let expect = reference(&input);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let cfg = JobConfig::new(3)
                .engine(engine.clone())
                .combiner(CombinerPolicy::enabled());
            let out = LocalRunner::new(4)
                .run(&UniqueListens, input.clone(), &cfg)
                .unwrap();
            assert!(
                out.counters.get(names::COMBINE_OUTPUT_RECORDS)
                    < out.counters.get(names::COMBINE_INPUT_RECORDS),
                "dedup combiner removed nothing under {engine:?}"
            );
            let got: BTreeMap<u32, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect, "engine {engine:?} with combiner wrong");
        }
    }

    #[test]
    fn snapshot_error_tracks_distinct_count_gap() {
        let truth = vec![(1u32, 4u64), (2, 4), (3, 2)];
        assert_eq!(UniqueListens.snapshot_error(&[], &truth), 1.0);
        assert_eq!(UniqueListens.snapshot_error(&truth, &truth), 0.0);
        let partial = vec![(1u32, 2u64), (3, 1)];
        // Missing mass: 2 (track 1) + 4 (track 2) + 1 (track 3) = 7/10.
        assert_eq!(UniqueListens.snapshot_error(&partial, &truth), 0.7);
    }

    #[test]
    fn snapshots_of_dedup_sets_stay_self_consistent() {
        use mr_core::SnapshotPolicy;
        // The HashSet state round-trips through the codec (sorted
        // encoding) inside the default snapshot_emit; estimates must be
        // bounded by the user population and end exact.
        let input = splits(5);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .snapshots(SnapshotPolicy::EveryRecords { records: 250 });
        let out = mr_core::local::LocalRunner::new(4)
            .run(&UniqueListens, input, &cfg)
            .unwrap();
        assert!(out.snapshot_count() >= 4);
        for (r, snaps) in out.snapshots.iter().enumerate() {
            for snap in snaps {
                assert!(snap.estimate.iter().all(|(_, n)| *n <= 50));
                for pair in snap.estimate.windows(2) {
                    assert!(pair[0].0 < pair[1].0, "snapshot not key-sorted");
                }
            }
            assert_eq!(snaps.last().unwrap().estimate, out.partitions[r]);
        }
    }

    #[test]
    fn counts_are_bounded_by_user_population() {
        let input = splits(8);
        let out = LocalRunner::new(2)
            .run(
                &UniqueListens,
                input,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        assert!(out
            .into_sorted_output()
            .iter()
            .all(|(_, count)| *count <= 50));
    }
}
