//! Barrier-less unique-listens reduce (§4.5).
//!
//! Records for a track trickle in interleaved with other tracks, so the
//! deduplicating set itself becomes the per-key partial result — "the
//! temporary data structure for each key must be maintained … the total
//! amount of partial results can grow to O(records)", Table 1's worst
//! case alongside Sort.

use mr_core::Emit;
use std::collections::HashSet;

/// A fresh user set for a newly seen track.
pub fn init(_track: u32) -> HashSet<u32> {
    HashSet::new()
}

/// One listen event: add the user to the track's set (duplicates vanish).
pub fn absorb(_track: u32, users: &mut HashSet<u32>, user: u32) {
    users.insert(user);
}

/// Spilled user sets for the same track combine by union — set union is
/// idempotent, so a user spilled into two runs still counts once.
pub fn merge(_track: u32, mut a: HashSet<u32>, b: HashSet<u32>) -> HashSet<u32> {
    a.extend(b);
    a
}

/// All events seen: the post-processing step — count the set.
pub fn finalize(track: u32, users: HashSet<u32>, out: &mut dyn Emit<u32, u64>) {
    out.emit(track, users.len() as u64);
}
