//! `mr-apps` — the paper's seven classes of MapReduce applications (§4).
//!
//! | Class | App | Key sort needed | Partial results |
//! |---|---|---|---|
//! | Identity | [`grep`] | no | O(1) |
//! | Sorting | [`sort`] | **yes** | O(records) |
//! | Aggregation | [`wordcount`] | no | O(keys) |
//! | Selection | [`knn`] | no | O(k·keys) |
//! | Post-reduction processing | [`lastfm`] | no | O(records) |
//! | Cross-key operations | [`ga`] | no | O(window) |
//! | Single-reducer aggregation | [`blackscholes`] | no | O(1) |
//!
//! [`topk`] is a chain-native eighth job: a single-reducer selection
//! built to consume [`wordcount`]'s final counts as stage 2 of a
//! `wordcount → top-k` chain. [`sort`] and [`ga`] likewise implement
//! `ChainableApplication`, so `grep → sort` and K-generation genetic-
//! algorithm chains compose without rewriting any app.
//!
//! Each multi-file app keeps its original (barrier) reduce logic in
//! `original.rs` and its barrier-less rewrite in `barrierless.rs`; the
//! Table 2 programmer-effort comparison counts those files directly.
//! `ga` and `blackscholes` are single files because the paper found they
//! need **zero** code changes — only a flag flip.

pub mod blackscholes;
pub mod ga;
pub mod grep;
pub mod knn;
pub mod lastfm;
pub mod sort;
pub mod topk;
pub mod wordcount;

pub use blackscholes::BlackScholes;
pub use ga::GeneticAlgorithm;
pub use grep::Grep;
pub use knn::{KnnBarrier, KnnBarrierless};
pub use lastfm::UniqueListens;
pub use sort::Sort;
pub use topk::TopK;
pub use wordcount::WordCount;
