//! Distributed Grep — the Identity class (§4.1).
//!
//! The Map function emits a line when it matches the pattern; the Reduce
//! function "is merely used to write the final output". No sorting is
//! required and no partial results are kept, so the original and
//! barrier-less versions are *the same program* — which is why the paper
//! omits Identity from its experiments.

use mr_core::{Application, Emit, IdentityWriter};

/// Substring-match distributed grep.
#[derive(Debug, Clone)]
pub struct Grep {
    /// Lines containing this substring are emitted.
    pub pattern: String,
}

impl Grep {
    /// A grep for `pattern`.
    pub fn new(pattern: impl Into<String>) -> Self {
        Grep {
            pattern: pattern.into(),
        }
    }
}

impl Application for Grep {
    type InKey = u64;
    type InValue = String;
    type MapKey = u64;
    type MapValue = String;
    type OutKey = u64;
    type OutValue = String;
    type State = ();
    type Shared = ();

    fn map(&self, key: &u64, line: &String, out: &mut dyn Emit<u64, String>) {
        if line.contains(&self.pattern) {
            out.emit(*key, line.clone());
        }
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &u64,
        values: Vec<String>,
        _shared: &mut (),
        out: &mut dyn Emit<u64, String>,
    ) {
        for line in values {
            out.emit(*key, line);
        }
    }

    /// Identity keeps nothing: results are written immediately (Table 1).
    fn uses_keyed_state(&self) -> bool {
        false
    }

    fn init(&self, _key: &u64) {}

    fn absorb(
        &self,
        key: &u64,
        _state: &mut (),
        line: String,
        _shared: &mut (),
        out: &mut dyn Emit<u64, String>,
    ) {
        // Write-through: the output is final the moment the record arrives.
        out.emit(*key, line);
    }

    fn merge(&self, _key: &u64, _a: (), _b: ()) {}

    fn finalize(&self, _key: u64, _state: (), _shared: &mut (), _out: &mut dyn Emit<u64, String>) {}

    fn name(&self) -> &'static str {
        "grep"
    }

    fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool {
        w.write_str(&self.pattern);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig};

    fn splits() -> Vec<Vec<(u64, String)>> {
        vec![
            vec![
                (0, "error: disk on fire".to_string()),
                (1, "all is well".to_string()),
            ],
            vec![
                (2, "warning then error again".to_string()),
                (3, "nothing to see".to_string()),
            ],
        ]
    }

    #[test]
    fn both_engines_grep_identically() {
        let app = Grep::new("error");
        let barrier = LocalRunner::new(2)
            .run(&app, splits(), &JobConfig::new(2))
            .unwrap()
            .into_sorted_output();
        let pipelined = LocalRunner::new(2)
            .run(
                &app,
                splits(),
                &JobConfig::new(2).engine(Engine::barrierless()),
            )
            .unwrap()
            .into_sorted_output();
        assert_eq!(barrier, pipelined);
        assert_eq!(barrier.len(), 2);
        assert!(barrier.iter().all(|(_, l)| l.contains("error")));
    }

    #[test]
    fn no_partial_results_are_kept() {
        let app = Grep::new("error");
        let out = LocalRunner::new(1)
            .run(
                &app,
                splits(),
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        assert_eq!(out.reports[0].store.peak_entries, 0);
    }

    #[test]
    fn no_match_means_no_output() {
        let app = Grep::new("absent-needle");
        let out = LocalRunner::new(1)
            .run(&app, splits(), &JobConfig::new(1))
            .unwrap();
        assert_eq!(out.record_count(), 0);
    }
}
