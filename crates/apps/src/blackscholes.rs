//! Black-Scholes Monte-Carlo pricing — the Single-reducer-aggregation
//! class (§4.7, §6.1.6).
//!
//! Every mapper runs many iterations of the Black-Scholes Monte-Carlo
//! simulation, emitting one `(value, value²)` pair per iteration to a
//! *single* reducer, which maintains running sums and reports the mean
//! and standard deviation using the paper's algebraic identity
//! `σ = sqrt(E[x²] − E[x]²)`. Partial-result memory is O(1).
//!
//! Like the genetic algorithm, "the only change required was that a flag
//! for barrier-less execution be turned on" (Table 2: 0% increase) — one
//! source file serves both engines.

use mr_core::{Application, Emit};
use mr_workloads::pricing::MonteCarloTask;
use mr_workloads::Normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Monte-Carlo European-call pricer.
#[derive(Debug, Clone, Default)]
pub struct BlackScholes;

/// Running sums for mean / stddev: `(Σx, Σx², n)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningSums {
    /// Σ value.
    pub sum: f64,
    /// Σ value².
    pub sum_sq: f64,
    /// Number of samples.
    pub n: u64,
}

impl RunningSums {
    /// Mean and standard deviation via the paper's one-pass identity.
    pub fn mean_std(&self) -> (f64, f64) {
        if self.n == 0 {
            return (0.0, 0.0);
        }
        let mean = self.sum / self.n as f64;
        let var = (self.sum_sq / self.n as f64 - mean * mean).max(0.0);
        (mean, var.sqrt())
    }
}

impl BlackScholes {
    /// One discounted-payoff sample of a European call under GBM:
    /// `S_T = S·exp((r − σ²/2)T + σ√T·Z)`, payoff `e^{-rT}·max(S_T − K, 0)`.
    pub fn sample_payoff(task: &MonteCarloTask, z: f64) -> f64 {
        let drift = (task.rate - 0.5 * task.volatility * task.volatility) * task.maturity;
        let diffusion = task.volatility * task.maturity.sqrt() * z;
        let terminal = task.spot * (drift + diffusion).exp();
        (-task.rate * task.maturity).exp() * (terminal - task.strike).max(0.0)
    }

    /// Closed-form Black-Scholes call price, for validating the Monte-
    /// Carlo estimate in tests (Abramowitz–Stegun normal CDF).
    pub fn analytic_price(task: &MonteCarloTask) -> f64 {
        fn phi(x: f64) -> f64 {
            // Abramowitz & Stegun 7.1.26 via erf.
            let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
            let poly = t
                * (0.254829592
                    + t * (-0.284496736
                        + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
            let erf = 1.0 - poly * (-x * x / 2.0).exp();
            if x >= 0.0 {
                0.5 * (1.0 + erf)
            } else {
                0.5 * (1.0 - erf)
            }
        }
        let (s, k, r, v, t) = (
            task.spot,
            task.strike,
            task.rate,
            task.volatility,
            task.maturity,
        );
        let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * t.sqrt());
        let d2 = d1 - v * t.sqrt();
        s * phi(d1) - k * (-r * t).exp() * phi(d2)
    }
}

impl Application for BlackScholes {
    type InKey = u64;
    type InValue = MonteCarloTask;
    /// Single constant key: everything funnels to one reducer group.
    type MapKey = u8;
    /// "The mapper emits the square of the value along with the value."
    type MapValue = (f64, f64);
    type OutKey = u8;
    /// `(mean, stddev, samples)`.
    type OutValue = (f64, f64, u64);
    type State = ();
    type Shared = RunningSums;

    fn map(&self, _id: &u64, task: &MonteCarloTask, out: &mut dyn Emit<u8, (f64, f64)>) {
        let mut rng = StdRng::seed_from_u64(task.seed);
        let normal = Normal::new(0.0, 1.0);
        for _ in 0..task.iterations {
            let payoff = Self::sample_payoff(task, normal.sample(&mut rng));
            out.emit(0, (payoff, payoff * payoff));
        }
    }

    fn new_shared(&self) -> RunningSums {
        RunningSums::default()
    }

    fn reduce_grouped(
        &self,
        _key: &u8,
        values: Vec<(f64, f64)>,
        sums: &mut RunningSums,
        _out: &mut dyn Emit<u8, (f64, f64, u64)>,
    ) {
        for (v, v2) in values {
            sums.sum += v;
            sums.sum_sq += v2;
            sums.n += 1;
        }
    }

    /// O(1) running sums only — no per-key store (Table 1).
    fn uses_keyed_state(&self) -> bool {
        false
    }

    fn init(&self, _key: &u8) {}

    fn absorb(
        &self,
        _key: &u8,
        _state: &mut (),
        value: (f64, f64),
        sums: &mut RunningSums,
        _out: &mut dyn Emit<u8, (f64, f64, u64)>,
    ) {
        sums.sum += value.0;
        sums.sum_sq += value.1;
        sums.n += 1;
    }

    fn merge(&self, _key: &u8, _a: (), _b: ()) {}

    fn finalize(
        &self,
        _key: u8,
        _state: (),
        _sums: &mut RunningSums,
        _out: &mut dyn Emit<u8, (f64, f64, u64)>,
    ) {
    }

    fn flush_shared(&self, sums: RunningSums, out: &mut dyn Emit<u8, (f64, f64, u64)>) {
        if sums.n > 0 {
            let (mean, std) = sums.mean_std();
            out.emit(0, (mean, std, sums.n));
        }
    }

    fn name(&self) -> &'static str {
        "black-scholes"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig};
    use mr_workloads::PricingWorkload;

    fn splits(mappers: u64, iters: u64) -> Vec<Vec<(u64, MonteCarloTask)>> {
        let w = PricingWorkload::new(77, iters);
        (0..mappers).map(|c| w.chunk(c)).collect()
    }

    #[test]
    fn monte_carlo_approaches_analytic_price() {
        let input = splits(8, 20_000);
        let analytic = BlackScholes::analytic_price(&input[0][0].1);
        let out = LocalRunner::new(4)
            .run(
                &BlackScholes,
                input,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        let (_, (mean, std, n)) = out.partitions[0][0];
        assert_eq!(n, 8 * 20_000);
        // Standard error ~ std/sqrt(n); allow 4 sigma.
        let stderr = std / (n as f64).sqrt();
        assert!(
            (mean - analytic).abs() < 4.0 * stderr + 0.05,
            "MC {mean:.4} vs analytic {analytic:.4} (stderr {stderr:.4})"
        );
    }

    #[test]
    fn engines_agree_bitwise_on_the_sums() {
        // Addition order differs between engines, but with one reducer and
        // deterministic map output, results must agree to tight tolerance.
        let input = splits(4, 5_000);
        let barrier = LocalRunner::new(2)
            .run(&BlackScholes, input.clone(), &JobConfig::new(1))
            .unwrap();
        let pipelined = LocalRunner::new(2)
            .run(
                &BlackScholes,
                input,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        let (_, (bm, bs, bn)) = barrier.partitions[0][0];
        let (_, (pm, ps, pn)) = pipelined.partitions[0][0];
        assert_eq!(bn, pn);
        assert!((bm - pm).abs() < 1e-9, "{bm} vs {pm}");
        assert!((bs - ps).abs() < 1e-9);
    }

    #[test]
    fn memory_is_constant_in_input_size() {
        for mappers in [2u64, 8] {
            let out = LocalRunner::new(2)
                .run(
                    &BlackScholes,
                    splits(mappers, 2_000),
                    &JobConfig::new(1).engine(Engine::barrierless()),
                )
                .unwrap();
            assert_eq!(out.reports[0].store.peak_entries, 0);
            assert_eq!(out.reports[0].store.peak_bytes, 0);
        }
    }

    #[test]
    fn running_sums_identity_matches_two_pass() {
        let samples = [1.0f64, 2.0, 3.5, 0.25, 9.0];
        let mut sums = RunningSums::default();
        for &x in &samples {
            sums.sum += x;
            sums.sum_sq += x * x;
            sums.n += 1;
        }
        let (mean, std) = sums.mean_std();
        let m2 = samples.iter().sum::<f64>() / 5.0;
        let v2 = samples.iter().map(|x| (x - m2).powi(2)).sum::<f64>() / 5.0;
        assert!((mean - m2).abs() < 1e-12);
        assert!((std - v2.sqrt()).abs() < 1e-12);
    }
}
