//! Original (barrier) kNN: secondary sort does the selection (§4.4).
//!
//! "The barrier version's Map function emits a tuple (exp_value, distance)
//! for the key, and an integer train_value for the value. A secondary
//! sort is performed, sorting by the distance value in the key, but
//! grouping by exp_value. Then, in the Reducer, the first k values are
//! emitted."

use mr_core::{Emit, HashPartitioner, Partitioner};

/// The third leg of Hadoop's secondary-sort pattern: partition composite
/// `(exp, distance)` keys by `exp` alone, so all of an experimental
/// value's records meet at one reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpPartitioner;

impl Partitioner<(i64, i64)> for ExpPartitioner {
    fn partition(&self, key: &(i64, i64), partitions: usize) -> usize {
        HashPartitioner.partition(&key.0, partitions)
    }
}

/// Emits `((exp, |exp - train|), train)` for every experimental value —
/// each training record is compared against the whole broadcast set.
pub fn map(experimental: &[i64], train: i64, out: &mut dyn Emit<(i64, i64), i64>) {
    for &exp in experimental {
        out.emit((exp, (exp - train).abs()), train);
    }
}

/// After the secondary sort, the group's values arrive distance-ascending;
/// the first k are the k nearest neighbours.
pub fn reduce(k: usize, key: &(i64, i64), values: &[i64], out: &mut dyn Emit<i64, i64>) {
    for &train in values.iter().take(k) {
        out.emit(key.0, train);
    }
}
