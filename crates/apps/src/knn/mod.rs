//! k-Nearest Neighbours — the Selection class (§4.4, §6.1.3).
//!
//! The one application where the paper's original and barrier-less
//! versions have *different map output types*, so they are two separate
//! programs here, exactly as a Hadoop programmer would have written them:
//!
//! * [`KnnBarrier`] ([`original`]) — composite `(exp_value, distance)`
//!   keys with a secondary sort; the Reducer takes the first k values of
//!   each group. Only meaningful under the barrier engine.
//! * [`KnnBarrierless`] ([`barrierless`]) — plain `exp_value` keys; a
//!   size-k ordered list per key is maintained on a running basis.

pub mod barrierless;
pub mod original;

use mr_core::{Application, Emit, IdentityWriter};
use std::cmp::Ordering;

/// Both kNN forms share their output-shaping parameters: `k` and the
/// broadcast experimental set.
fn write_knn_identity(w: &mut dyn IdentityWriter, k: usize, experimental: &[i64]) {
    w.write_u64(k as u64);
    w.write_u64(experimental.len() as u64);
    for &e in experimental {
        w.write_i64(e);
    }
}

/// Original formulation: secondary sort on distance (barrier engine only).
#[derive(Debug, Clone)]
pub struct KnnBarrier {
    /// Neighbours to keep per experimental value.
    pub k: usize,
    /// The broadcast experimental (query) set.
    pub experimental: Vec<i64>,
}

/// Barrier-less formulation: running size-k selection per key.
#[derive(Debug, Clone)]
pub struct KnnBarrierless {
    /// Neighbours to keep per experimental value.
    pub k: usize,
    /// The broadcast experimental (query) set.
    pub experimental: Vec<i64>,
}

impl Application for KnnBarrier {
    type InKey = u64;
    type InValue = i64;
    /// Composite key: `(exp_value, distance)` — the secondary-sort trick.
    type MapKey = (i64, i64);
    type MapValue = i64;
    type OutKey = i64;
    type OutValue = i64;
    type State = ();
    type Shared = usize; // values already emitted for the current group

    fn map(&self, _id: &u64, train: &i64, out: &mut dyn Emit<(i64, i64), i64>) {
        original::map(&self.experimental, *train, out);
    }

    fn new_shared(&self) -> usize {
        0
    }

    fn reduce_grouped(
        &self,
        key: &(i64, i64),
        values: Vec<i64>,
        _shared: &mut usize,
        out: &mut dyn Emit<i64, i64>,
    ) {
        original::reduce(self.k, key, &values, out);
    }

    /// Secondary sort: by experimental value, then by distance ascending.
    fn sort_cmp(&self, a: &((i64, i64), i64), b: &((i64, i64), i64)) -> Ordering {
        a.0.cmp(&b.0)
    }

    /// Group by experimental value only, ignoring the distance component.
    fn group_eq(&self, a: &(i64, i64), b: &(i64, i64)) -> bool {
        a.0 == b.0
    }

    fn init(&self, _key: &(i64, i64)) {}

    fn absorb(
        &self,
        _key: &(i64, i64),
        _state: &mut (),
        _value: i64,
        _shared: &mut usize,
        _out: &mut dyn Emit<i64, i64>,
    ) {
        unimplemented!(
            "KnnBarrier relies on the framework's secondary sort; \
             run it under Engine::Barrier or use KnnBarrierless"
        );
    }

    fn merge(&self, _key: &(i64, i64), _a: (), _b: ()) {}

    fn finalize(
        &self,
        _key: (i64, i64),
        _state: (),
        _shared: &mut usize,
        _out: &mut dyn Emit<i64, i64>,
    ) {
    }

    fn name(&self) -> &'static str {
        "knn-original"
    }

    fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool {
        write_knn_identity(w, self.k, &self.experimental);
        true
    }
}

impl Application for KnnBarrierless {
    type InKey = u64;
    type InValue = i64;
    /// Plain key: "the Mapper emits an integer exp_value as the key and a
    /// tuple (train_value, distance) as the value … because no secondary
    /// sort is being performed".
    type MapKey = i64;
    type MapValue = (i64, i64);
    type OutKey = i64;
    type OutValue = i64;
    /// The "size-k ordered linked list": (distance, train) ascending.
    type State = Vec<(i64, i64)>;
    type Shared = ();

    fn map(&self, _id: &u64, train: &i64, out: &mut dyn Emit<i64, (i64, i64)>) {
        barrierless::map(&self.experimental, *train, out);
    }

    fn new_shared(&self) {}

    /// Grouped fallback so the rewritten app still runs under the barrier
    /// engine (all values at once, select k smallest).
    fn reduce_grouped(
        &self,
        key: &i64,
        values: Vec<(i64, i64)>,
        _shared: &mut (),
        out: &mut dyn Emit<i64, i64>,
    ) {
        let mut list: Vec<(i64, i64)> = Vec::new();
        for (train, dist) in values {
            barrierless::insert_bounded(&mut list, self.k, dist, train);
        }
        for (_, train) in list {
            out.emit(*key, train);
        }
    }

    fn init(&self, key: &i64) -> Vec<(i64, i64)> {
        barrierless::init(*key)
    }

    fn absorb(
        &self,
        key: &i64,
        state: &mut Vec<(i64, i64)>,
        value: (i64, i64),
        _shared: &mut (),
        out: &mut dyn Emit<i64, i64>,
    ) {
        barrierless::absorb(self.k, *key, state, value, out);
    }

    fn merge(&self, key: &i64, a: Vec<(i64, i64)>, b: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
        barrierless::merge(self.k, *key, a, b)
    }

    fn finalize(
        &self,
        key: i64,
        state: Vec<(i64, i64)>,
        _shared: &mut (),
        out: &mut dyn Emit<i64, i64>,
    ) {
        barrierless::finalize(key, state, out);
    }

    /// Selection combines: only a map task's k nearest candidates per
    /// experimental value can survive the final top-k, so the shuffle
    /// never needs more than k records per (map task, key).
    fn combine_enabled(&self) -> bool {
        true
    }

    /// Ships the bounded candidate list, nearest first (the list is kept
    /// distance-ascending, so emission order is deterministic).
    fn combiner_emit(
        &self,
        key: &i64,
        state: Vec<(i64, i64)>,
        out: &mut dyn Emit<i64, (i64, i64)>,
    ) {
        for (dist, train) in state {
            out.emit(*key, (train, dist));
        }
    }

    /// Snapshot accuracy for selection: the fraction of final
    /// `(exp_value, neighbour)` pairs the estimate has *wrong* — missing
    /// or replaced by a farther candidate. A mid-job top-k list can hold
    /// interim neighbours that later records evict, so unlike the
    /// counting apps this error is not monotone record-by-record; it
    /// still converges to zero by end of input.
    fn snapshot_error(&self, estimate: &[(i64, i64)], truth: &[(i64, i64)]) -> f64 {
        if truth.is_empty() {
            return 0.0;
        }
        let mut matched = 0usize;
        let mut t = 0usize;
        while t < truth.len() {
            let key = truth[t].0;
            let t_end = truth[t..].iter().take_while(|(k, _)| *k == key).count() + t;
            let e_start = estimate.partition_point(|(k, _)| *k < key);
            let e_end = estimate[e_start..]
                .iter()
                .take_while(|(k, _)| *k == key)
                .count()
                + e_start;
            // Multiset intersection of the neighbour values for this key.
            let mut want: Vec<i64> = truth[t..t_end].iter().map(|(_, v)| *v).collect();
            want.sort_unstable();
            let mut have: Vec<i64> = estimate[e_start..e_end].iter().map(|(_, v)| *v).collect();
            have.sort_unstable();
            let (mut i, mut j) = (0, 0);
            while i < want.len() && j < have.len() {
                match want[i].cmp(&have[j]) {
                    std::cmp::Ordering::Equal => {
                        matched += 1;
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                }
            }
            t = t_end;
        }
        1.0 - matched as f64 / truth.len() as f64
    }

    fn name(&self) -> &'static str {
        "knn-barrierless"
    }

    fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool {
        write_knn_identity(w, self.k, &self.experimental);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig};
    use mr_workloads::KnnWorkload;
    use std::collections::BTreeMap;

    fn setup() -> (Vec<i64>, Vec<Vec<(u64, i64)>>) {
        let w = KnnWorkload {
            seed: 21,
            experimental: 20,
            train_per_chunk: 150,
            value_range: 1_000_000,
        };
        let exp = w.experimental_set();
        let splits = (0..4).map(|c| w.chunk(c)).collect();
        (exp, splits)
    }

    /// Reference top-k distances per experimental value.
    fn reference(exp: &[i64], splits: &[Vec<(u64, i64)>], k: usize) -> BTreeMap<i64, Vec<i64>> {
        let mut out = BTreeMap::new();
        for &e in exp {
            let mut dists: Vec<i64> = splits
                .iter()
                .flatten()
                .map(|(_, t)| (e - t).abs())
                .collect();
            dists.sort();
            dists.truncate(k);
            out.insert(e, dists);
        }
        out
    }

    fn distances_of(exp: i64, trains: &[i64]) -> Vec<i64> {
        let mut d: Vec<i64> = trains.iter().map(|t| (exp - t).abs()).collect();
        d.sort();
        d
    }

    #[test]
    fn original_under_barrier_matches_reference() {
        let (exp, splits) = setup();
        let app = KnnBarrier {
            k: 10,
            experimental: exp.clone(),
        };
        let out = LocalRunner::new(4)
            .run_with_partitioner(
                &app,
                splits.clone(),
                &JobConfig::new(3),
                &original::ExpPartitioner,
            )
            .unwrap();
        let mut got: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for (e, train) in out.into_sorted_output() {
            got.entry(e).or_default().push(train);
        }
        let reference = reference(&exp, &splits, 10);
        assert_eq!(got.len(), reference.len());
        for (e, trains) in &got {
            assert_eq!(
                distances_of(*e, trains),
                reference[e],
                "wrong neighbours for exp {e}"
            );
        }
    }

    #[test]
    fn barrierless_matches_original() {
        let (exp, splits) = setup();
        let k = 10;
        let reference = reference(&exp, &splits, k);
        let app = KnnBarrierless {
            k,
            experimental: exp,
        };
        let out = LocalRunner::new(4)
            .run(
                &app,
                splits,
                &JobConfig::new(3).engine(Engine::barrierless()),
            )
            .unwrap();
        let mut got: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
        for (e, train) in out.into_sorted_output() {
            got.entry(e).or_default().push(train);
        }
        assert_eq!(got.len(), reference.len());
        for (e, trains) in &got {
            assert_eq!(distances_of(*e, trains), reference[e]);
        }
    }

    #[test]
    fn combiner_truncation_preserves_nearest_neighbours() {
        use mr_core::counters::names;
        use mr_core::CombinerPolicy;
        let (exp, splits) = setup();
        let k = 10;
        let reference = reference(&exp, &splits, k);
        let app = KnnBarrierless {
            k,
            experimental: exp,
        };
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let cfg = JobConfig::new(3)
                .engine(engine.clone())
                .combiner(CombinerPolicy::enabled());
            let out = LocalRunner::new(4).run(&app, splits.clone(), &cfg).unwrap();
            // 150 trains/chunk × k=10 per (split, key): real truncation.
            assert!(
                out.counters.get(names::COMBINE_OUTPUT_RECORDS)
                    < out.counters.get(names::COMBINE_INPUT_RECORDS),
                "top-k combiner truncated nothing under {engine:?}"
            );
            let mut got: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
            for (e, train) in out.into_sorted_output() {
                got.entry(e).or_default().push(train);
            }
            assert_eq!(got.len(), reference.len());
            for (e, trains) in &got {
                assert_eq!(
                    distances_of(*e, trains),
                    reference[e],
                    "wrong neighbours for exp {e} under {engine:?} with combiner"
                );
            }
        }
    }

    #[test]
    fn partial_state_is_bounded_by_k_per_key() {
        let (exp, splits) = setup();
        let n_exp = exp.len();
        let app = KnnBarrierless {
            k: 5,
            experimental: exp,
        };
        let out = LocalRunner::new(2)
            .run(
                &app,
                splits,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        // Table 1: O(k * keys).
        assert!(out.reports[0].store.peak_entries <= n_exp);
        assert_eq!(out.record_count(), n_exp * 5);
    }

    #[test]
    fn snapshot_error_counts_wrong_neighbours() {
        let app = KnnBarrierless {
            k: 2,
            experimental: vec![10, 20],
        };
        let truth = vec![(10i64, 9i64), (10, 11), (20, 19), (20, 21)];
        assert_eq!(app.snapshot_error(&[], &truth), 1.0);
        assert_eq!(app.snapshot_error(&truth, &truth), 0.0);
        // One of four pairs wrong: an interim neighbour (40) that the
        // true neighbour 21 later evicts.
        let interim = vec![(10i64, 9i64), (10, 11), (20, 19), (20, 40)];
        assert_eq!(app.snapshot_error(&interim, &truth), 0.25);
        // A whole key missing: half the pairs wrong.
        let missing = vec![(10i64, 9i64), (10, 11)];
        assert_eq!(app.snapshot_error(&missing, &truth), 0.5);
    }

    #[test]
    fn snapshots_of_topk_lists_end_exact_under_both_policies() {
        use mr_core::{MemoryPolicy, SnapshotPolicy};
        let (exp, splits) = setup();
        let app = KnnBarrierless {
            k: 5,
            experimental: exp,
        };
        for memory in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge {
                threshold_bytes: 2048,
            },
        ] {
            let cfg = JobConfig::new(2)
                .engine(Engine::BarrierLess { memory })
                .snapshots(SnapshotPolicy::EveryRecords { records: 400 })
                .scratch_dir(std::env::temp_dir().join("mr-apps-knn-snap"));
            let out = mr_core::local::LocalRunner::new(4)
                .run(&app, splits.clone(), &cfg)
                .unwrap();
            assert!(out.snapshot_count() >= 2);
            for (r, snaps) in out.snapshots.iter().enumerate() {
                let last = snaps.last().unwrap();
                assert_eq!(last.estimate, out.partitions[r]);
                assert_eq!(app.snapshot_error(&last.estimate, &out.partitions[r]), 0.0);
            }
        }
    }

    #[test]
    fn fewer_trains_than_k_emits_what_exists() {
        let app = KnnBarrierless {
            k: 10,
            experimental: vec![100],
        };
        let splits = vec![vec![(0u64, 90i64), (1, 105)]];
        let out = LocalRunner::new(1)
            .run(
                &app,
                splits,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        assert_eq!(out.record_count(), 2);
    }
}
