//! Barrier-less kNN: running size-k selection (§4.4).
//!
//! "The barrier-less version maintains a k-value-per-key context …
//! for each key, the Reducer maintains a size-k ordered linked list, and
//! decides if the most recently received (train_value, distance) tuple
//! belongs in the list … evicting the tuple with the largest distance if
//! the linked list size exceeds k."

use mr_core::Emit;

/// Emits `(exp, (train, |exp - train|))` — plain keys, tuple values.
pub fn map(experimental: &[i64], train: i64, out: &mut dyn Emit<i64, (i64, i64)>) {
    for &exp in experimental {
        out.emit(exp, (train, (exp - train).abs()));
    }
}

/// A fresh, empty candidate list for a newly seen experimental value.
pub fn init(_key: i64) -> Vec<(i64, i64)> {
    Vec::new()
}

/// Ordered insert of `(dist, train)`, keeping only the k smallest.
pub fn insert_bounded(list: &mut Vec<(i64, i64)>, k: usize, dist: i64, train: i64) {
    let pos = list.partition_point(|&(d, _)| d <= dist);
    if pos < k {
        list.insert(pos, (dist, train));
        list.truncate(k);
    }
}

/// One record's reduce(): consider the candidate for the running top-k.
pub fn absorb(
    k: usize,
    _key: i64,
    list: &mut Vec<(i64, i64)>,
    value: (i64, i64),
    _out: &mut dyn Emit<i64, i64>,
) {
    let (train, dist) = value;
    insert_bounded(list, k, dist, train);
}

/// Two spilled candidate lists combine by sorted merge + re-truncation.
pub fn merge(k: usize, _key: i64, a: Vec<(i64, i64)>, b: Vec<(i64, i64)>) -> Vec<(i64, i64)> {
    let mut all = a;
    for (dist, train) in b {
        insert_bounded(&mut all, k, dist, train);
    }
    all
}

/// All values seen: "the contents of the linked list are emitted".
pub fn finalize(key: i64, list: Vec<(i64, i64)>, out: &mut dyn Emit<i64, i64>) {
    for (_dist, train) in list {
        out.emit(key, train);
    }
}
