//! Barrier-less WordCount reduce — Algorithm 2 of the paper.
//!
//! Records arrive one at a time, in shuffle order, so a running count per
//! word must be kept in the partial-result store (the paper's TreeMap).
//! The final counts are written only "after all the reduce invocations
//! are done". The per-key memory is O(keys) — Table 1's Aggregation row.

use mr_core::Emit;

/// `TreeMap does not contain key ⇒ insert (key, 0)` — Algorithm 2's run().
pub fn init(_key: &str) -> u64 {
    0
}

/// One record's worth of Algorithm 2's reduce(): add the incoming count
/// to the stored partial result.
pub fn absorb(_key: &str, partial: &mut u64, value: u64) {
    *partial += value;
}

/// Spilled partial counts for the same word combine additively — the same
/// function a combiner would use (§5.1).
pub fn merge(_key: &str, a: u64, b: u64) -> u64 {
    a + b
}

/// End of input: `for each (key, value) in TreeMap: write (key, value)`.
pub fn finalize(key: String, count: u64, out: &mut dyn Emit<String, u64>) {
    out.emit(key, count);
}
