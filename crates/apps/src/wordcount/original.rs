//! Original (barrier) WordCount reduce — Algorithm 1 of the paper.
//!
//! The framework hands the Reducer a key and *all* of its counts at once;
//! it sums them and writes the result immediately. Nothing is retained
//! across invocations.

use mr_core::Emit;

/// `result ← Σ values; write (key, result)`.
pub fn reduce(key: &str, values: &[u64], out: &mut dyn Emit<String, u64>) {
    let mut result = 0u64;
    for v in values {
        result += v;
    }
    out.emit(key.to_string(), result);
}
