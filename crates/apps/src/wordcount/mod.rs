//! WordCount — the Aggregation class (§3.2, §4.3, §6.1.2).
//!
//! The paper's running example: Algorithms 1 and 2, and the appendix
//! listing. Original reduce logic in [`original`], barrier-less rewrite in
//! [`barrierless`] (the +20% LoC row of Table 2).

pub mod barrierless;
pub mod original;

use mr_core::{Application, Emit};

/// Counts occurrences of each whitespace-separated word.
#[derive(Debug, Clone, Default)]
pub struct WordCount;

impl Application for WordCount {
    type InKey = u64;
    type InValue = String;
    type MapKey = String;
    type MapValue = u64;
    type OutKey = String;
    type OutValue = u64;
    type State = u64;
    type Shared = ();

    /// Algorithm 1's map: "for each word in value, emit (word, 1)".
    fn map(&self, _doc: &u64, text: &String, out: &mut dyn Emit<String, u64>) {
        for word in text.split_whitespace() {
            out.emit(word.to_string(), 1);
        }
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &String,
        values: Vec<u64>,
        _shared: &mut (),
        out: &mut dyn Emit<String, u64>,
    ) {
        original::reduce(key, &values, out);
    }

    fn init(&self, key: &String) -> u64 {
        barrierless::init(key)
    }

    fn absorb(
        &self,
        key: &String,
        state: &mut u64,
        value: u64,
        _shared: &mut (),
        _out: &mut dyn Emit<String, u64>,
    ) {
        barrierless::absorb(key, state, value);
    }

    fn merge(&self, key: &String, a: u64, b: u64) -> u64 {
        barrierless::merge(key, a, b)
    }

    fn finalize(&self, key: String, state: u64, _shared: &mut (), out: &mut dyn Emit<String, u64>) {
        barrierless::finalize(key, state, out);
    }

    /// Counting is a commutative fold: the classic combinable app.
    fn combine_enabled(&self) -> bool {
        true
    }

    /// A combined partial count ships as a single `(word, n)` record.
    fn combiner_emit(&self, key: &String, state: u64, out: &mut dyn Emit<String, u64>) {
        out.emit(key.clone(), state);
    }

    /// Snapshot accuracy for counting: relative L1 error of the counts,
    /// `Σ|estimate − truth| / Σtruth` over the union of words (a word
    /// the estimate has not seen yet contributes its whole true count).
    /// Mid-job estimates undercount — every absorbed record closes the
    /// gap monotonically, which is what `fig_snapshot_accuracy` plots.
    fn snapshot_error(&self, estimate: &[(String, u64)], truth: &[(String, u64)]) -> f64 {
        let total: u64 = truth.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let mut gap = 0u64;
        let mut est = estimate.iter().peekable();
        for (word, count) in truth {
            while est.peek().is_some_and(|(w, _)| w < word) {
                gap += est.next().expect("peeked").1; // spurious word
            }
            if est.peek().is_some_and(|(w, _)| w == word) {
                let (_, have) = est.next().expect("peeked");
                gap += count.abs_diff(*have);
            } else {
                gap += count;
            }
        }
        gap += est.map(|(_, n)| n).sum::<u64>();
        (gap as f64 / total as f64).min(1.0)
    }

    fn name(&self) -> &'static str {
        "wordcount"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig, MemoryPolicy};
    use mr_workloads::TextWorkload;
    use std::collections::BTreeMap;

    fn splits(chunks: u64) -> Vec<Vec<(u64, String)>> {
        let w = TextWorkload {
            seed: 42,
            vocab: 500,
            zipf_s: 1.0,
            lines_per_chunk: 100,
            words_per_line: 8,
        };
        (0..chunks).map(|c| w.chunk(c)).collect()
    }

    fn reference_counts(splits: &[Vec<(u64, String)>]) -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        for (_, line) in splits.iter().flatten() {
            for word in line.split_whitespace() {
                *m.entry(word.to_string()).or_insert(0) += 1;
            }
        }
        m
    }

    #[test]
    fn engines_agree_with_reference_counts() {
        let input = splits(4);
        let expect = reference_counts(&input);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let cfg = JobConfig::new(4).engine(engine.clone());
            let out = LocalRunner::new(4)
                .run(&WordCount, input.clone(), &cfg)
                .unwrap();
            let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect, "engine {engine:?} wrong");
        }
    }

    #[test]
    fn all_memory_policies_agree() {
        let input = splits(4);
        let expect = reference_counts(&input);
        for memory in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge {
                threshold_bytes: 4 << 10,
            },
            MemoryPolicy::KvStore {
                cache_bytes: 8 << 10,
            },
        ] {
            let cfg = JobConfig::new(2)
                .engine(Engine::BarrierLess { memory })
                .scratch_dir(std::env::temp_dir().join("mr-apps-wc"));
            let out = LocalRunner::new(4)
                .run(&WordCount, input.clone(), &cfg)
                .unwrap();
            let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn combiner_output_is_identical_under_both_engines() {
        use mr_core::counters::names;
        use mr_core::CombinerPolicy;
        let input = splits(4);
        let expect = reference_counts(&input);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let cfg = JobConfig::new(3)
                .engine(engine.clone())
                .combiner(CombinerPolicy::enabled());
            let out = LocalRunner::new(4)
                .run(&WordCount, input.clone(), &cfg)
                .unwrap();
            assert!(
                out.counters.get(names::COMBINE_OUTPUT_RECORDS)
                    < out.counters.get(names::COMBINE_INPUT_RECORDS),
                "combiner did not reduce records under {engine:?}"
            );
            let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect, "engine {engine:?} with combiner wrong");
        }
    }

    #[test]
    fn snapshot_error_measures_relative_count_gap() {
        let truth = vec![
            ("alpha".to_string(), 6u64),
            ("beta".to_string(), 2),
            ("gamma".to_string(), 2),
        ];
        assert_eq!(WordCount.snapshot_error(&[], &truth), 1.0);
        assert_eq!(WordCount.snapshot_error(&truth, &truth), 0.0);
        // Half the mass seen: (3 + 1 + 1) missing out of 10.
        let half = vec![
            ("alpha".to_string(), 3u64),
            ("beta".to_string(), 1),
            ("gamma".to_string(), 1),
        ];
        assert_eq!(WordCount.snapshot_error(&half, &truth), 0.5);
        // A word truth never saw is pure error mass, capped at 1.
        let wrong = vec![("zzz".to_string(), 50u64)];
        assert_eq!(WordCount.snapshot_error(&wrong, &truth), 1.0);
        assert_eq!(WordCount.snapshot_error(&[], &[]), 0.0);
    }

    #[test]
    fn snapshots_converge_to_zero_error_per_reducer() {
        use mr_core::SnapshotPolicy;
        let input = splits(4);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .snapshots(SnapshotPolicy::EveryRecords { records: 300 });
        let out = mr_core::local::LocalRunner::new(4)
            .run(&WordCount, input, &cfg)
            .unwrap();
        assert!(out.snapshot_count() >= 4);
        for (r, snaps) in out.snapshots.iter().enumerate() {
            let truth = &out.partitions[r];
            let errors: Vec<f64> = snaps
                .iter()
                .map(|s| WordCount.snapshot_error(&s.estimate, truth))
                .collect();
            // Counting converges monotonically, ending exact.
            for pair in errors.windows(2) {
                assert!(pair[1] <= pair[0] + 1e-12, "error went up: {errors:?}");
            }
            assert_eq!(*errors.last().unwrap(), 0.0);
            assert!(errors[0] > 0.0, "first snapshot already exact? {errors:?}");
        }
    }

    #[test]
    fn partial_results_scale_with_keys_not_records() {
        // Table 1: aggregation keeps O(keys) state. Doubling the records
        // over a fixed vocabulary must not double peak entries.
        let small = {
            let cfg = JobConfig::new(1).engine(Engine::barrierless());
            LocalRunner::new(2)
                .run(&WordCount, splits(2), &cfg)
                .unwrap()
                .total_peak_entries()
        };
        let large = {
            let cfg = JobConfig::new(1).engine(Engine::barrierless());
            LocalRunner::new(2)
                .run(&WordCount, splits(8), &cfg)
                .unwrap()
                .total_peak_entries()
        };
        // 4x the records, same 500-word vocabulary: peaks stay ~vocab.
        assert!(large <= 500 && small <= 500);
        assert!(
            (large as f64) < (small as f64) * 2.0,
            "entries grew with records: {small} -> {large}"
        );
    }
}
