//! Genetic algorithm — the Cross-key-operations class (§4.6, §6.1.5).
//!
//! The Reduce side keeps a *window* of previously seen individuals; when
//! the window fills it performs selection and crossover and emits the
//! offspring. The window is shared *across keys*, so per-key state is
//! never kept and memory is O(window_size) — Table 1's Cross-key row.
//!
//! "The genetic algorithm required no change to perform barrier-less
//! calculation" (§6.1.5) — accordingly this is a single source file and
//! Table 2 reports a 0% line increase: the same window logic serves both
//! the grouped and the incremental form.

use mr_core::{Application, ChainableApplication, Emit, IdentityWriter};
use mr_workloads::{mix, GaWorkload};

/// Windowed selection + crossover over a stream of scored individuals.
#[derive(Debug, Clone)]
pub struct GeneticAlgorithm {
    /// Individuals collected before an evolution step runs.
    pub window_size: usize,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        GeneticAlgorithm { window_size: 16 }
    }
}

/// The cross-key window: one per reduce task.
#[derive(Debug, Default)]
pub struct Window {
    members: Vec<(u64, u32)>,
}

impl GeneticAlgorithm {
    /// Admits `(genome, fitness)` to the window, running an evolution
    /// step when it fills.
    fn admit(&self, window: &mut Window, genome: u64, fitness: u32, out: &mut dyn Emit<u64, u32>) {
        window.members.push((genome, fitness));
        if window.members.len() >= self.window_size {
            Self::evolve(&mut window.members, out);
        }
    }

    /// Selection (rank by fitness) + single-point crossover of adjacent
    /// pairs. Crossover conserves total bit count, so the summed OneMax
    /// fitness of the offspring equals that of the parents — a checked
    /// invariant in the tests.
    fn evolve(members: &mut Vec<(u64, u32)>, out: &mut dyn Emit<u64, u32>) {
        members.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut pairs = members.chunks_exact(2);
        for pair in &mut pairs {
            let (a, b) = (pair[0].0, pair[1].0);
            // Deterministic crossover point derived from the genomes
            // themselves: no RNG state to thread through the reducer.
            let point = (mix(a, b) % 63 + 1) as u32;
            let (c, d) = GaWorkload::crossover(a, b, point);
            out.emit(c, GaWorkload::fitness(c));
            out.emit(d, GaWorkload::fitness(d));
        }
        if let [(genome, fitness)] = pairs.remainder() {
            out.emit(*genome, *fitness);
        }
        members.clear();
    }
}

impl Application for GeneticAlgorithm {
    type InKey = u64;
    type InValue = u64;
    /// "Each individual is represented as a key."
    type MapKey = u64;
    type MapValue = u32;
    type OutKey = u64;
    type OutValue = u32;
    type State = ();
    type Shared = Window;

    /// "The map computes the fitness of each individual and emits the
    /// tuple (individual, fitness)."
    fn map(&self, _id: &u64, genome: &u64, out: &mut dyn Emit<u64, u32>) {
        out.emit(*genome, GaWorkload::fitness(*genome));
    }

    fn new_shared(&self) -> Window {
        Window::default()
    }

    fn reduce_grouped(
        &self,
        key: &u64,
        values: Vec<u32>,
        window: &mut Window,
        out: &mut dyn Emit<u64, u32>,
    ) {
        for fitness in values {
            self.admit(window, *key, fitness, out);
        }
    }

    /// Cross-key state only: no per-key partial results (Table 1).
    fn uses_keyed_state(&self) -> bool {
        false
    }

    fn init(&self, _key: &u64) {}

    fn absorb(
        &self,
        key: &u64,
        _state: &mut (),
        fitness: u32,
        window: &mut Window,
        out: &mut dyn Emit<u64, u32>,
    ) {
        self.admit(window, *key, fitness, out);
    }

    fn merge(&self, _key: &u64, _a: (), _b: ()) {}

    fn finalize(&self, _key: u64, _state: (), _window: &mut Window, _out: &mut dyn Emit<u64, u32>) {
    }

    /// "When a partial result is removed from the window, it is written as
    /// a final result" — stragglers left in a non-full window pass through.
    fn flush_shared(&self, window: Window, out: &mut dyn Emit<u64, u32>) {
        for (genome, fitness) in window.members {
            out.emit(genome, fitness);
        }
    }

    fn name(&self) -> &'static str {
        "genetic-algorithm"
    }

    fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool {
        w.write_u64(self.window_size as u64);
        true
    }
}

/// One generation per chained job: the reduce side's offspring `(genome,
/// fitness)` records become the next generation's input population —
/// the map re-derives fitness from the genome, so composition needs no
/// code change, just this boundary. With the streaming handoff a
/// K-generation run has no barrier anywhere: generation N+1's fitness
/// evaluation starts on the earliest offspring while generation N's
/// windows are still evolving.
impl ChainableApplication<u64, u32> for GeneticAlgorithm {
    fn adapt_input(&self, genome: u64, _fitness: u32) -> (u64, u64) {
        (genome, genome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig};
    use mr_workloads::GaWorkload as Gen;

    fn splits(chunks: u64, per_chunk: usize) -> Vec<Vec<(u64, u64)>> {
        let w = Gen::new(31, per_chunk);
        (0..chunks).map(|c| w.chunk(c)).collect()
    }

    #[test]
    fn population_size_is_preserved() {
        let input = splits(4, 64);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let out = LocalRunner::new(2)
                .run(
                    &GeneticAlgorithm::default(),
                    input.clone(),
                    &JobConfig::new(2).engine(engine),
                )
                .unwrap();
            assert_eq!(out.record_count(), 4 * 64);
        }
    }

    #[test]
    fn crossover_conserves_total_fitness() {
        // OneMax fitness = popcount; single-point crossover conserves set
        // bits, so total fitness in == total fitness out.
        let input = splits(3, 50);
        let total_in: u64 = input
            .iter()
            .flatten()
            .map(|(_, g)| Gen::fitness(*g) as u64)
            .sum();
        let out = LocalRunner::new(1)
            .run(
                &GeneticAlgorithm::default(),
                input,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        let total_out: u64 = out
            .partitions
            .iter()
            .flatten()
            .map(|(_, f)| *f as u64)
            .sum();
        assert_eq!(total_in, total_out);
    }

    #[test]
    fn emitted_fitness_matches_genome() {
        let input = splits(2, 40);
        let out = LocalRunner::new(2)
            .run(
                &GeneticAlgorithm::default(),
                input,
                &JobConfig::new(2).engine(Engine::barrierless()),
            )
            .unwrap();
        for (genome, fitness) in out.partitions.iter().flatten() {
            assert_eq!(*fitness, Gen::fitness(*genome));
        }
    }

    #[test]
    fn k_generation_chain_conserves_population_and_fitness() {
        use mr_core::{ChainSpec, HandoffMode, HashPartitioner};
        // OneMax fitness is popcount and single-point crossover conserves
        // set bits, so across ANY number of generations — and regardless
        // of how the streamed handoff interleaves arrivals — the
        // population size and the total fitness are invariant.
        let input = splits(4, 32);
        let population = 4 * 32;
        let total_fitness: u64 = input
            .iter()
            .flatten()
            .map(|(_, g)| Gen::fitness(*g) as u64)
            .sum();
        let generations = 5;
        for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
            let spec = ChainSpec::new(
                (0..generations)
                    .map(|_| JobConfig::new(2).engine(Engine::barrierless()))
                    .collect(),
            )
            .handoff(handoff);
            let out = LocalRunner::new(4)
                .run_chain_iter(
                    &GeneticAlgorithm::default(),
                    input.clone(),
                    &spec,
                    &HashPartitioner,
                )
                .unwrap();
            assert_eq!(out.stages.len(), generations);
            assert_eq!(
                out.output.record_count(),
                population,
                "{handoff:?}: population drifted"
            );
            let got: u64 = out
                .output
                .partitions
                .iter()
                .flatten()
                .map(|(_, f)| *f as u64)
                .sum();
            assert_eq!(got, total_fitness, "{handoff:?}: fitness not conserved");
            // Every emitted fitness is honest.
            for (genome, fitness) in out.output.partitions.iter().flatten() {
                assert_eq!(*fitness, Gen::fitness(*genome));
            }
            // Each generation handed its full population downstream.
            for stage in &out.stages[..generations - 1] {
                assert_eq!(stage.handoff_records, population as u64);
            }
        }
    }

    #[test]
    fn barrier_chain_equals_the_sequential_fold_exactly() {
        use mr_core::{ChainSpec, HandoffMode, HashPartitioner};
        let input = splits(3, 40);
        let generations = 3;
        let app = GeneticAlgorithm::default();
        // Barrier engine: the per-stage output is a deterministic
        // function of the input (sorted grouping), so the chain and the
        // hand fold must agree byte for byte.
        let cfg = || JobConfig::new(2);
        // Fold by hand.
        let mut current = input.clone();
        let mut expect = Vec::new();
        for _ in 0..generations {
            let run = LocalRunner::new(4).run(&app, current, &cfg()).unwrap();
            expect = run.partitions.clone();
            current = run
                .partitions
                .into_iter()
                .map(|p| p.into_iter().map(|(g, f)| app.adapt_input(g, f)).collect())
                .collect();
        }
        let spec =
            ChainSpec::new((0..generations).map(|_| cfg()).collect()).handoff(HandoffMode::Barrier);
        let out = LocalRunner::new(4)
            .run_chain_iter(&app, input, &spec, &HashPartitioner)
            .unwrap();
        assert_eq!(out.output.partitions, expect);
    }

    #[test]
    fn no_keyed_state_is_kept() {
        let out = LocalRunner::new(1)
            .run(
                &GeneticAlgorithm::default(),
                splits(2, 64),
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        assert_eq!(out.reports[0].store.peak_entries, 0);
    }
}
