//! Sort — the Sorting class (§4.2, §6.1.1).
//!
//! "The only prominent kind of operation … that requires a strict ordering
//! on the output keys." With the barrier, Sort is an identity program: the
//! framework's shuffle sort does all the work. Without the barrier the
//! Reduce side must sort by itself, via an ordered map of key → duplicate
//! count — the paper's degenerate case where barrier-less *loses* by a few
//! percent, because merge sort beats red-black-tree insertion.
//!
//! Original reduce logic: [`original`]; barrier-less rewrite:
//! [`barrierless`] (the +240% LoC row of Table 2).

pub mod barrierless;
pub mod original;

use mr_core::{Application, ChainableApplication, Emit, Partitioner};

/// TeraSort-style total-order sort of `u64` keys.
#[derive(Debug, Clone, Default)]
pub struct Sort;

/// Range partitioner sending each key to the reducer owning its interval,
/// so that concatenated per-partition outputs are globally sorted —
/// Hadoop's TotalOrderPartitioner.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    /// Upper-boundary sample points, ascending; partition i takes keys in
    /// `[bounds[i-1], bounds[i])`.
    pub bounds: Vec<u64>,
}

impl RangePartitioner {
    /// Even boundaries over the full `u64` key space for `partitions`.
    pub fn uniform(partitions: usize) -> Self {
        assert!(partitions >= 1);
        let step = u64::MAX / partitions as u64;
        RangePartitioner {
            bounds: (1..partitions as u64).map(|i| i * step).collect(),
        }
    }
}

impl Partitioner<u64> for RangePartitioner {
    fn partition(&self, key: &u64, partitions: usize) -> usize {
        debug_assert_eq!(self.bounds.len() + 1, partitions);
        let _ = partitions;
        self.bounds.partition_point(|b| key >= b)
    }
}

impl Application for Sort {
    type InKey = u64;
    type InValue = u64;
    type MapKey = u64;
    type MapValue = ();
    type OutKey = u64;
    type OutValue = ();
    type State = u64;
    type Shared = ();

    /// Identity map: the record's value *is* the sort key.
    fn map(&self, _id: &u64, key: &u64, out: &mut dyn Emit<u64, ()>) {
        out.emit(*key, ());
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &u64,
        values: Vec<()>,
        _shared: &mut (),
        out: &mut dyn Emit<u64, ()>,
    ) {
        original::reduce(*key, values.len() as u64, out);
    }

    fn init(&self, key: &u64) -> u64 {
        barrierless::init(*key)
    }

    fn absorb(
        &self,
        key: &u64,
        state: &mut u64,
        _v: (),
        _shared: &mut (),
        out: &mut dyn Emit<u64, ()>,
    ) {
        barrierless::absorb(*key, state, out);
    }

    fn merge(&self, key: &u64, a: u64, b: u64) -> u64 {
        barrierless::merge(*key, a, b)
    }

    fn finalize(&self, key: u64, state: u64, _shared: &mut (), out: &mut dyn Emit<u64, ()>) {
        barrierless::finalize(key, state, out);
    }

    fn requires_sorted_output(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "sort"
    }
}

/// The `grep → sort` chain boundary (log analysis): grep emits matching
/// `(line id, line text)` records; the sort stage orders the matching
/// line ids (timestamps in a time-keyed log). The text served its
/// purpose at the filter — the sort key is the id.
impl ChainableApplication<u64, String> for Sort {
    fn adapt_input(&self, id: u64, _line: String) -> (u64, u64) {
        (id, id)
    }

    fn handoff_bytes(&self, _id: &u64, line: &String) -> usize {
        std::mem::size_of::<u64>() + line.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::local::LocalRunner;
    use mr_core::{Engine, JobConfig, MemoryPolicy};
    use mr_workloads::SortWorkload;

    fn splits(chunks: u64, per_chunk: usize, key_range: u64) -> Vec<Vec<(u64, u64)>> {
        let w = SortWorkload {
            seed: 77,
            records_per_chunk: per_chunk,
            key_range,
        };
        (0..chunks).map(|c| w.chunk(c)).collect()
    }

    fn is_sorted(v: &[(u64, ())]) -> bool {
        v.windows(2).all(|w| w[0].0 <= w[1].0)
    }

    #[test]
    fn barrier_engine_emits_each_partition_sorted() {
        let out = LocalRunner::new(4)
            .run_with_partitioner(
                &Sort,
                splits(6, 200, u64::MAX),
                &JobConfig::new(4),
                &RangePartitioner::uniform(4),
            )
            .unwrap();
        let mut total = 0;
        let mut last_max = 0u64;
        for p in &out.partitions {
            assert!(is_sorted(p), "partition not sorted");
            if let (Some(first), Some(last)) = (p.first(), p.last()) {
                assert!(first.0 >= last_max, "partitions overlap");
                last_max = last.0;
            }
            total += p.len();
        }
        assert_eq!(total, 6 * 200);
    }

    #[test]
    fn barrierless_sort_matches_barrier_sort() {
        let input = splits(5, 150, 1000); // narrow range -> duplicates
        let barrier = LocalRunner::new(4)
            .run_with_partitioner(
                &Sort,
                input.clone(),
                &JobConfig::new(3),
                &RangePartitioner::uniform(3),
            )
            .unwrap();
        let pipelined = LocalRunner::new(4)
            .run_with_partitioner(
                &Sort,
                input,
                &JobConfig::new(3).engine(Engine::barrierless()),
                &RangePartitioner::uniform(3),
            )
            .unwrap();
        for (bp, pp) in barrier.partitions.iter().zip(&pipelined.partitions) {
            assert!(is_sorted(pp), "barrier-less partition not sorted");
            assert_eq!(bp, pp);
        }
    }

    #[test]
    fn duplicates_survive_the_counting_representation() {
        let input = vec![vec![(0u64, 5u64), (1, 5), (2, 5), (3, 1)]];
        let out = LocalRunner::new(1)
            .run(
                &Sort,
                input,
                &JobConfig::new(1).engine(Engine::barrierless()),
            )
            .unwrap();
        let keys: Vec<u64> = out.partitions[0].iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 5, 5, 5]);
    }

    #[test]
    fn spill_merge_preserves_sortedness_and_duplicates() {
        let input = splits(4, 300, 500);
        let expect = {
            let mut all: Vec<u64> = input.iter().flatten().map(|(_, k)| *k).collect();
            all.sort();
            all
        };
        let cfg = JobConfig::new(1)
            .engine(Engine::BarrierLess {
                memory: MemoryPolicy::SpillMerge {
                    threshold_bytes: 2048,
                },
            })
            .scratch_dir(std::env::temp_dir().join("mr-apps-sort-spill"));
        let out = LocalRunner::new(2).run(&Sort, input, &cfg).unwrap();
        assert!(out.reports[0].store.spill_files > 0, "test should spill");
        let keys: Vec<u64> = out.partitions[0].iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn grep_to_sort_chain_is_identical_under_both_handoffs() {
        use crate::grep::Grep;
        use mr_core::{ChainSpec, HandoffMode, HashPartitioner};
        // A log where every third line is an error; the chain filters
        // then orders the matching line ids.
        let splits: Vec<Vec<(u64, String)>> = (0..4)
            .map(|s| {
                (0..30u64)
                    .map(|l| {
                        let id = s * 1000 + l;
                        let text = if id % 3 == 0 {
                            format!("{id} error: disk wobbled svc=db")
                        } else {
                            format!("{id} ok")
                        };
                        (id, text)
                    })
                    .collect()
            })
            .collect();
        let expect: Vec<u64> = splits
            .iter()
            .flatten()
            .filter(|(_, t)| t.contains("error"))
            .map(|(id, _)| *id)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let grep = Grep::new("error");
        let run = |handoff| {
            let spec = ChainSpec::new(vec![
                JobConfig::new(3).engine(Engine::barrierless()),
                JobConfig::new(2).engine(Engine::barrierless()),
            ])
            .handoff(handoff);
            LocalRunner::new(4)
                .run_chain2(
                    &grep,
                    &Sort,
                    splits.clone(),
                    &spec,
                    &HashPartitioner,
                    &RangePartitioner::uniform(2),
                )
                .unwrap()
        };
        let barrier = run(HandoffMode::Barrier);
        let streaming = run(HandoffMode::Streaming);
        assert_eq!(
            barrier.output.partitions, streaming.output.partitions,
            "handoff mode changed the chained output"
        );
        let got: Vec<u64> = streaming
            .output
            .partitions
            .iter()
            .flatten()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(got, expect, "chain lost or disordered matches");
        assert_eq!(streaming.handoff_records(), expect.len() as u64);
        assert!(streaming.stages[0].first_handoff_secs.is_some());
    }

    #[test]
    fn range_partitioner_respects_bounds() {
        let p = RangePartitioner::uniform(4);
        assert_eq!(p.partition(&0u64, 4), 0);
        assert_eq!(p.partition(&u64::MAX, 4), 3);
        let step = u64::MAX / 4;
        assert_eq!(p.partition(&(step - 1), 4), 0);
        assert_eq!(p.partition(&step, 4), 1);
    }
}
