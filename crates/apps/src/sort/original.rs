//! Original (barrier) Sort reduce logic.
//!
//! With the framework sorting by key at the barrier, the Reducer is the
//! Identity function — it writes each key as many times as it has values.
//! This is the paper's 28-line "IdentityMapper + IdentityReducer" program.

use mr_core::Emit;

/// Emits `key` once per duplicate; input arrives already key-sorted.
pub fn reduce(key: u64, duplicates: u64, out: &mut dyn Emit<u64, ()>) {
    for _ in 0..duplicates {
        out.emit(key, ());
    }
}
