//! Barrier-less Sort reduce logic (§6.1.1).
//!
//! Without the framework sort, the Reduce side must order keys itself.
//! Following the paper: "We use a Red-Black tree implementation (Java
//! TreeMap) to store a per-key count value. This count value is
//! incremented so that duplicate values do not consume memory. Then, we
//! emit the key count number of times in the end."
//!
//! The ordered map lives in the engine's partial-result store (a
//! `BTreeMap`, Rust's red-black-tree equivalent); this module supplies the
//! per-key state transitions. None of the partial results can be emitted
//! until every value has been seen, so the store grows to O(records) —
//! Table 1's worst case — and the whole job becomes a race between the
//! framework's merge sort and these tree insertions, which merge sort
//! wins by 2–9% (Figure 6a).

use mr_core::Emit;

/// A fresh duplicate counter for a newly seen key.
pub fn init(_key: u64) -> u64 {
    0
}

/// One more duplicate of `key` has arrived.
pub fn absorb(_key: u64, count: &mut u64, _out: &mut dyn Emit<u64, ()>) {
    *count += 1;
}

/// Two spilled counters for the same key combine additively.
pub fn merge(_key: u64, a: u64, b: u64) -> u64 {
    a + b
}

/// All input seen: emit `key` once per counted duplicate, in key order
/// (the store guarantees ordered finalization).
pub fn finalize(key: u64, count: u64, out: &mut dyn Emit<u64, ()>) {
    for _ in 0..count {
        out.emit(key, ());
    }
}
