//! Property tests for the spill-file codec: round-trips must be exact
//! for every type the applications store, and sequential encodings must
//! decode back in order (the spill-run format depends on it).

use mr_core::Codec;
use proptest::prelude::*;
use std::collections::HashSet;

fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let bytes = v.to_bytes();
    let back = T::from_bytes(&bytes).expect("decode");
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #[test]
    fn integers_roundtrip(a in any::<u64>(), b in any::<i64>(), c in any::<u32>(), d in any::<u8>()) {
        roundtrip(&a)?;
        roundtrip(&b)?;
        roundtrip(&c)?;
        roundtrip(&d)?;
    }

    #[test]
    fn floats_roundtrip_bitwise(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let back = f64::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back.to_bits(), bits, "bit-exact including NaN payloads");
    }

    #[test]
    fn strings_and_vecs_roundtrip(s in ".{0,64}", v in prop::collection::vec(any::<u64>(), 0..64)) {
        roundtrip(&s)?;
        roundtrip(&v)?;
    }

    #[test]
    fn sets_and_tuples_roundtrip(
        set in prop::collection::hash_set(any::<u32>(), 0..40),
        t in (any::<u64>(), ".{0,16}"),
    ) {
        let set: HashSet<u32> = set;
        roundtrip(&set)?;
        roundtrip(&t)?;
    }

    /// Spill-run shape: many (key, state) pairs encoded back to back must
    /// decode in order with nothing left over.
    #[test]
    fn sequential_pairs_decode_in_order(
        pairs in prop::collection::vec((".{0,12}", any::<u64>()), 0..50)
    ) {
        let mut buf = Vec::new();
        for (k, s) in &pairs {
            k.encode(&mut buf);
            s.encode(&mut buf);
        }
        let mut slice = buf.as_slice();
        for (k, s) in &pairs {
            prop_assert_eq!(&String::decode(&mut slice).unwrap(), k);
            prop_assert_eq!(&u64::decode(&mut slice).unwrap(), s);
        }
        prop_assert!(slice.is_empty());
    }

    /// Truncating any encoding must error, never panic or return garbage
    /// silently.
    #[test]
    fn truncation_is_detected(v in prop::collection::vec(any::<u64>(), 1..20), cut in any::<prop::sample::Index>()) {
        let bytes = v.to_bytes();
        let cut = cut.index(bytes.len()); // 0..len-1: always a strict prefix
        let result = Vec::<u64>::from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err(), "truncated decode must fail");
    }
}
