//! Property tests for the partial-result stores: for any record stream
//! and any spill threshold / cache size, all three §5 policies — each
//! under both store indexes (ordered map vs hashed map with
//! sort-at-drain) — must produce byte-identical results, and neither
//! spilling nor the index strategy may change what a reducer emits.

use mr_core::engine::pipeline::reduce_partition_barrierless;
use mr_core::{Application, Counters, Emit, Engine, JobConfig, MemoryPolicy, StoreIndex};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

static SERIAL: AtomicU64 = AtomicU64::new(0);

fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mr-core-prop-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Max-per-key with a vector state — exercises shrinking/growing states
/// and non-trivial merges.
struct MaxTracker;

impl Application for MaxTracker {
    type InKey = u64;
    type InValue = (u32, i64);
    type MapKey = u32;
    type MapValue = i64;
    type OutKey = u32;
    type OutValue = i64;
    /// Keeps the top-3 values seen, sorted descending.
    type State = Vec<i64>;
    type Shared = ();

    fn map(&self, _k: &u64, v: &(u32, i64), out: &mut dyn Emit<u32, i64>) {
        out.emit(v.0, v.1);
    }
    fn new_shared(&self) {}
    fn reduce_grouped(&self, k: &u32, mut vs: Vec<i64>, _s: &mut (), out: &mut dyn Emit<u32, i64>) {
        vs.sort_by(|a, b| b.cmp(a));
        for v in vs.into_iter().take(3) {
            out.emit(*k, v);
        }
    }
    fn init(&self, _k: &u32) -> Vec<i64> {
        Vec::new()
    }
    fn absorb(
        &self,
        _k: &u32,
        state: &mut Vec<i64>,
        v: i64,
        _s: &mut (),
        _o: &mut dyn Emit<u32, i64>,
    ) {
        let pos = state.partition_point(|&x| x >= v);
        state.insert(pos, v);
        state.truncate(3);
    }
    fn merge(&self, _k: &u32, mut a: Vec<i64>, b: Vec<i64>) -> Vec<i64> {
        for v in b {
            let pos = a.partition_point(|&x| x >= v);
            a.insert(pos, v);
        }
        a.truncate(3);
        a
    }
    fn finalize(&self, k: u32, state: Vec<i64>, _s: &mut (), out: &mut dyn Emit<u32, i64>) {
        for v in state {
            out.emit(k, v);
        }
    }
}

const INDEXES: [StoreIndex; 2] = [StoreIndex::Ordered, StoreIndex::Hashed];

fn run_policy_indexed(
    records: &[(u32, i64)],
    policy: MemoryPolicy,
    index: StoreIndex,
) -> Vec<(u32, i64)> {
    let cfg = JobConfig::new(1)
        .engine(Engine::BarrierLess { memory: policy })
        .store_index(index)
        .scratch_dir(scratch());
    let (out, _) =
        reduce_partition_barrierless(&MaxTracker, &cfg, 0, records.to_vec(), &mut Counters::new())
            .expect("run");
    out
}

fn run_policy(records: &[(u32, i64)], policy: MemoryPolicy) -> Vec<(u32, i64)> {
    run_policy_indexed(records, policy, StoreIndex::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any threshold (including absurdly small, forcing a spill per
    /// handful of records) must leave the output unchanged, under both
    /// store indexes.
    #[test]
    fn spill_threshold_is_invisible(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..250),
        threshold in 64u64..4096,
    ) {
        let reference = run_policy(&records, MemoryPolicy::InMemory);
        for index in INDEXES {
            let spilled = run_policy_indexed(
                &records,
                MemoryPolicy::SpillMerge { threshold_bytes: threshold },
                index,
            );
            prop_assert_eq!(&reference, &spilled, "index {:?}", index);
        }
    }

    /// Any KV cache size — from nearly nothing (every absorb hits disk)
    /// to ample — must leave the output unchanged.
    #[test]
    fn kv_cache_size_is_invisible(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..250),
        cache in 128usize..8192,
    ) {
        let reference = run_policy(&records, MemoryPolicy::InMemory);
        let kv = run_policy(&records, MemoryPolicy::KvStore { cache_bytes: cache });
        prop_assert_eq!(reference, kv);
    }

    /// The tentpole invariant at the store level: for every memory
    /// policy, flipping the index between the ordered map and the hashed
    /// map (amortized sort-at-drain) is byte-invisible.
    #[test]
    fn store_index_is_invisible_under_every_policy(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..250),
        threshold in 64u64..4096,
        cache in 128usize..8192,
    ) {
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge { threshold_bytes: threshold },
            MemoryPolicy::KvStore { cache_bytes: cache },
        ] {
            let ordered = run_policy_indexed(&records, policy.clone(), StoreIndex::Ordered);
            let hashed = run_policy_indexed(&records, policy.clone(), StoreIndex::Hashed);
            prop_assert_eq!(&ordered, &hashed, "policy {:?}", policy);
        }
    }

    /// The incremental form agrees with the grouped form: top-3 per key.
    #[test]
    fn incremental_matches_grouped_semantics(
        records in prop::collection::vec((0u32..20, -1000i64..1000), 1..200),
    ) {
        let got = run_policy(&records, MemoryPolicy::InMemory);
        let mut expect: BTreeMap<u32, Vec<i64>> = BTreeMap::new();
        for &(k, v) in &records {
            expect.entry(k).or_default().push(v);
        }
        let expect: Vec<(u32, i64)> = expect
            .into_iter()
            .flat_map(|(k, mut vs)| {
                vs.sort_by(|a, b| b.cmp(a));
                vs.truncate(3);
                vs.into_iter().map(move |v| (k, v))
            })
            .collect();
        prop_assert_eq!(got, expect);
    }
}
