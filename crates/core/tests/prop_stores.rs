//! Property tests for the partial-result stores: for any record stream
//! and any spill threshold / cache size, all three §5 policies — each
//! under both store indexes (ordered map vs hashed map with
//! sort-at-drain) — must produce byte-identical results, and neither
//! spilling nor the index strategy may change what a reducer emits.

use mr_core::engine::pipeline::{
    reduce_partition_barrierless, reduce_partition_barrierless_traced,
};
use mr_core::{
    Application, Counters, Emit, Engine, JobConfig, MemoryPolicy, SnapshotPolicy, StoreIndex,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

static SERIAL: AtomicU64 = AtomicU64::new(0);

fn scratch() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "mr-core-prop-{}-{}",
        std::process::id(),
        SERIAL.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Max-per-key with a vector state — exercises shrinking/growing states
/// and non-trivial merges.
struct MaxTracker;

impl Application for MaxTracker {
    type InKey = u64;
    type InValue = (u32, i64);
    type MapKey = u32;
    type MapValue = i64;
    type OutKey = u32;
    type OutValue = i64;
    /// Keeps the top-3 values seen, sorted descending.
    type State = Vec<i64>;
    type Shared = ();

    fn map(&self, _k: &u64, v: &(u32, i64), out: &mut dyn Emit<u32, i64>) {
        out.emit(v.0, v.1);
    }
    fn new_shared(&self) {}
    fn reduce_grouped(&self, k: &u32, mut vs: Vec<i64>, _s: &mut (), out: &mut dyn Emit<u32, i64>) {
        vs.sort_by(|a, b| b.cmp(a));
        for v in vs.into_iter().take(3) {
            out.emit(*k, v);
        }
    }
    fn init(&self, _k: &u32) -> Vec<i64> {
        Vec::new()
    }
    fn absorb(
        &self,
        _k: &u32,
        state: &mut Vec<i64>,
        v: i64,
        _s: &mut (),
        _o: &mut dyn Emit<u32, i64>,
    ) {
        let pos = state.partition_point(|&x| x >= v);
        state.insert(pos, v);
        state.truncate(3);
    }
    fn merge(&self, _k: &u32, mut a: Vec<i64>, b: Vec<i64>) -> Vec<i64> {
        for v in b {
            let pos = a.partition_point(|&x| x >= v);
            a.insert(pos, v);
        }
        a.truncate(3);
        a
    }
    fn finalize(&self, k: u32, state: Vec<i64>, _s: &mut (), out: &mut dyn Emit<u32, i64>) {
        for v in state {
            out.emit(k, v);
        }
    }
}

/// Pure count-sum (WordCount's shape on u32 keys): the class whose
/// snapshot estimates are provably monotone in records absorbed.
struct CountSum;

impl Application for CountSum {
    type InKey = u64;
    type InValue = (u32, u64);
    type MapKey = u32;
    type MapValue = u64;
    type OutKey = u32;
    type OutValue = u64;
    type State = u64;
    type Shared = ();

    fn map(&self, _k: &u64, v: &(u32, u64), out: &mut dyn Emit<u32, u64>) {
        out.emit(v.0, v.1);
    }
    fn new_shared(&self) {}
    fn reduce_grouped(&self, k: &u32, vs: Vec<u64>, _s: &mut (), out: &mut dyn Emit<u32, u64>) {
        out.emit(*k, vs.into_iter().sum());
    }
    fn init(&self, _k: &u32) -> u64 {
        0
    }
    fn absorb(&self, _k: &u32, state: &mut u64, v: u64, _s: &mut (), _o: &mut dyn Emit<u32, u64>) {
        *state += v;
    }
    fn merge(&self, _k: &u32, a: u64, b: u64) -> u64 {
        a + b
    }
    fn finalize(&self, k: u32, state: u64, _s: &mut (), out: &mut dyn Emit<u32, u64>) {
        out.emit(k, state);
    }
}

const INDEXES: [StoreIndex; 2] = [StoreIndex::Ordered, StoreIndex::Hashed];

fn run_policy_indexed(
    records: &[(u32, i64)],
    policy: MemoryPolicy,
    index: StoreIndex,
) -> Vec<(u32, i64)> {
    let cfg = JobConfig::new(1)
        .engine(Engine::BarrierLess { memory: policy })
        .store_index(index)
        .scratch_dir(scratch());
    let (out, _) =
        reduce_partition_barrierless(&MaxTracker, &cfg, 0, records.to_vec(), &mut Counters::new())
            .expect("run");
    out
}

fn run_policy(records: &[(u32, i64)], policy: MemoryPolicy) -> Vec<(u32, i64)> {
    run_policy_indexed(records, policy, StoreIndex::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any threshold (including absurdly small, forcing a spill per
    /// handful of records) must leave the output unchanged, under both
    /// store indexes.
    #[test]
    fn spill_threshold_is_invisible(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..250),
        threshold in 64u64..4096,
    ) {
        let reference = run_policy(&records, MemoryPolicy::InMemory);
        for index in INDEXES {
            let spilled = run_policy_indexed(
                &records,
                MemoryPolicy::SpillMerge { threshold_bytes: threshold },
                index,
            );
            prop_assert_eq!(&reference, &spilled, "index {:?}", index);
        }
    }

    /// Any KV cache size — from nearly nothing (every absorb hits disk)
    /// to ample — must leave the output unchanged.
    #[test]
    fn kv_cache_size_is_invisible(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..250),
        cache in 128usize..8192,
    ) {
        let reference = run_policy(&records, MemoryPolicy::InMemory);
        let kv = run_policy(&records, MemoryPolicy::KvStore { cache_bytes: cache });
        prop_assert_eq!(reference, kv);
    }

    /// The tentpole invariant at the store level: for every memory
    /// policy, flipping the index between the ordered map and the hashed
    /// map (amortized sort-at-drain) is byte-invisible.
    #[test]
    fn store_index_is_invisible_under_every_policy(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..250),
        threshold in 64u64..4096,
        cache in 128usize..8192,
    ) {
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge { threshold_bytes: threshold },
            MemoryPolicy::KvStore { cache_bytes: cache },
        ] {
            let ordered = run_policy_indexed(&records, policy.clone(), StoreIndex::Ordered);
            let hashed = run_policy_indexed(&records, policy.clone(), StoreIndex::Hashed);
            prop_assert_eq!(&ordered, &hashed, "policy {:?}", policy);
        }
    }

    /// Snapshots are invisible: for every memory policy × store index,
    /// any snapshot interval — down to the pathological every-1-record
    /// policy — leaves the final output byte-identical to the
    /// snapshot-free run, and every snapshot is key-sorted and
    /// duplicate-free (the spill store's snapshots must merge run files
    /// with the live map, or a key split across runs would appear twice).
    #[test]
    fn snapshot_policy_is_invisible_under_every_store(
        records in prop::collection::vec((0u32..30, -1000i64..1000), 1..200),
        threshold in 64u64..2048,
        cache in 128usize..4096,
        interval in 1u64..40,
    ) {
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge { threshold_bytes: threshold },
            MemoryPolicy::KvStore { cache_bytes: cache },
        ] {
            for index in INDEXES {
                let reference = run_policy_indexed(&records, policy.clone(), index);
                let cfg = JobConfig::new(1)
                    .engine(Engine::BarrierLess { memory: policy.clone() })
                    .store_index(index)
                    .snapshots(SnapshotPolicy::EveryRecords { records: interval })
                    .scratch_dir(scratch());
                let (out, _, snaps) = reduce_partition_barrierless_traced(
                    &MaxTracker,
                    &cfg,
                    0,
                    records.to_vec(),
                    &mut Counters::new(),
                )
                .expect("snapshotted run");
                prop_assert_eq!(
                    &reference, &out,
                    "snapshots every {} changed output under {:?}/{:?}", interval, policy, index
                );
                // One snapshot per full interval plus the end-of-input
                // one (when the stream length is a multiple of the
                // interval the last interval snapshot and the final
                // snapshot both fire — two identical estimates, two
                // distinct seqs).
                let expected = records.len() as u64 / interval + 1;
                prop_assert_eq!(snaps.len() as u64, expected);
                for snap in &snaps {
                    for pair in snap.estimate.windows(2) {
                        prop_assert!(
                            pair[0].0 <= pair[1].0,
                            "snapshot keys unsorted under {:?}/{:?}", policy, index
                        );
                    }
                    // MaxTracker emits at most 3 records per key: a key
                    // fragmented across spill runs that was not merged
                    // would show up as >3 entries for one key.
                    let mut per_key = std::collections::BTreeMap::new();
                    for (k, _) in &snap.estimate {
                        *per_key.entry(*k).or_insert(0usize) += 1;
                    }
                    prop_assert!(
                        per_key.values().all(|&n| n <= 3),
                        "unmerged key fragments in snapshot under {:?}/{:?}", policy, index
                    );
                }
                // The last snapshot equals the final output exactly.
                prop_assert_eq!(&snaps.last().expect("final").estimate, &out);
            }
        }
    }

    /// Monotone convergence for the pure count-sum class: successive
    /// snapshot estimates only grow — per key and in total — with
    /// records absorbed, and the last snapshot equals finalize output
    /// exactly. (This is what makes barrier-less early answers *usable*:
    /// an observer knows every count is a lower bound.)
    #[test]
    fn count_sum_snapshots_are_monotone_and_end_exact(
        records in prop::collection::vec((0u32..20, 1u64..50), 1..150),
        interval in 1u64..30,
    ) {
        let cfg = JobConfig::new(1)
            .engine(Engine::BarrierLess { memory: MemoryPolicy::InMemory })
            .snapshots(SnapshotPolicy::EveryRecords { records: interval })
            .scratch_dir(scratch());
        let input: Vec<(u32, u64)> = records.clone();
        let (out, _, snaps) = reduce_partition_barrierless_traced(
            &CountSum,
            &cfg,
            0,
            input,
            &mut Counters::new(),
        )
        .expect("run");
        prop_assert!(!snaps.is_empty());
        let mut prev: BTreeMap<u32, u64> = BTreeMap::new();
        let mut prev_total = 0u64;
        let mut prev_records = 0u64;
        for snap in &snaps {
            prop_assert!(snap.records_absorbed >= prev_records);
            prev_records = snap.records_absorbed;
            let now: BTreeMap<u32, u64> = snap.estimate.iter().cloned().collect();
            let total: u64 = now.values().sum();
            prop_assert!(
                total >= prev_total,
                "total estimate shrank: {} -> {}", prev_total, total
            );
            for (k, v) in &prev {
                prop_assert!(
                    now.get(k).is_some_and(|n| n >= v),
                    "key {} regressed from {}", k, v
                );
            }
            prev = now;
            prev_total = total;
        }
        // Last snapshot is byte-exact the finalize output.
        prop_assert_eq!(&snaps.last().expect("final").estimate, &out);
        // And it accounts every absorbed record.
        prop_assert_eq!(prev_records, records.len() as u64);
    }

    /// The incremental form agrees with the grouped form: top-3 per key.
    #[test]
    fn incremental_matches_grouped_semantics(
        records in prop::collection::vec((0u32..20, -1000i64..1000), 1..200),
    ) {
        let got = run_policy(&records, MemoryPolicy::InMemory);
        let mut expect: BTreeMap<u32, Vec<i64>> = BTreeMap::new();
        for &(k, v) in &records {
            expect.entry(k).or_default().push(v);
        }
        let expect: Vec<(u32, i64)> = expect
            .into_iter()
            .flat_map(|(k, mut vs)| {
                vs.sort_by(|a, b| b.cmp(a));
                vs.truncate(3);
                vs.into_iter().map(move |v| (k, v))
            })
            .collect();
        prop_assert_eq!(got, expect);
    }
}
