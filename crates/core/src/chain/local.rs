//! The chain driver for [`LocalRunner`]: runs a [`ChainSpec`] for real
//! on the shared worker pool.
//!
//! Under [`HandoffMode::Barrier`] each stage runs to completion and its
//! materialized output is adapted into the next stage's input splits —
//! the run-jobs-sequentially Hadoop baseline, byte-for-byte.
//!
//! Under [`HandoffMode::Streaming`] every record an upstream reduce task
//! emits is adapted and pushed into a bounded batched channel (one per
//! upstream partition — the same transport shape the shuffle uses), and
//! a downstream *map intake* task per channel runs the next stage's map
//! function on records as they arrive. All stages' task state machines
//! are spawned onto **one** `Pool` and driven by a fixed number of OS
//! threads (the max of the stages' `pool_workers` knobs), so a K-stage
//! chain no longer costs K stages' worth of threads. Back-pressure is
//! preserved end to end without holding a thread anywhere: a slow
//! downstream reducer stalls its intake, which fills the handoff
//! channel, which *parks* the upstream reduce task until the channel
//! drains.
//!
//! # Determinism
//!
//! The chained output is byte-identical to the sequential baseline for
//! any final stage whose reduce output is a pure function of its input
//! *multiset* — every keyed-state application (aggregation, selection,
//! sorting) qualifies, because the partial store drains in key order at
//! finalize regardless of arrival order. Applications that emit during
//! `absorb` in arrival order (Identity, cross-key windows) keep exactly
//! the determinism they had under the single-job barrier-less engine:
//! the multiset of output records is identical, their order within a
//! partition follows the stream interleaving.

use crate::chain::{ChainOutput, ChainableApplication, StageStats};
use crate::config::{ChainSpec, HandoffMode};
use crate::counters::{names, Counters};
use crate::error::{MrError, MrResult};
use crate::local::cache::SharedCache;
use crate::local::pool::{Ctx, Pool, PoolSender, TrySend};
use crate::local::{
    build_stage, collect_stage, LocalRunner, ReduceSink, SinkedRun, StageInput, StageState,
    BATCH_CHANNEL_DEPTH,
};
use crate::output::JobOutput;
use crate::partition::Partitioner;
use crate::size::SizeEstimate;
use crate::traits::{Application, Emit};
use mr_cache::StableHash;
use mr_trace::{Scope, TraceEvent, TraceInstant, TraceLog};
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// A handed-off record batch: already adapted to the downstream input
/// types.
type Handoff<B> = Vec<(<B as Application>::InKey, <B as Application>::InValue)>;

/// A materialized output partition of stage `X`.
type StageOut<X> = Vec<(<X as Application>::OutKey, <X as Application>::OutValue)>;

/// The sink a middle stage of a homogeneous chain reduces into: a
/// handoff to another stage of the same application type.
type MidSink<'a, A> = HandoffSink<'a, A, <A as Application>::OutKey, <A as Application>::OutValue>;

/// Per-boundary handoff bookkeeping, merged from every upstream sink.
#[derive(Debug, Default)]
struct HandoffStats {
    records: u64,
    batches: u64,
    bytes: u64,
    first_secs: Option<f64>,
}

impl HandoffStats {
    fn charge(&self, counters: &mut Counters) {
        counters.add(names::CHAIN_HANDOFF_RECORDS, self.records);
        counters.add(names::CHAIN_HANDOFF_BATCHES, self.batches);
        counters.add(names::CHAIN_HANDOFF_BYTES, self.bytes);
    }
}

/// The streaming reduce-output sink: adapts each upstream output record
/// to the downstream input type and ships byte-budgeted batches into the
/// downstream map intake channel. One sink per upstream reduce task.
///
/// Sends never block the worker thread: a full channel moves the staged
/// batch to a local pending queue that the owning reduce task drains via
/// [`pump`](ReduceSink::pump), parking until the intake makes room.
/// Batch accounting happens at staging time — a pure function of the
/// emission stream — so handoff counters are schedule-independent.
/// Dropping the sender on [`close`](ReduceSink::close) is the
/// per-partition EOF.
struct HandoffSink<'a, B, UK, UV>
where
    B: ChainableApplication<UK, UV>,
{
    downstream: &'a B,
    tx: Option<PoolSender<Handoff<B>>>,
    pending: VecDeque<Handoff<B>>,
    buf: Handoff<B>,
    buf_bytes: usize,
    batch_bytes: usize,
    emitted: u64,
    batches: u64,
    bytes: u64,
    started: Instant,
    first_secs: Option<f64>,
    stats: &'a Mutex<HandoffStats>,
    _upstream: std::marker::PhantomData<fn(UK, UV)>,
}

impl<'a, B, UK, UV> HandoffSink<'a, B, UK, UV>
where
    B: ChainableApplication<UK, UV>,
{
    fn new(
        downstream: &'a B,
        tx: PoolSender<Handoff<B>>,
        batch_bytes: usize,
        stats: &'a Mutex<HandoffStats>,
        started: Instant,
    ) -> Self {
        HandoffSink {
            downstream,
            tx: Some(tx),
            pending: VecDeque::new(),
            buf: Vec::new(),
            buf_bytes: 0,
            batch_bytes,
            emitted: 0,
            batches: 0,
            bytes: 0,
            started,
            first_secs: None,
            stats,
            _upstream: std::marker::PhantomData,
        }
    }

    /// Cuts the current buffer into a staged batch and tries an
    /// opportunistic non-blocking send; a full channel queues the batch
    /// for [`pump_pending`]. A disconnected channel means the downstream
    /// stage died (the job is failing): stop shipping.
    fn stage(&mut self) {
        self.buf_bytes = 0;
        if self.buf.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.buf);
        self.batches += 1;
        if !self.pending.is_empty() {
            self.pending.push_back(batch);
            return;
        }
        if let Some(tx) = &self.tx {
            match tx.try_send_now(batch) {
                Ok(()) => {}
                Err(TrySend::Full(batch)) => self.pending.push_back(batch),
                Err(TrySend::Disconnected(_)) => {
                    self.tx = None;
                    self.pending.clear();
                }
            }
        }
    }

    /// Drains queued batches toward the intake; `false` means the
    /// channel is full and the owning task should park.
    fn pump_pending(&mut self, cx: &Ctx) -> bool {
        let Some(tx) = &self.tx else {
            self.pending.clear();
            return true;
        };
        while let Some(batch) = self.pending.pop_front() {
            match tx.try_send(cx, batch) {
                Ok(()) => {}
                Err(TrySend::Full(batch)) => {
                    self.pending.push_front(batch);
                    return false;
                }
                Err(TrySend::Disconnected(_)) => {
                    self.tx = None;
                    self.pending.clear();
                    return true;
                }
            }
        }
        true
    }
}

impl<B, UK, UV> Emit<UK, UV> for HandoffSink<'_, B, UK, UV>
where
    B: ChainableApplication<UK, UV>,
{
    fn emit(&mut self, key: UK, value: UV) {
        if self.first_secs.is_none() {
            self.first_secs = Some(self.started.elapsed().as_secs_f64());
        }
        self.emitted += 1;
        let rec_bytes = self.downstream.handoff_bytes(&key, &value);
        self.buf_bytes += rec_bytes;
        self.bytes += rec_bytes as u64;
        self.buf.push(self.downstream.adapt_input(key, value));
        if self.buf_bytes >= self.batch_bytes {
            self.stage();
        }
    }
}

impl<A, B, UK, UV> ReduceSink<A> for HandoffSink<'_, B, UK, UV>
where
    A: Application<OutKey = UK, OutValue = UV>,
    B: ChainableApplication<UK, UV>,
    UK: Send,
    UV: Send,
{
    fn emitted(&self) -> u64 {
        self.emitted
    }

    fn pump(&mut self, cx: &Ctx) -> bool {
        self.pump_pending(cx)
    }

    fn seal(&mut self) {
        self.stage();
    }

    fn close(&mut self) {
        self.tx = None; // EOF for this upstream partition
        let mut stats = self.stats.lock().unwrap();
        stats.records += self.emitted;
        stats.batches += self.batches;
        stats.bytes += self.bytes;
        stats.first_secs = match (stats.first_secs, self.first_secs) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    fn into_partition(self) -> Vec<(A::OutKey, A::OutValue)> {
        Vec::new() // the records are downstream already
    }
}

/// Builds one stage's [`StageStats`] from its finished run's parts —
/// the legacy direct path, used when tracing is off.
fn stage_stats(
    mut counters: Counters,
    reports: Vec<crate::engine::DriverReport>,
    handoff: Option<&HandoffStats>,
    finished_secs: f64,
) -> StageStats {
    if let Some(stats) = handoff {
        stats.charge(&mut counters);
    }
    StageStats {
        counters,
        reports,
        handoff_records: handoff.map_or(0, |s| s.records),
        handoff_batches: handoff.map_or(0, |s| s.batches),
        handoff_bytes: handoff.map_or(0, |s| s.bytes),
        first_handoff_secs: handoff.and_then(|s| s.first_secs),
        finished_secs,
    }
}

/// Everything one finished stage contributes to the chain result.
struct StageParts {
    counters: Counters,
    reports: Vec<crate::engine::DriverReport>,
    /// The boundary this stage fed (`None` exactly where the legacy path
    /// passed no handoff — derived and direct stats must match).
    handoff: Option<HandoffStats>,
    finished_secs: f64,
    /// The stage run's own log, still scoped to job 0.
    trace: TraceLog,
}

/// Tears a handoff-sinked run into the parts a [`StageParts`] needs,
/// dropping the sinks (and with them their borrows of the shared stats).
fn into_stage_parts<X: Application, S>(
    run: SinkedRun<X, S>,
) -> (Counters, Vec<crate::engine::DriverReport>, TraceLog, f64) {
    (run.counters, run.reports, run.trace, run.finished_secs)
}

/// Appends stage `job`'s chain-boundary events to the chain log: the
/// charged `chain.handoff.*` counter totals (zeros included, mirroring
/// the legacy charge), a handoff mark at the boundary's first-record
/// instant, and the stage-done mark.
fn push_stage_marks(log: &mut TraceLog, job: u32, handoff: Option<&HandoffStats>, finished: f64) {
    let scope = Scope::job(job);
    if let Some(h) = handoff {
        let mut charged = Counters::new();
        h.charge(&mut charged);
        for (name, value) in charged.iter() {
            log.push(
                scope,
                TraceEvent::Counter {
                    label: name.to_string().into(),
                    delta: value,
                },
            );
        }
        if let Some(at) = h.first_secs {
            log.push(
                scope,
                TraceEvent::HandoffMark {
                    at: TraceInstant::Wall { secs: at },
                    downstream_map: 0,
                    records: h.records,
                    bytes: h.bytes,
                },
            );
        }
    }
    log.push(
        scope,
        TraceEvent::StageDone {
            at: TraceInstant::Wall { secs: finished },
        },
    );
}

/// Whether the whole chain records traces: every stage must opt in — the
/// chain log merges the stage logs, so one disabled stage would leave a
/// hole the derived [`StageStats`] views can't paper over.
fn chain_tracing(spec: &ChainSpec) -> bool {
    spec.stages.iter().all(|c| c.trace.is_enabled())
}

/// Assembles the chain result from the finished stages. With tracing on,
/// the per-stage logs are merged into one chain log (stage `j`'s events
/// re-scoped to job `j`, boundary marks appended) and every
/// [`StageStats`] is *derived back out of that log*; with tracing off,
/// the legacy direct path builds the same values from the parts.
fn assemble_chain<B: Application>(
    trace_on: bool,
    parts: Vec<StageParts>,
    mut output: JobOutput<B>,
) -> ChainOutput<B> {
    let mut trace = TraceLog::new();
    let mut stages = Vec::with_capacity(parts.len());
    if trace_on {
        let mut reports_per_stage = Vec::with_capacity(parts.len());
        for (j, p) in parts.into_iter().enumerate() {
            let job = j as u32;
            for mut e in p.trace.entries {
                e.scope.job = job;
                trace.push(e.scope, e.event);
            }
            push_stage_marks(&mut trace, job, p.handoff.as_ref(), p.finished_secs);
            reports_per_stage.push(p.reports);
        }
        for (j, reports) in reports_per_stage.into_iter().enumerate() {
            stages.push(StageStats::from_log(&trace, j as u32, reports));
        }
    } else {
        for p in parts {
            stages.push(stage_stats(
                p.counters,
                p.reports,
                p.handoff.as_ref(),
                p.finished_secs,
            ));
        }
    }
    // The final stage's log now lives (re-scoped) in the chain log.
    output.trace = TraceLog::new();
    ChainOutput {
        output,
        stages,
        trace,
    }
}

/// The barrier-handoff boundary shared by every chain driver: adapts
/// materialized upstream partitions into downstream input splits (split
/// `i` extends with partition `i`, created on demand), charging the
/// handoff stats as it goes.
fn adapt_partitions<B, UK, UV>(
    second: &B,
    partitions: Vec<Vec<(UK, UV)>>,
    into: &mut Vec<Vec<(B::InKey, B::InValue)>>,
    stats: &mut HandoffStats,
) where
    B: ChainableApplication<UK, UV>,
{
    if into.len() < partitions.len() {
        into.resize_with(partitions.len(), Vec::new);
    }
    for (i, partition) in partitions.into_iter().enumerate() {
        if !partition.is_empty() {
            stats.batches += 1;
        }
        for (k, v) in partition {
            stats.records += 1;
            stats.bytes += second.handoff_bytes(&k, &v) as u64;
            into[i].push(second.adapt_input(k, v));
        }
    }
}

impl LocalRunner {
    /// Runs a two-job chain: `first`'s reduce output, adapted through
    /// [`ChainableApplication::adapt_input`], becomes `second`'s map
    /// input. `spec` must hold exactly two stage configs.
    ///
    /// Under the barrier handoff this is literally the sequential
    /// baseline (run job 1, materialize, run job 2); under the streaming
    /// handoff both stages' task graphs share one worker pool and job
    /// 2's map intake overlaps job 1's reduce stage.
    pub fn run_chain2<A, B, PA, PB>(
        &self,
        first: &A,
        second: &B,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        spec: &ChainSpec,
        pa: &PA,
        pb: &PB,
    ) -> MrResult<ChainOutput<B>>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        PA: Partitioner<A::MapKey> + Sync,
        PB: Partitioner<B::MapKey> + Sync,
    {
        spec.validate()?;
        if spec.len() != 2 {
            return Err(MrError::InvalidConfig(format!(
                "run_chain2 needs exactly 2 stages, spec has {}",
                spec.len()
            )));
        }
        match spec.chain.handoff {
            HandoffMode::Barrier => self.chain2_barrier(first, second, splits, spec, pa, pb),
            HandoffMode::Streaming => self.chain2_streaming(first, second, splits, spec, pa, pb),
        }
    }

    /// Runs a two-job chain through the shared result cache: each stage
    /// whose `JobConfig::cache` is enabled consults `cache` exactly like
    /// [`LocalRunner::run_cached`] does, so a re-run of the chain over
    /// unchanged input hits stage 1's sealed job artifact, feeds the
    /// cached partitions across the handoff, and then hits stage 2's —
    /// and a *partially* changed input still reuses every unchanged
    /// split's map artifact within each stage.
    ///
    /// Only the [`HandoffMode::Barrier`] handoff consults the cache:
    /// streamed intakes have no stable per-split identity to key on (the
    /// batch boundaries depend on runtime interleaving), so a
    /// [`HandoffMode::Streaming`] spec runs exactly as
    /// [`LocalRunner::run_chain2`] would, uncached.
    #[allow(clippy::too_many_arguments)]
    pub fn run_chain2_cached<A, B, PA, PB>(
        &self,
        first: &A,
        second: &B,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        spec: &ChainSpec,
        pa: &PA,
        pb: &PB,
        cache: &SharedCache,
    ) -> MrResult<ChainOutput<B>>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        PA: Partitioner<A::MapKey> + Sync,
        PB: Partitioner<B::MapKey> + Sync,
        A::InKey: StableHash,
        A::InValue: StableHash,
        A::MapKey: Sync,
        A::MapValue: Sync,
        A::OutKey: Sync + SizeEstimate,
        A::OutValue: Sync + SizeEstimate,
        B::InKey: StableHash,
        B::InValue: StableHash,
        B::MapKey: Sync,
        B::MapValue: Sync,
        B::OutKey: Sync + SizeEstimate,
        B::OutValue: Sync + SizeEstimate,
    {
        spec.validate()?;
        if spec.len() != 2 {
            return Err(MrError::InvalidConfig(format!(
                "run_chain2_cached needs exactly 2 stages, spec has {}",
                spec.len()
            )));
        }
        if spec.chain.handoff == HandoffMode::Streaming {
            return self.chain2_streaming(first, second, splits, spec, pa, pb);
        }
        let started = Instant::now();
        let out1 = self.run_cached(first, splits, &spec.stages[0], pa, cache)?;
        let stage1_secs = started.elapsed().as_secs_f64();
        let mut stats = HandoffStats::default();
        let mut splits2: Vec<Vec<(B::InKey, B::InValue)>> = Vec::new();
        adapt_partitions(second, out1.partitions, &mut splits2, &mut stats);
        let part1 = StageParts {
            counters: out1.counters,
            reports: out1.reports,
            handoff: Some(stats),
            finished_secs: stage1_secs,
            trace: out1.trace,
        };
        let mut out2 = self.run_cached(second, splits2, &spec.stages[1], pb, cache)?;
        let part2 = StageParts {
            counters: out2.counters.clone(),
            reports: out2.reports.clone(),
            handoff: None,
            finished_secs: started.elapsed().as_secs_f64(),
            trace: std::mem::take(&mut out2.trace),
        };
        Ok(assemble_chain(
            chain_tracing(spec),
            vec![part1, part2],
            out2,
        ))
    }

    fn chain2_barrier<A, B, PA, PB>(
        &self,
        first: &A,
        second: &B,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        spec: &ChainSpec,
        pa: &PA,
        pb: &PB,
    ) -> MrResult<ChainOutput<B>>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        PA: Partitioner<A::MapKey> + Sync,
        PB: Partitioner<B::MapKey> + Sync,
    {
        let started = Instant::now();
        let out1 = self.run_with_partitioner(first, splits, &spec.stages[0], pa)?;
        let stage1_secs = started.elapsed().as_secs_f64();
        let mut stats = HandoffStats::default();
        let mut splits2: Vec<Vec<(B::InKey, B::InValue)>> = Vec::new();
        adapt_partitions(second, out1.partitions, &mut splits2, &mut stats);
        let part1 = StageParts {
            counters: out1.counters,
            reports: out1.reports,
            handoff: Some(stats),
            finished_secs: stage1_secs,
            trace: out1.trace,
        };
        let mut out2 = self.run_with_partitioner(second, splits2, &spec.stages[1], pb)?;
        let part2 = StageParts {
            counters: out2.counters.clone(),
            reports: out2.reports.clone(),
            handoff: None,
            finished_secs: started.elapsed().as_secs_f64(),
            trace: std::mem::take(&mut out2.trace),
        };
        Ok(assemble_chain(
            chain_tracing(spec),
            vec![part1, part2],
            out2,
        ))
    }

    fn chain2_streaming<A, B, PA, PB>(
        &self,
        first: &A,
        second: &B,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        spec: &ChainSpec,
        pa: &PA,
        pb: &PB,
    ) -> MrResult<ChainOutput<B>>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        PA: Partitioner<A::MapKey> + Sync,
        PB: Partitioner<B::MapKey> + Sync,
    {
        let started = Instant::now();
        let cfg1 = &spec.stages[0];
        let cfg2 = &spec.stages[1];
        let batch_bytes = spec.chain.handoff_batch_bytes;
        // Declared before the stage states: stage 1's sinks borrow it.
        let stats = Mutex::new(HandoffStats::default());
        let state1: StageState<A, HandoffSink<'_, B, A::OutKey, A::OutValue>> =
            StageState::new(cfg1, splits.len());
        let state2: StageState<B, StageOut<B>> = StageState::new(cfg2, cfg1.reducers);
        let mut pool = Pool::new();
        let mut txs: Vec<PoolSender<Handoff<B>>> = Vec::with_capacity(cfg1.reducers);
        let mut rxs = Vec::with_capacity(cfg1.reducers);
        for _ in 0..cfg1.reducers {
            let (tx, rx) = pool.channel::<Handoff<B>>(BATCH_CHANNEL_DEPTH);
            txs.push(tx);
            rxs.push(rx);
        }
        build_stage(
            &mut pool,
            &state2,
            second,
            cfg2,
            pb,
            StageInput::Intakes(rxs),
            self.map_threads,
            None,
            |_| Vec::new(),
        )?;
        {
            let txs = &txs;
            let stats = &stats;
            let make_sink = move |r: usize| {
                HandoffSink::new(second, txs[r].clone(), batch_bytes, stats, started)
            };
            build_stage(
                &mut pool,
                &state1,
                first,
                cfg1,
                pa,
                StageInput::Splits(&splits),
                self.map_threads,
                None,
                make_sink,
            )?;
        }
        drop(txs); // sinks hold the only senders: EOF when they close
        pool.run(cfg1.pool_workers.max(cfg2.pool_workers))?;

        let (counters1, reports1, trace1, secs1) = into_stage_parts(collect_stage(state1)?);
        let mut run2 = collect_stage(state2)?;
        let part1 = StageParts {
            counters: counters1,
            reports: reports1,
            handoff: Some(stats.into_inner().unwrap()),
            finished_secs: secs1,
            trace: trace1,
        };
        let part2 = StageParts {
            counters: run2.counters.clone(),
            reports: run2.reports.clone(),
            handoff: None,
            finished_secs: run2.finished_secs,
            trace: std::mem::take(&mut run2.trace),
        };
        Ok(assemble_chain(
            chain_tracing(spec),
            vec![part1, part2],
            run2.into_job_output(),
        ))
    }

    /// Runs a simple fan-in chain: several upstream jobs of the same
    /// application type feed one downstream job. `spec` holds one stage
    /// config per branch followed by the downstream stage config; every
    /// branch must use the same partition count (upstream partition `i`
    /// of every branch feeds downstream map intake `i`).
    ///
    /// Under the streaming handoff every branch's task graph and the
    /// downstream stage share one worker pool, and branch emissions
    /// interleave into the shared intake channels; under the barrier
    /// handoff the branches run sequentially and intake `i` is the
    /// branch-ordered concatenation of every branch's partition `i`
    /// output.
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    pub fn run_chain_fanin2<A, B, PA, PB>(
        &self,
        firsts: &[&A],
        second: &B,
        branch_splits: Vec<Vec<Vec<(A::InKey, A::InValue)>>>,
        spec: &ChainSpec,
        pa: &PA,
        pb: &PB,
    ) -> MrResult<ChainOutput<B>>
    where
        A: Application,
        B: ChainableApplication<A::OutKey, A::OutValue>,
        PA: Partitioner<A::MapKey> + Sync,
        PB: Partitioner<B::MapKey> + Sync,
    {
        spec.validate_fan_in(firsts.len())?;
        if branch_splits.len() != firsts.len() {
            return Err(MrError::InvalidConfig(format!(
                "fan-in: {} apps but {} split sets",
                firsts.len(),
                branch_splits.len()
            )));
        }
        let branches = firsts.len();
        let r1 = spec.stages[0].reducers;
        let cfg2 = &spec.stages[branches];
        let started = Instant::now();

        if spec.chain.handoff == HandoffMode::Barrier {
            // Sequential baseline: run every branch, then concatenate
            // adapted partition i across branches into intake split i.
            let mut parts = Vec::with_capacity(branches + 1);
            let mut splits2: Vec<Vec<(B::InKey, B::InValue)>> =
                (0..r1).map(|_| Vec::new()).collect();
            for (b, (app, splits)) in firsts.iter().zip(branch_splits).enumerate() {
                let out = self.run_with_partitioner(*app, splits, &spec.stages[b], pa)?;
                let mut stats = HandoffStats::default();
                adapt_partitions(second, out.partitions, &mut splits2, &mut stats);
                parts.push(StageParts {
                    counters: out.counters,
                    reports: out.reports,
                    handoff: Some(stats),
                    finished_secs: started.elapsed().as_secs_f64(),
                    trace: out.trace,
                });
            }
            let mut out2 = self.run_with_partitioner(second, splits2, cfg2, pb)?;
            parts.push(StageParts {
                counters: out2.counters.clone(),
                reports: out2.reports.clone(),
                handoff: None,
                finished_secs: started.elapsed().as_secs_f64(),
                trace: std::mem::take(&mut out2.trace),
            });
            return Ok(assemble_chain(chain_tracing(spec), parts, out2));
        }

        // Streaming fan-in: every branch's reducer i ships into the
        // shared intake channel i; EOF when the last branch's sink (and
        // the originals held here) drop.
        let batch_bytes = spec.chain.handoff_batch_bytes;
        let branch_stats: Vec<Mutex<HandoffStats>> = (0..branches)
            .map(|_| Mutex::new(HandoffStats::default()))
            .collect();
        let branch_states: Vec<StageState<A, HandoffSink<'_, B, A::OutKey, A::OutValue>>> =
            branch_splits
                .iter()
                .enumerate()
                .map(|(b, splits)| StageState::new(&spec.stages[b], splits.len()))
                .collect();
        let state2: StageState<B, Vec<(B::OutKey, B::OutValue)>> = StageState::new(cfg2, r1);
        let mut pool = Pool::new();
        let mut txs: Vec<PoolSender<Handoff<B>>> = Vec::with_capacity(r1);
        let mut rxs = Vec::with_capacity(r1);
        for _ in 0..r1 {
            let (tx, rx) = pool.channel::<Handoff<B>>(BATCH_CHANNEL_DEPTH);
            txs.push(tx);
            rxs.push(rx);
        }
        build_stage(
            &mut pool,
            &state2,
            second,
            cfg2,
            pb,
            StageInput::Intakes(rxs),
            self.map_threads,
            None,
            |_| Vec::new(),
        )?;
        for (b, (app, splits)) in firsts.iter().zip(&branch_splits).enumerate() {
            let txs = &txs;
            let stats = &branch_stats[b];
            let make_sink = move |r: usize| {
                HandoffSink::new(second, txs[r].clone(), batch_bytes, stats, started)
            };
            build_stage(
                &mut pool,
                &branch_states[b],
                *app,
                &spec.stages[b],
                pa,
                StageInput::Splits(splits),
                self.map_threads,
                None,
                make_sink,
            )?;
        }
        drop(txs);
        let workers = spec
            .stages
            .iter()
            .map(|c| c.pool_workers)
            .max()
            .unwrap_or(1);
        pool.run(workers)?;

        let mut parts = Vec::with_capacity(branches + 1);
        for (state, stats) in branch_states.into_iter().zip(&branch_stats) {
            let (counters, reports, trace, finished_secs) = into_stage_parts(collect_stage(state)?);
            parts.push(StageParts {
                counters,
                reports,
                handoff: Some(std::mem::take(&mut *stats.lock().unwrap())),
                finished_secs,
                trace,
            });
        }
        let mut run2 = collect_stage(state2)?;
        parts.push(StageParts {
            counters: run2.counters.clone(),
            reports: run2.reports.clone(),
            handoff: None,
            finished_secs: run2.finished_secs,
            trace: std::mem::take(&mut run2.trace),
        });
        Ok(assemble_chain(
            chain_tracing(spec),
            parts,
            run2.into_job_output(),
        ))
    }

    /// Runs a homogeneous K-stage chain: the same application `app` runs
    /// `spec.len()` times, each stage consuming the previous stage's
    /// reduce output through its own
    /// [`adapt_input`](ChainableApplication::adapt_input) — the
    /// iterative-job driver (e.g. one genetic-algorithm generation per
    /// stage).
    ///
    /// Under the streaming handoff all K stages are live at once on one
    /// worker pool: stage `j + 1`'s map intake absorbs stage `j`'s
    /// reducer emissions as they happen, so an entire iterative pipeline
    /// runs with no inter-job barrier anywhere — and no per-stage thread
    /// tree either.
    pub fn run_chain_iter<A, P>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        spec: &ChainSpec,
        partitioner: &P,
    ) -> MrResult<ChainOutput<A>>
    where
        A: ChainableApplication<<A as Application>::OutKey, <A as Application>::OutValue>,
        P: Partitioner<A::MapKey> + Sync,
    {
        spec.validate()?;
        let k = spec.len();
        if k == 1 || spec.chain.handoff == HandoffMode::Barrier {
            // Sequential fold: run each stage, adapt, feed the next.
            let started = Instant::now();
            let mut parts = Vec::with_capacity(k);
            let mut current = splits;
            let mut out = None;
            for (j, cfg) in spec.stages.iter().enumerate() {
                let mut run = self.run_with_partitioner(app, current, cfg, partitioner)?;
                let last = j + 1 == k;
                let mut stats = HandoffStats::default();
                current = Vec::new();
                // Intermediate generations are consumed by the next
                // stage, not materialized: move them (and the stage's
                // counters/reports) instead of cloning; only the final
                // generation's run survives as the chain output.
                let (counters, reports) = if last {
                    (run.counters.clone(), run.reports.clone())
                } else {
                    adapt_partitions(
                        app,
                        std::mem::take(&mut run.partitions),
                        &mut current,
                        &mut stats,
                    );
                    (
                        std::mem::take(&mut run.counters),
                        std::mem::take(&mut run.reports),
                    )
                };
                parts.push(StageParts {
                    counters,
                    reports,
                    handoff: Some(stats),
                    finished_secs: started.elapsed().as_secs_f64(),
                    trace: std::mem::take(&mut run.trace),
                });
                out = Some(run);
            }
            return Ok(assemble_chain(
                chain_tracing(spec),
                parts,
                out.expect("k >= 1 stages ran"),
            ));
        }

        // Streaming: all K stages live on one pool, connected by K-1
        // channel boundaries (boundary j carries stage j's output into
        // stage j+1's intake; its channel count is stage j's reducer
        // count).
        let started = Instant::now();
        let batch_bytes = spec.chain.handoff_batch_bytes;
        // Declared before the states: the middle stages' sinks borrow it.
        let stats: Vec<Mutex<HandoffStats>> = (0..k - 1)
            .map(|_| Mutex::new(HandoffStats::default()))
            .collect();
        let mid_states: Vec<StageState<A, MidSink<'_, A>>> = (0..k - 1)
            .map(|j| {
                let n_map_slots = if j == 0 {
                    splits.len()
                } else {
                    spec.stages[j - 1].reducers
                };
                StageState::new(&spec.stages[j], n_map_slots)
            })
            .collect();
        let last_state: StageState<A, StageOut<A>> =
            StageState::new(&spec.stages[k - 1], spec.stages[k - 2].reducers);
        let mut pool = Pool::new();
        let mut boundary_txs: Vec<Vec<PoolSender<Handoff<A>>>> = Vec::with_capacity(k - 1);
        let mut boundary_rxs: Vec<Option<Vec<_>>> = Vec::with_capacity(k - 1);
        for j in 0..k - 1 {
            let n = spec.stages[j].reducers;
            let mut txs = Vec::with_capacity(n);
            let mut rxs = Vec::with_capacity(n);
            for _ in 0..n {
                let (tx, rx) = pool.channel::<Handoff<A>>(BATCH_CHANNEL_DEPTH);
                txs.push(tx);
                rxs.push(rx);
            }
            boundary_txs.push(txs);
            boundary_rxs.push(Some(rxs));
        }
        build_stage(
            &mut pool,
            &last_state,
            app,
            &spec.stages[k - 1],
            partitioner,
            StageInput::Intakes(boundary_rxs[k - 2].take().expect("one taker")),
            self.map_threads,
            None,
            |_| Vec::new(),
        )?;
        for j in 1..k - 1 {
            let txs_j = &boundary_txs[j];
            let stats_j = &stats[j];
            let make_sink = move |r: usize| {
                HandoffSink::new(app, txs_j[r].clone(), batch_bytes, stats_j, started)
            };
            build_stage(
                &mut pool,
                &mid_states[j],
                app,
                &spec.stages[j],
                partitioner,
                StageInput::Intakes(boundary_rxs[j - 1].take().expect("one taker")),
                self.map_threads,
                None,
                make_sink,
            )?;
        }
        {
            let txs_0 = &boundary_txs[0];
            let stats_0 = &stats[0];
            let make_sink = move |r: usize| {
                HandoffSink::new(app, txs_0[r].clone(), batch_bytes, stats_0, started)
            };
            build_stage(
                &mut pool,
                &mid_states[0],
                app,
                &spec.stages[0],
                partitioner,
                StageInput::Splits(&splits),
                self.map_threads,
                None,
                make_sink,
            )?;
        }
        drop(boundary_txs);
        let workers = spec
            .stages
            .iter()
            .map(|c| c.pool_workers)
            .max()
            .unwrap_or(1);
        pool.run(workers)?;

        let mut parts = Vec::with_capacity(k);
        let mut handoffs = stats
            .iter()
            .map(|m| std::mem::take(&mut *m.lock().unwrap()));
        for state in mid_states {
            let (counters, reports, trace, finished_secs) = into_stage_parts(collect_stage(state)?);
            parts.push(StageParts {
                counters,
                reports,
                handoff: handoffs.next(),
                finished_secs,
                trace,
            });
        }
        let mut run_last = collect_stage(last_state)?;
        parts.push(StageParts {
            counters: run_last.counters.clone(),
            reports: run_last.reports.clone(),
            handoff: None,
            finished_secs: run_last.finished_secs,
            trace: std::mem::take(&mut run_last.trace),
        });
        Ok(assemble_chain(
            chain_tracing(spec),
            parts,
            run_last.into_job_output(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::InputAdapter;
    use crate::config::{ChainConfig, Engine, JobConfig, MemoryPolicy, StoreIndex};
    use crate::partition::HashPartitioner;
    use crate::testutil::{scratch_dir, WordCountApp};

    /// WordCount chained into a count histogram: stage 2 counts how many
    /// distinct words occurred with each count value. Deterministic,
    /// order-free, and exercises a real type adaptation at the boundary.
    fn histogram() -> InputAdapter<WordCountApp, impl Fn(String, u64) -> (u64, String)> {
        InputAdapter::new(WordCountApp, |_word: String, count: u64| {
            (0u64, format!("c{count}"))
        })
    }

    fn text_splits(n_splits: usize, lines: usize) -> Vec<Vec<(u64, String)>> {
        let vocab = [
            "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
        ];
        let mut id = 0u64;
        (0..n_splits)
            .map(|s| {
                (0..lines)
                    .map(|l| {
                        let a = vocab[(s * 3 + l) % vocab.len()];
                        let b = vocab[(s + l * 5) % vocab.len()];
                        let c = vocab[(s * 7 + l * 2) % vocab.len()];
                        id += 1;
                        (id, format!("{a} {b} {c}"))
                    })
                    .collect()
            })
            .collect()
    }

    /// The ground truth: run the two jobs sequentially by hand.
    fn sequential_reference(
        splits: Vec<Vec<(u64, String)>>,
        cfg1: &JobConfig,
        cfg2: &JobConfig,
    ) -> Vec<Vec<(String, u64)>> {
        let runner = LocalRunner::new(4);
        let second = histogram();
        let out1 = runner.run(&WordCountApp, splits, cfg1).unwrap();
        let splits2: Vec<Vec<(u64, String)>> = out1
            .partitions
            .into_iter()
            .map(|p| {
                p.into_iter()
                    .map(|(k, v)| second.adapt_input(k, v))
                    .collect()
            })
            .collect();
        runner.run(&second, splits2, cfg2).unwrap().partitions
    }

    fn spec2(cfg1: JobConfig, cfg2: JobConfig, handoff: HandoffMode) -> ChainSpec {
        ChainSpec::new(vec![cfg1, cfg2]).handoff(handoff)
    }

    #[test]
    fn streaming_chain_matches_sequential_baseline_across_engines() {
        let splits = text_splits(6, 30);
        let engines = [
            Engine::Barrier,
            Engine::barrierless(),
            Engine::BarrierLess {
                memory: MemoryPolicy::SpillMerge {
                    threshold_bytes: 256,
                },
            },
        ];
        for e1 in &engines {
            for e2 in &engines {
                let cfg1 = JobConfig::new(3)
                    .engine(e1.clone())
                    .scratch_dir(scratch_dir("chain-eq1"));
                let cfg2 = JobConfig::new(2)
                    .engine(e2.clone())
                    .scratch_dir(scratch_dir("chain-eq2"));
                let expect = sequential_reference(splits.clone(), &cfg1, &cfg2);
                for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
                    let out = LocalRunner::new(4)
                        .run_chain2(
                            &WordCountApp,
                            &histogram(),
                            splits.clone(),
                            &spec2(cfg1.clone(), cfg2.clone(), handoff),
                            &HashPartitioner,
                            &HashPartitioner,
                        )
                        .unwrap();
                    assert_eq!(
                        out.output.partitions, expect,
                        "chain {handoff:?} diverged under {e1:?} -> {e2:?}"
                    );
                    assert_eq!(out.stages.len(), 2);
                    assert!(out.stages[0].handoff_records > 0);
                    assert_eq!(out.handoff_records(), out.stages[0].handoff_records);
                    assert_eq!(
                        out.stages[0].counters.get(names::CHAIN_HANDOFF_RECORDS),
                        out.stages[0].handoff_records
                    );
                    if handoff == HandoffMode::Streaming {
                        assert!(out.stages[0].first_handoff_secs.is_some());
                        assert!(out.stages[0].handoff_batches > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_chain_respects_index_and_combiner_knobs() {
        let splits = text_splits(5, 24);
        let cfg1 = JobConfig::new(2).engine(Engine::barrierless());
        let cfg2 = JobConfig::new(2).engine(Engine::barrierless());
        let expect = sequential_reference(splits.clone(), &cfg1, &cfg2);
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            for combine in [
                crate::config::CombinerPolicy::Disabled,
                crate::config::CombinerPolicy::enabled(),
            ] {
                let cfg1 = cfg1.clone().store_index(index).combiner(combine);
                let cfg2 = cfg2.clone().store_index(index).combiner(combine);
                let out = LocalRunner::new(4)
                    .run_chain2(
                        &WordCountApp,
                        &histogram(),
                        splits.clone(),
                        &spec2(cfg1, cfg2, HandoffMode::Streaming),
                        &HashPartitioner,
                        &HashPartitioner,
                    )
                    .unwrap();
                assert_eq!(
                    out.output.partitions, expect,
                    "index {index:?} combiner {combine:?} changed chained output"
                );
            }
        }
    }

    #[test]
    fn tiny_handoff_batches_still_deliver_everything() {
        let splits = text_splits(4, 20);
        let cfg1 = JobConfig::new(3).engine(Engine::barrierless());
        let cfg2 = JobConfig::new(2).engine(Engine::barrierless());
        let expect = sequential_reference(splits.clone(), &cfg1, &cfg2);
        let spec =
            ChainSpec::new(vec![cfg1, cfg2]).chain(ChainConfig::streaming().handoff_batch_bytes(1));
        let out = LocalRunner::new(2)
            .run_chain2(
                &WordCountApp,
                &histogram(),
                splits,
                &spec,
                &HashPartitioner,
                &HashPartitioner,
            )
            .unwrap();
        assert_eq!(out.output.partitions, expect);
        // One-byte batches: every handed-off record rode its own batch.
        assert_eq!(out.stages[0].handoff_batches, out.stages[0].handoff_records);
    }

    #[test]
    fn empty_input_chains_cleanly() {
        for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
            let spec = spec2(
                JobConfig::new(2).engine(Engine::barrierless()),
                JobConfig::new(2).engine(Engine::barrierless()),
                handoff,
            );
            let out = LocalRunner::new(2)
                .run_chain2(
                    &WordCountApp,
                    &histogram(),
                    Vec::new(),
                    &spec,
                    &HashPartitioner,
                    &HashPartitioner,
                )
                .unwrap();
            assert_eq!(out.output.record_count(), 0);
            assert_eq!(out.handoff_records(), 0);
        }
    }

    #[test]
    fn chain_spec_errors_are_reported_not_hung() {
        let splits = text_splits(2, 5);
        // Wrong stage count.
        let spec = ChainSpec::new(vec![JobConfig::new(1)]);
        assert!(matches!(
            LocalRunner::new(2).run_chain2(
                &WordCountApp,
                &histogram(),
                splits.clone(),
                &spec,
                &HashPartitioner,
                &HashPartitioner,
            ),
            Err(MrError::InvalidConfig(_))
        ));
        // A bad stage knob.
        let mut bad = JobConfig::new(2);
        bad.shuffle_batch_bytes = 0;
        let spec = spec2(JobConfig::new(2), bad, HandoffMode::Streaming);
        assert!(matches!(
            LocalRunner::new(2).run_chain2(
                &WordCountApp,
                &histogram(),
                splits,
                &spec,
                &HashPartitioner,
                &HashPartitioner,
            ),
            Err(MrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn downstream_oom_fails_the_chain_without_hanging() {
        // Swept across pool widths: a dead downstream intake must
        // unblock parked upstream senders whether they share one
        // worker thread or spread over several.
        for workers in [1usize, 2, 4] {
            let splits = text_splits(6, 40);
            let cfg1 = JobConfig::new(2)
                .engine(Engine::barrierless())
                .pool_workers(workers);
            let mut cfg2 = JobConfig::new(1)
                .engine(Engine::barrierless())
                .pool_workers(workers);
            cfg2.heap_cap_bytes = Some(16); // dies on the first few records
            let err = LocalRunner::new(4).run_chain2(
                &WordCountApp,
                &histogram(),
                splits,
                &spec2(cfg1, cfg2, HandoffMode::Streaming),
                &HashPartitioner,
                &HashPartitioner,
            );
            assert!(
                matches!(err, Err(MrError::OutOfMemory { .. })),
                "{workers}w: expected downstream OOM, got {:?}",
                err.err().map(|e| e.to_string())
            );
        }
    }

    #[test]
    fn upstream_oom_fails_the_chain_without_hanging() {
        for workers in [1usize, 2, 4] {
            let splits = text_splits(6, 40);
            let mut cfg1 = JobConfig::new(2)
                .engine(Engine::barrierless())
                .pool_workers(workers);
            cfg1.heap_cap_bytes = Some(16);
            let cfg2 = JobConfig::new(2)
                .engine(Engine::barrierless())
                .pool_workers(workers);
            let err = LocalRunner::new(4).run_chain2(
                &WordCountApp,
                &histogram(),
                splits,
                &spec2(cfg1, cfg2, HandoffMode::Streaming),
                &HashPartitioner,
                &HashPartitioner,
            );
            assert!(
                matches!(err, Err(MrError::OutOfMemory { .. })),
                "{workers}w: expected upstream OOM, got {:?}",
                err.err().map(|e| e.to_string())
            );
        }
    }

    #[test]
    fn fanin_streaming_matches_fanin_barrier() {
        let splits_a = text_splits(3, 20);
        let splits_b = text_splits(4, 15);
        let mk_spec = |handoff| {
            ChainSpec::new(vec![
                JobConfig::new(2).engine(Engine::barrierless()),
                JobConfig::new(2).engine(Engine::barrierless()),
                JobConfig::new(2).engine(Engine::barrierless()),
            ])
            .handoff(handoff)
        };
        let run = |handoff| {
            LocalRunner::new(4)
                .run_chain_fanin2(
                    &[&WordCountApp, &WordCountApp],
                    &histogram(),
                    vec![splits_a.clone(), splits_b.clone()],
                    &mk_spec(handoff),
                    &HashPartitioner,
                    &HashPartitioner,
                )
                .unwrap()
        };
        let barrier = run(HandoffMode::Barrier);
        let streaming = run(HandoffMode::Streaming);
        assert_eq!(barrier.output.partitions, streaming.output.partitions);
        assert_eq!(barrier.stages.len(), 3);
        assert_eq!(streaming.stages.len(), 3);
        assert!(streaming.stages[0].handoff_records > 0);
        assert!(streaming.stages[1].handoff_records > 0);
        assert_eq!(streaming.stages[2].handoff_records, 0);
        assert_eq!(
            barrier.handoff_records(),
            streaming.handoff_records(),
            "fan-in handoff volume must not depend on the mode"
        );
    }

    #[test]
    fn fanin_rejects_mismatched_branch_partitions() {
        let spec = ChainSpec::new(vec![
            JobConfig::new(2),
            JobConfig::new(3),
            JobConfig::new(2),
        ])
        .handoff(HandoffMode::Streaming);
        let err = LocalRunner::new(2).run_chain_fanin2(
            &[&WordCountApp, &WordCountApp],
            &histogram(),
            vec![text_splits(1, 4), text_splits(1, 4)],
            &spec,
            &HashPartitioner,
            &HashPartitioner,
        );
        assert!(matches!(err, Err(MrError::InvalidConfig(_))));
    }

    /// A homogeneous chainable app for the iterative driver: wordcount
    /// whose output words feed the next generation's text.
    fn iter_app() -> InputAdapter<WordCountApp, impl Fn(String, u64) -> (u64, String)> {
        InputAdapter::new(WordCountApp, |word: String, count: u64| {
            (count, format!("{word} x{count}"))
        })
    }

    #[test]
    fn iterative_streaming_chain_matches_sequential_fold() {
        let splits = text_splits(4, 25);
        let app = iter_app();
        let k = 4;
        let mk_spec = |handoff| {
            ChainSpec::new(
                (0..k)
                    .map(|_| JobConfig::new(3).engine(Engine::barrierless()))
                    .collect(),
            )
            .handoff(handoff)
        };
        // Ground truth: fold by hand through K generations.
        let mut current = splits.clone();
        let mut expect = Vec::new();
        for _ in 0..k {
            let run = LocalRunner::new(4)
                .run(
                    &app,
                    current,
                    &JobConfig::new(3).engine(Engine::barrierless()),
                )
                .unwrap();
            expect = run.partitions.clone();
            current = run
                .partitions
                .into_iter()
                .map(|p| p.into_iter().map(|(w, c)| app.adapt_input(w, c)).collect())
                .collect();
        }
        for handoff in [HandoffMode::Barrier, HandoffMode::Streaming] {
            let out = LocalRunner::new(4)
                .run_chain_iter(&app, splits.clone(), &mk_spec(handoff), &HashPartitioner)
                .unwrap();
            assert_eq!(
                out.output.partitions, expect,
                "iterative chain {handoff:?} diverged from the sequential fold"
            );
            assert_eq!(out.stages.len(), k);
            for stage in &out.stages[..k - 1] {
                assert!(stage.handoff_records > 0, "a generation handed nothing off");
            }
            assert_eq!(out.stages[k - 1].handoff_records, 0);
        }
    }

    #[test]
    fn single_stage_iter_chain_is_just_the_job() {
        let splits = text_splits(3, 10);
        let app = iter_app();
        let cfg = JobConfig::new(2).engine(Engine::barrierless());
        let plain = LocalRunner::new(2).run(&app, splits.clone(), &cfg).unwrap();
        let out = LocalRunner::new(2)
            .run_chain_iter(
                &app,
                splits,
                &ChainSpec::new(vec![cfg]).handoff(HandoffMode::Streaming),
                &HashPartitioner,
            )
            .unwrap();
        assert_eq!(out.output.partitions, plain.partitions);
        assert_eq!(out.stages.len(), 1);
        assert_eq!(out.handoff_records(), 0);
    }
}
