//! Job chaining: barrier-less streaming between concatenated MapReduce
//! jobs.
//!
//! A single barrier-less job removes the shuffle barrier *inside* one
//! job. Real workloads are rarely one job: log analysis greps then
//! sorts, wordcount feeds a top-k selection, a genetic algorithm runs a
//! generation per job. The classic framework puts a hard barrier at
//! every job boundary — job N's reduce output is written to the DFS in
//! full before job N+1's map stage starts. This module removes that
//! barrier too: under [`HandoffMode::Streaming`](crate::HandoffMode)
//! each upstream reduce task's emitted output streams straight into
//! downstream map intake through the same bounded batched channels the
//! shuffle uses, so stage N+1 map work overlaps stage N reduce work;
//! under [`HandoffMode::Barrier`](crate::HandoffMode) the boundary is
//! the Hadoop baseline (materialize, then start).
//!
//! The pieces:
//!
//! * [`ChainableApplication`] — how a downstream job consumes an
//!   upstream job's output records. Existing [`Application`]s compose
//!   without rewrites: either implement the one `adapt_input` method, or
//!   wrap the app in an [`InputAdapter`] closure.
//! * [`local`] — the chain driver for
//!   [`LocalRunner`](crate::local::LocalRunner): linear chains, simple
//!   fan-in, and an iterative driver for homogeneous K-stage chains.
//! * The cluster simulator's chain executor lives in `mr-cluster`
//!   (`ChainSimExecutor`), which schedules cross-job handoff edges as
//!   timeline events.
//!
//! Chains are configured by [`ChainSpec`](crate::ChainSpec) — one
//! [`JobConfig`](crate::JobConfig) per stage plus the chain-level
//! [`ChainConfig`](crate::ChainConfig).

pub mod local;

use crate::counters::{names, Counters};
use crate::engine::DriverReport;
use crate::output::JobOutput;
use crate::traits::{Application, Emit};
use mr_trace::{TraceEvent, TraceLog};
use std::cmp::Ordering;

/// An [`Application`] that can sit downstream of a job emitting
/// `(UpK, UpV)` output records.
///
/// [`adapt_input`](ChainableApplication::adapt_input) converts one
/// upstream output record into this job's map input record — the glue a
/// chain driver applies at the stage boundary, in upstream emission
/// order. Implement it directly on an app (a one-method change; the
/// paper's "no rewrite" claim for composition), or wrap any app in an
/// [`InputAdapter`] closure.
pub trait ChainableApplication<UpK, UpV>: Application {
    /// Converts one upstream output record into this job's input record.
    fn adapt_input(&self, key: UpK, value: UpV) -> (Self::InKey, Self::InValue);

    /// Modelled bytes of one upstream record crossing the handoff — the
    /// accounting unit for
    /// [`ChainConfig::handoff_batch_bytes`](crate::ChainConfig). The
    /// default is the shallow struct size; override when the payload is
    /// heap-heavy (strings, vectors).
    fn handoff_bytes(&self, key: &UpK, value: &UpV) -> usize {
        let _ = (key, value);
        std::mem::size_of::<UpK>() + std::mem::size_of::<UpV>()
    }
}

/// Wraps an [`Application`] with an input-adaptation closure so it can
/// consume another job's output without touching the app itself.
///
/// The wrapper delegates every `Application` method to the inner app; the
/// closure only shapes the chain boundary.
pub struct InputAdapter<A, F> {
    inner: A,
    adapt: F,
}

impl<A, F> InputAdapter<A, F> {
    /// Wraps `inner`, converting upstream records with `adapt`.
    pub fn new(inner: A, adapt: F) -> Self {
        InputAdapter { inner, adapt }
    }

    /// The wrapped application.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A, F> Application for InputAdapter<A, F>
where
    A: Application,
    F: Send + Sync + 'static,
{
    type InKey = A::InKey;
    type InValue = A::InValue;
    type MapKey = A::MapKey;
    type MapValue = A::MapValue;
    type OutKey = A::OutKey;
    type OutValue = A::OutValue;
    type State = A::State;
    type Shared = A::Shared;

    fn map(
        &self,
        key: &Self::InKey,
        value: &Self::InValue,
        out: &mut dyn Emit<Self::MapKey, Self::MapValue>,
    ) {
        self.inner.map(key, value, out);
    }

    fn new_shared(&self) -> Self::Shared {
        self.inner.new_shared()
    }

    fn reduce_grouped(
        &self,
        key: &Self::MapKey,
        values: Vec<Self::MapValue>,
        shared: &mut Self::Shared,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    ) {
        self.inner.reduce_grouped(key, values, shared, out);
    }

    fn uses_keyed_state(&self) -> bool {
        self.inner.uses_keyed_state()
    }

    fn init(&self, key: &Self::MapKey) -> Self::State {
        self.inner.init(key)
    }

    fn absorb(
        &self,
        key: &Self::MapKey,
        state: &mut Self::State,
        value: Self::MapValue,
        shared: &mut Self::Shared,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    ) {
        self.inner.absorb(key, state, value, shared, out);
    }

    fn merge(&self, key: &Self::MapKey, a: Self::State, b: Self::State) -> Self::State {
        self.inner.merge(key, a, b)
    }

    fn finalize(
        &self,
        key: Self::MapKey,
        state: Self::State,
        shared: &mut Self::Shared,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    ) {
        self.inner.finalize(key, state, shared, out);
    }

    fn flush_shared(&self, shared: Self::Shared, out: &mut dyn Emit<Self::OutKey, Self::OutValue>) {
        self.inner.flush_shared(shared, out);
    }

    fn sort_cmp(
        &self,
        a: &(Self::MapKey, Self::MapValue),
        b: &(Self::MapKey, Self::MapValue),
    ) -> Ordering {
        self.inner.sort_cmp(a, b)
    }

    fn group_eq(&self, a: &Self::MapKey, b: &Self::MapKey) -> bool {
        self.inner.group_eq(a, b)
    }

    fn requires_sorted_output(&self) -> bool {
        self.inner.requires_sorted_output()
    }

    fn combine_enabled(&self) -> bool {
        self.inner.combine_enabled()
    }

    fn combiner_emit(
        &self,
        key: &Self::MapKey,
        state: Self::State,
        out: &mut dyn Emit<Self::MapKey, Self::MapValue>,
    ) {
        self.inner.combiner_emit(key, state, out);
    }

    fn snapshot_emit(
        &self,
        key: &Self::MapKey,
        state: &Self::State,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    ) {
        self.inner.snapshot_emit(key, state, out);
    }

    fn snapshot_error(
        &self,
        estimate: &[(Self::OutKey, Self::OutValue)],
        truth: &[(Self::OutKey, Self::OutValue)],
    ) -> f64 {
        self.inner.snapshot_error(estimate, truth)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

impl<A, UpK, UpV, F> ChainableApplication<UpK, UpV> for InputAdapter<A, F>
where
    A: Application,
    F: Fn(UpK, UpV) -> (A::InKey, A::InValue) + Send + Sync + 'static,
{
    fn adapt_input(&self, key: UpK, value: UpV) -> (Self::InKey, Self::InValue) {
        (self.adapt)(key, value)
    }
}

/// Observability for one chain stage.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Merged counters of the stage's own tasks (map + reduce).
    pub counters: Counters,
    /// Per-reducer store reports of the stage (empty for barrier-engine
    /// stages, which keep no partial store).
    pub reports: Vec<DriverReport>,
    /// Records this stage handed to the next stage (0 for the final
    /// stage).
    pub handoff_records: u64,
    /// Handoff batches this stage shipped downstream.
    pub handoff_batches: u64,
    /// Modelled bytes handed downstream.
    pub handoff_bytes: u64,
    /// Wall seconds (since the chain started) when the stage's first
    /// handoff record left a reducer — `None` when nothing was handed
    /// off, or under the barrier handoff (which hands off only after the
    /// stage completes).
    pub first_handoff_secs: Option<f64>,
    /// Wall seconds when the stage's last task finished.
    pub finished_secs: f64,
}

impl StageStats {
    /// Derives one stage's stats from a chain's unified trace log — the
    /// compatibility view over the stage's job-scoped events: counters
    /// come from the stage's counter totals (the chain boundary's
    /// `chain.handoff.*` charges included), handoff volume from those
    /// same counters, and the instants from the stage's handoff and
    /// stage-done marks. `reports` are the one part the trace does not
    /// carry (they summarize whole partial-result stores), so the caller
    /// passes them through.
    pub fn from_log(log: &TraceLog, job: u32, reports: Vec<DriverReport>) -> StageStats {
        let counters = Counters::from_trace_job(log, job);
        let mut first_handoff_secs = None;
        let mut finished_secs = 0.0;
        for e in log.iter().filter(|e| e.scope.job == job) {
            match &e.event {
                TraceEvent::HandoffMark { at, .. } if first_handoff_secs.is_none() => {
                    first_handoff_secs = Some(at.as_secs_f64());
                }
                TraceEvent::StageDone { at } => finished_secs = at.as_secs_f64(),
                _ => {}
            }
        }
        StageStats {
            handoff_records: counters.get(names::CHAIN_HANDOFF_RECORDS),
            handoff_batches: counters.get(names::CHAIN_HANDOFF_BATCHES),
            handoff_bytes: counters.get(names::CHAIN_HANDOFF_BYTES),
            first_handoff_secs,
            finished_secs,
            counters,
            reports,
        }
    }
}

/// A finished chain run: the final stage's [`JobOutput`] plus per-stage
/// statistics. Intermediate stage output is *not* materialized — it was
/// handed to the next stage as a record stream — so only the last
/// stage's partitions survive.
pub struct ChainOutput<B: Application> {
    /// The final stage's output.
    pub output: JobOutput<B>,
    /// One entry per stage, in execution order (for fan-in chains: one
    /// per upstream branch, then the downstream stage).
    pub stages: Vec<StageStats>,
    /// The chain's unified trace: stage `j`'s events re-scoped to job
    /// `j`, followed by each boundary's handoff charges and stage-done
    /// marks. `stages` is derived from this log when tracing is on.
    /// Empty unless *every* stage config enables
    /// [`TracePolicy`](crate::TracePolicy) (the merged log would
    /// otherwise have holes the derived views can't paper over). The
    /// final stage's `output.trace` is drained into this log rather than
    /// duplicated.
    pub trace: TraceLog,
}

impl<B: Application> ChainOutput<B> {
    /// Every stage's counters merged, chain handoff counters included.
    pub fn total_counters(&self) -> Counters {
        let mut all = Counters::new();
        for stage in &self.stages {
            all.merge(&stage.counters);
        }
        all
    }

    /// Total records handed across stage boundaries.
    pub fn handoff_records(&self) -> u64 {
        self.stages.iter().map(|s| s.handoff_records).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WordCountApp;

    #[test]
    fn input_adapter_delegates_and_adapts() {
        let app = InputAdapter::new(WordCountApp, |key: u32, line: String| {
            (key as u64, line.to_uppercase())
        });
        assert_eq!(app.name(), "test-wordcount");
        assert!(app.uses_keyed_state());
        let (k, v) = app.adapt_input(7u32, "abc".to_string());
        assert_eq!(k, 7u64);
        assert_eq!(v, "ABC");
        // The inner map still runs on the adapted record.
        let mut out: Vec<(String, u64)> = Vec::new();
        app.map(&k, &v, &mut out);
        assert_eq!(out, vec![("ABC".to_string(), 1)]);
        // Incremental form delegates too.
        let mut state = app.init(&"w".to_string());
        let mut sink: Vec<(String, u64)> = Vec::new();
        app.absorb(
            &"w".to_string(),
            &mut state,
            2,
            &mut app.new_shared(),
            &mut sink,
        );
        assert_eq!(state, 2);
        assert_eq!(app.merge(&"w".to_string(), 3, 4), 7);
    }

    #[test]
    fn default_handoff_bytes_is_the_shallow_size() {
        let app = InputAdapter::new(WordCountApp, |key: u64, n: u64| (key, n.to_string()));
        let got = ChainableApplication::<u64, u64>::handoff_bytes(&app, &1, &2);
        assert_eq!(got, 16);
    }
}
