//! In-crate test applications.
//!
//! Real applications live in `mr-apps`; these minimal ones exist so the
//! framework's own unit tests don't depend on a downstream crate.

use crate::traits::{Application, Emit};
use std::cmp::Ordering;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

static SCRATCH_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory for one test.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let serial = SCRATCH_SERIAL.fetch_add(1, AtomicOrdering::Relaxed);
    std::env::temp_dir().join(format!(
        "mr-core-test-{tag}-{}-{serial}",
        std::process::id()
    ))
}

/// Classic word count: the paper's running example (Algorithms 1 & 2).
pub struct WordCountApp;

impl Application for WordCountApp {
    type InKey = u64;
    type InValue = String;
    type MapKey = String;
    type MapValue = u64;
    type OutKey = String;
    type OutValue = u64;
    type State = u64;
    type Shared = ();

    fn map(&self, _key: &u64, value: &String, out: &mut dyn Emit<String, u64>) {
        for word in value.split_whitespace() {
            out.emit(word.to_string(), 1);
        }
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &String,
        values: Vec<u64>,
        _shared: &mut (),
        out: &mut dyn Emit<String, u64>,
    ) {
        out.emit(key.clone(), values.iter().sum());
    }

    fn init(&self, _key: &String) -> u64 {
        0
    }

    fn absorb(
        &self,
        _key: &String,
        state: &mut u64,
        value: u64,
        _shared: &mut (),
        _out: &mut dyn Emit<String, u64>,
    ) {
        *state += value;
    }

    fn merge(&self, _key: &String, a: u64, b: u64) -> u64 {
        a + b
    }

    fn finalize(&self, key: String, state: u64, _shared: &mut (), out: &mut dyn Emit<String, u64>) {
        out.emit(key, state);
    }

    fn combine_enabled(&self) -> bool {
        true
    }

    fn combiner_emit(&self, key: &String, state: u64, out: &mut dyn Emit<String, u64>) {
        out.emit(key.clone(), state);
    }

    fn name(&self) -> &'static str {
        "test-wordcount"
    }
}

/// Secondary-sort demonstration: composite `(group, metric)` keys, sorted
/// by metric descending within a group; the grouped reducer emits the
/// first value (the max). Exercises `sort_cmp` + `group_eq` exactly the
/// way the paper's original kNN does.
pub struct SecondaryMax;

impl Application for SecondaryMax {
    type InKey = ();
    type InValue = (u64, i64, i64);
    type MapKey = (u64, i64);
    type MapValue = i64;
    type OutKey = u64;
    type OutValue = i64;
    type State = (i64, i64);
    type Shared = ();

    fn map(&self, _key: &(), value: &(u64, i64, i64), out: &mut dyn Emit<(u64, i64), i64>) {
        out.emit((value.0, value.1), value.2);
    }

    fn new_shared(&self) {}

    fn reduce_grouped(
        &self,
        key: &(u64, i64),
        values: Vec<i64>,
        _shared: &mut (),
        out: &mut dyn Emit<u64, i64>,
    ) {
        // Values arrive metric-descending; the first is the winner.
        out.emit(key.0, values[0]);
    }

    fn sort_cmp(&self, a: &((u64, i64), i64), b: &((u64, i64), i64)) -> Ordering {
        // Group ascending, metric descending.
        (a.0 .0, std::cmp::Reverse(a.0 .1)).cmp(&(b.0 .0, std::cmp::Reverse(b.0 .1)))
    }

    fn group_eq(&self, a: &(u64, i64), b: &(u64, i64)) -> bool {
        a.0 == b.0
    }

    fn init(&self, _key: &(u64, i64)) -> (i64, i64) {
        (i64::MIN, 0)
    }

    fn absorb(
        &self,
        key: &(u64, i64),
        state: &mut (i64, i64),
        value: i64,
        _shared: &mut (),
        _out: &mut dyn Emit<u64, i64>,
    ) {
        if key.1 > state.0 {
            *state = (key.1, value);
        }
    }

    fn merge(&self, _key: &(u64, i64), a: (i64, i64), b: (i64, i64)) -> (i64, i64) {
        if a.0 >= b.0 {
            a
        } else {
            b
        }
    }

    fn finalize(
        &self,
        key: (u64, i64),
        state: (i64, i64),
        _shared: &mut (),
        out: &mut dyn Emit<u64, i64>,
    ) {
        out.emit(key.0, state.1);
    }

    fn name(&self) -> &'static str {
        "test-secondary-max"
    }
}

/// An unkeyed application: global sum via per-reducer shared state only
/// (the single-reducer-aggregation class, O(1) memory).
pub struct GlobalSum;

impl Application for GlobalSum {
    type InKey = u64;
    type InValue = u64;
    type MapKey = u8;
    type MapValue = u64;
    type OutKey = u8;
    type OutValue = u64;
    type State = ();
    type Shared = u64;

    fn map(&self, _key: &u64, value: &u64, out: &mut dyn Emit<u8, u64>) {
        out.emit(0, *value);
    }

    fn new_shared(&self) -> u64 {
        0
    }

    fn reduce_grouped(
        &self,
        _key: &u8,
        values: Vec<u64>,
        shared: &mut u64,
        _out: &mut dyn Emit<u8, u64>,
    ) {
        *shared += values.iter().sum::<u64>();
    }

    fn uses_keyed_state(&self) -> bool {
        false
    }

    fn init(&self, _key: &u8) {}

    fn absorb(
        &self,
        _key: &u8,
        _state: &mut (),
        value: u64,
        shared: &mut u64,
        _out: &mut dyn Emit<u8, u64>,
    ) {
        *shared += value;
    }

    fn merge(&self, _key: &u8, _a: (), _b: ()) {}

    fn finalize(&self, _key: u8, _state: (), _shared: &mut u64, _out: &mut dyn Emit<u8, u64>) {}

    fn flush_shared(&self, shared: u64, out: &mut dyn Emit<u8, u64>) {
        out.emit(0, shared);
    }

    fn name(&self) -> &'static str {
        "test-global-sum"
    }
}
