//! Hand-rolled binary codec for keys and partial-result states.
//!
//! Spill files and the KV-backed store need a stable, compact, dependency-
//! free byte format. All integers are little-endian; lengths are `u32`;
//! floats are stored as their IEEE-754 bit patterns so round-trips are
//! exact (including NaN payloads).

use std::collections::{BTreeMap, HashSet};

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A length or discriminant made no sense.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::Corrupt(what) => write!(f, "corrupt encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Binary encode/decode for spillable types.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Reads one value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;

    /// Convenience: encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decode a complete buffer, requiring full consumption.
    fn from_bytes(mut input: &[u8]) -> Result<Self, CodecError> {
        let v = Self::decode(&mut input)?;
        if input.is_empty() {
            Ok(v)
        } else {
            Err(CodecError::Corrupt("trailing bytes"))
        }
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::UnexpectedEof);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().unwrap()))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Codec for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(u64::decode(input)? as usize)
    }
}

impl Codec for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(f32::from_bits(u32::decode(input)?))
    }
}

impl Codec for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.to_bits().encode(buf);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Codec for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Corrupt("bool")),
        }
    }
}

impl Codec for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Codec for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Corrupt("utf8"))
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(input)? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match take(input, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            _ => Err(CodecError::Corrupt("option tag")),
        }
    }
}

impl<K: Codec + Ord, V: Codec> Codec for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(input)? as usize;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(input)?;
            let v = V::decode(input)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Codec + Ord + std::hash::Hash + Clone> Codec for HashSet<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        // Sorted for deterministic bytes (spill files are diffable).
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        (items.len() as u32).encode(buf);
        for item in items {
            item.encode(buf);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(input)? as usize;
        let mut out = HashSet::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.insert(T::decode(input)?);
        }
        Ok(out)
    }
}

macro_rules! tuple_codec {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Codec),+> Codec for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                Ok(($($name::decode(input)?,)+))
            }
        }
    )*};
}

tuple_codec! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(123456789u32);
        roundtrip(u64::MAX);
        roundtrip(-42i8);
        roundtrip(i16::MIN);
        roundtrip(-1i32);
        roundtrip(i64::MIN);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        roundtrip(0.0f64);
        roundtrip(-0.0f64);
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::INFINITY);
        roundtrip(1.5f32);
        let nan_bits = f64::NAN.to_bits() | 0xDEAD;
        let bytes = f64::from_bits(nan_bits).to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), nan_bits, "NaN payload preserved");
    }

    #[test]
    fn strings_and_collections() {
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u8));
        roundtrip(Option::<u8>::None);
        roundtrip(vec![Some("a".to_string()), None]);
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        roundtrip(m);
        let mut s = HashSet::new();
        s.insert(3u32);
        s.insert(1u32);
        roundtrip(s);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1u8,));
        roundtrip((1u32, "two".to_string()));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1u8, 2u16, 3u32, 4u64));
    }

    #[test]
    fn hashset_encoding_is_deterministic() {
        let mut a = HashSet::new();
        let mut b = HashSet::new();
        for i in 0..100u32 {
            a.insert(i);
        }
        for i in (0..100u32).rev() {
            b.insert(i);
        }
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn eof_and_trailing_are_errors() {
        assert_eq!(u32::from_bytes(&[1, 2]), Err(CodecError::UnexpectedEof));
        assert_eq!(
            u8::from_bytes(&[1, 2]),
            Err(CodecError::Corrupt("trailing bytes"))
        );
        assert_eq!(bool::from_bytes(&[9]), Err(CodecError::Corrupt("bool")));
        // Truncated string payload.
        let mut buf = Vec::new();
        10u32.encode(&mut buf);
        buf.extend_from_slice(b"abc");
        assert_eq!(String::from_bytes(&buf), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        2u32.encode(&mut buf);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(String::from_bytes(&buf), Err(CodecError::Corrupt("utf8")));
    }

    #[test]
    fn sequential_decode_advances_input() {
        let mut buf = Vec::new();
        1u32.encode(&mut buf);
        "x".to_string().encode(&mut buf);
        2u64.encode(&mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(u32::decode(&mut slice).unwrap(), 1);
        assert_eq!(String::decode(&mut slice).unwrap(), "x");
        assert_eq!(u64::decode(&mut slice).unwrap(), 2);
        assert!(slice.is_empty());
    }
}
