//! Partitioning map output across reducers.

use std::hash::{Hash, Hasher};

/// Assigns intermediate keys to reduce partitions.
pub trait Partitioner<K>: Send + Sync {
    /// Partition index for `key`, in `0..partitions`.
    fn partition(&self, key: &K, partitions: usize) -> usize;
}

/// Hadoop's default: `hash(key) mod partitions`.
///
/// Uses a fixed FNV-1a so partition assignment is identical across runs,
/// platforms and engines (SipHash's random keys would break determinism).
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

/// Minimal FNV-1a hasher — stable, fast, dependency-free.
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, partitions: usize) -> usize {
        assert!(partitions > 0, "need at least one partition");
        let mut h = Fnv1a::default();
        key.hash(&mut h);
        (h.finish() % partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_stable_and_in_range() {
        let p = HashPartitioner;
        for word in ["alpha", "beta", "gamma", "delta", ""] {
            let a = p.partition(&word.to_string(), 7);
            let b = p.partition(&word.to_string(), 7);
            assert_eq!(a, b);
            assert!(a < 7);
        }
    }

    #[test]
    fn single_partition_takes_everything() {
        let p = HashPartitioner;
        for i in 0..100u64 {
            assert_eq!(p.partition(&i, 1), 0);
        }
    }

    #[test]
    fn spreads_keys_reasonably() {
        let p = HashPartitioner;
        let parts = 10;
        let mut counts = vec![0u32; parts];
        for i in 0..10_000u64 {
            counts[p.partition(&i, parts)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            min > 700 && max < 1300,
            "badly skewed partitioning: {counts:?}"
        );
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of empty input is the offset basis.
        let h = Fnv1a::default();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
