//! Online partial-result snapshots — early estimates of the final answer.
//!
//! Breaking the stage barrier means reducers hold usable per-key partial
//! states *long before* the job finishes. A [`Snapshot`] makes that state
//! observable: a consistent point-in-time estimate of one reduce task's
//! final output, built from a frozen view of its partial-result store via
//! [`Application::snapshot_emit`] and
//! published without stalling absorption (the store is walked in key
//! order through the same `PartialMap` sorted-drain machinery that
//! finalize uses, but non-destructively).
//!
//! Snapshots are pure observation. The invariant the test harness pins:
//! enabling any [`SnapshotPolicy`](crate::SnapshotPolicy) — including a
//! pathological every-1-record policy — leaves the job's *final* output
//! byte-identical to a snapshot-free run, on every engine, store index
//! and memory policy.

use crate::traits::Application;

/// One published point-in-time estimate from one reduce task.
///
/// `seq` increases monotonically per reducer — across fault-recovery
/// re-runs too (a restarted reduce attempt resumes numbering above its
/// predecessor), so observers can always order what they saw.
pub struct Snapshot<A: Application> {
    /// Reduce partition that published this snapshot.
    pub reducer: usize,
    /// Per-reducer sequence number, monotone across task re-runs.
    pub seq: u64,
    /// Records this reduce task had absorbed when the snapshot was taken.
    pub records_absorbed: u64,
    /// Live partial results in the store at snapshot time.
    pub live_entries: usize,
    /// When the snapshot was taken: wall seconds since the reduce task
    /// started (local executor) or virtual sim seconds (cluster
    /// simulator). `0.0` when the executor did not stamp time.
    pub at_secs: f64,
    /// The estimated output, in the store's key order (key-sorted for
    /// every application whose output key follows its shuffle key).
    pub estimate: Vec<(A::OutKey, A::OutValue)>,
}

impl<A: Application> Clone for Snapshot<A> {
    fn clone(&self) -> Self {
        Snapshot {
            reducer: self.reducer,
            seq: self.seq,
            records_absorbed: self.records_absorbed,
            live_entries: self.live_entries,
            at_secs: self.at_secs,
            estimate: self.estimate.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WordCountApp;

    #[test]
    fn snapshots_clone_deeply() {
        let snap: Snapshot<WordCountApp> = Snapshot {
            reducer: 2,
            seq: 7,
            records_absorbed: 100,
            live_entries: 3,
            at_secs: 1.25,
            estimate: vec![("a".to_string(), 4), ("b".to_string(), 9)],
        };
        let copy = snap.clone();
        assert_eq!(copy.reducer, 2);
        assert_eq!(copy.seq, 7);
        assert_eq!(copy.records_absorbed, 100);
        assert_eq!(copy.live_entries, 3);
        assert_eq!(copy.at_secs, 1.25);
        assert_eq!(copy.estimate, snap.estimate);
    }
}
