//! Disk spill-and-merge partial-result store (§5.1 of the paper).
//!
//! Partial results accumulate in an in-memory map; when the modelled
//! footprint reaches the threshold, the whole map is written out as a
//! key-sorted *run file* and the map is cleared. A key's partial results
//! may end up scattered across several runs, so the finalize phase
//! performs a k-way merge over all runs (plus the residual in-memory map),
//! combining same-key states with `Application::merge` — "this merge
//! function is often functionally the same as the combiner" — and then
//! finalizing each key exactly once, in key order.
//!
//! The live map's index strategy is a knob ([`StoreIndex`]): under
//! `Hashed`, absorbs are O(1) expected probes and the key sort happens
//! once per spill (inside [`PartialMap::drain_sorted`]) instead of on
//! every insert. Run files are key-sorted either way, so the merge phase
//! and the bytes on disk are identical under both indexes.

use super::index::{apply_byte_delta, PartialMap};
use super::{PartialStore, StoreReport};
use crate::codec::Codec;
use crate::config::StoreIndex;
use crate::error::MrResult;
use crate::size::SizeEstimate;
use crate::traits::{Application, Emit};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes spill directories across tasks and tests in one process.
static SPILL_SERIAL: AtomicU64 = AtomicU64::new(0);

/// The spill-and-merge store.
pub struct SpillMergeStore<A: Application> {
    map: PartialMap<A::MapKey, A::State>,
    raw_bytes: u64,
    threshold_bytes: u64,
    heap_scale: f64,
    dir: PathBuf,
    runs: Vec<PathBuf>,
    /// One encode buffer reused for every record of every run — the
    /// per-record cost is a `clear()`, not an allocation.
    encode_buf: Vec<u8>,
    reducer: usize,
    peak_entries: usize,
    peak_bytes: u64,
    spill_bytes: u64,
    /// Run bytes re-read by snapshots (charged to disk via `io_bytes`,
    /// never to the spill accounting — snapshots must not look like
    /// spills).
    snapshot_read_bytes: u64,
}

impl<A: Application> SpillMergeStore<A> {
    /// A store spilling into `scratch_dir` when the *modelled* footprint
    /// reaches `threshold_bytes`.
    pub fn new(
        scratch_dir: &Path,
        index: StoreIndex,
        threshold_bytes: u64,
        heap_scale: f64,
        reducer: usize,
    ) -> MrResult<Self> {
        let serial = SPILL_SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir = scratch_dir.join(format!("spill-{}-r{reducer}-{serial}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        Ok(SpillMergeStore {
            map: PartialMap::new(index),
            raw_bytes: 0,
            threshold_bytes,
            heap_scale,
            dir,
            runs: Vec::new(),
            encode_buf: Vec::new(),
            reducer,
            peak_entries: 0,
            peak_bytes: 0,
            spill_bytes: 0,
            snapshot_read_bytes: 0,
        })
    }

    fn scaled(&self) -> u64 {
        (self.raw_bytes as f64 * self.heap_scale) as u64
    }

    /// Writes the current map as a key-sorted run and clears it.
    fn spill(&mut self) -> MrResult<()> {
        if self.map.is_empty() {
            return Ok(());
        }
        let path = self.dir.join(format!("run-{:04}.spill", self.runs.len()));
        let mut out = BufWriter::new(File::create(&path)?);
        let entries = self.map.drain_sorted();
        out.write_all(&(entries.len() as u64).to_le_bytes())?;
        let buf = &mut self.encode_buf;
        let mut written = 0u64;
        for (key, state) in entries {
            buf.clear();
            key.encode(buf);
            state.encode(buf);
            out.write_all(&(buf.len() as u32).to_le_bytes())?;
            out.write_all(buf)?;
            written += 4 + buf.len() as u64;
        }
        out.flush()?;
        self.spill_bytes += written + 8;
        self.runs.push(path);
        self.raw_bytes = 0;
        Ok(())
    }
}

/// Sequential reader over one sorted run.
struct RunReader<A: Application> {
    input: BufReader<File>,
    remaining: u64,
    /// Payload buffer reused across entries.
    payload: Vec<u8>,
    _marker: std::marker::PhantomData<fn() -> A>,
}

impl<A: Application> RunReader<A> {
    fn open(path: &Path) -> MrResult<Self> {
        let mut input = BufReader::with_capacity(128 << 10, File::open(path)?);
        let mut header = [0u8; 8];
        input.read_exact(&mut header)?;
        Ok(RunReader {
            input,
            remaining: u64::from_le_bytes(header),
            payload: Vec::new(),
            _marker: std::marker::PhantomData,
        })
    }

    fn next_entry(&mut self) -> MrResult<Option<(A::MapKey, A::State)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut len_bytes = [0u8; 4];
        self.input.read_exact(&mut len_bytes)?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        self.payload.resize(len, 0);
        self.input.read_exact(&mut self.payload)?;
        let mut slice = self.payload.as_slice();
        let key = A::MapKey::decode(&mut slice)?;
        let state = A::State::decode(&mut slice)?;
        Ok(Some((key, state)))
    }
}

impl<A: Application> PartialStore<A> for SpillMergeStore<A> {
    fn absorb(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()> {
        let delta = self.map.upsert_with(
            key,
            |k| app.init(k),
            |k, state| app.absorb(k, state, value, shared, out),
        );
        self.raw_bytes = apply_byte_delta(self.raw_bytes, delta);
        self.peak_entries = self.peak_entries.max(self.map.len());
        self.peak_bytes = self.peak_bytes.max(self.scaled());
        if self.scaled() >= self.threshold_bytes {
            self.spill()?;
        }
        Ok(())
    }

    fn finalize_into(
        self: Box<Self>,
        app: &A,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<StoreReport> {
        let this = *self;
        let _ = this.reducer;
        let mut report = StoreReport {
            entries: this.map.len(),
            peak_entries: this.peak_entries,
            peak_bytes: this.peak_bytes,
            spill_files: this.runs.len() as u64,
            spill_bytes: this.spill_bytes,
            ..StoreReport::default()
        };

        if this.runs.is_empty() {
            // Never spilled: plain in-memory finalize, key-sorted.
            for (key, state) in this.map.into_sorted_iter() {
                app.finalize(key, state, shared, out);
            }
            std::fs::remove_dir_all(&this.dir).ok();
            return Ok(report);
        }

        // K-way merge across run files plus the residual in-memory map.
        let mut readers: Vec<RunReader<A>> = Vec::with_capacity(this.runs.len());
        for path in &this.runs {
            readers.push(RunReader::open(path)?);
        }
        // heads[i] = next (key, state) of source i; source k = in-memory map.
        let mut heads: Vec<Option<(A::MapKey, A::State)>> = Vec::new();
        for reader in &mut readers {
            heads.push(reader.next_entry()?);
        }
        let mut mem_iter = this.map.into_sorted_iter();
        heads.push(mem_iter.next());

        // Repeatedly pull the globally smallest key among the heads.
        while let Some(min_key) = heads.iter().flatten().map(|(k, _)| k).min().cloned() {
            // Pull every head equal to min_key, merging states; sources are
            // individually sorted, so repeatedly refilling each matching
            // head collects all partial results for the key.
            let mut acc: Option<A::State> = None;
            for (i, slot) in heads.iter_mut().enumerate() {
                while matches!(slot, Some((k, _)) if *k == min_key) {
                    let (_, state) = slot.take().expect("matched Some");
                    acc = Some(match acc.take() {
                        None => state,
                        Some(prev) => {
                            report.merged_states += 1;
                            app.merge(&min_key, prev, state)
                        }
                    });
                    *slot = if i < readers.len() {
                        readers[i].next_entry()?
                    } else {
                        mem_iter.next()
                    };
                }
            }
            let state = acc.expect("min key came from some head");
            app.finalize(min_key, state, shared, out);
        }

        std::fs::remove_dir_all(&this.dir).ok();
        Ok(report)
    }

    fn snapshot_into(
        &mut self,
        app: &A,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<u64> {
        let mut bytes = 0u64;
        if self.runs.is_empty() {
            for (key, state) in self.map.sorted_view() {
                bytes += (key.estimated_bytes() + state.estimated_bytes()) as u64;
                app.snapshot_emit(key, state, out);
            }
            return Ok(bytes);
        }

        // A key's partials may be scattered across runs and the live
        // map, so a self-consistent snapshot needs the same k-way merge
        // finalize performs — but non-destructively: run files are
        // re-read from disk (they stay put) and live states are cloned
        // through their codec round-trip before merging.
        let mut readers: Vec<RunReader<A>> = Vec::with_capacity(self.runs.len());
        for path in &self.runs {
            readers.push(RunReader::open(path)?);
        }
        let mut heads: Vec<Option<(A::MapKey, A::State)>> = Vec::new();
        for reader in &mut readers {
            heads.push(reader.next_entry()?);
        }
        let clone_entry = |k: &A::MapKey, s: &A::State| -> MrResult<(A::MapKey, A::State)> {
            Ok((k.clone(), A::State::from_bytes(&s.to_bytes())?))
        };
        let view = self.map.sorted_view();
        let mut live = view.into_iter();
        heads.push(match live.next() {
            Some((k, s)) => Some(clone_entry(k, s)?),
            None => None,
        });

        while let Some(min_key) = heads.iter().flatten().map(|(k, _)| k).min().cloned() {
            let mut acc: Option<A::State> = None;
            for (i, slot) in heads.iter_mut().enumerate() {
                while matches!(slot, Some((k, _)) if *k == min_key) {
                    let (_, state) = slot.take().expect("matched Some");
                    acc = Some(match acc.take() {
                        None => state,
                        Some(prev) => app.merge(&min_key, prev, state),
                    });
                    *slot = if i < readers.len() {
                        readers[i].next_entry()?
                    } else {
                        match live.next() {
                            Some((k, s)) => Some(clone_entry(k, s)?),
                            None => None,
                        }
                    };
                }
            }
            let state = acc.expect("min key came from some head");
            bytes += (min_key.estimated_bytes() + state.estimated_bytes()) as u64;
            app.snapshot_emit(&min_key, &state, out);
        }
        self.snapshot_read_bytes += self.spill_bytes;
        Ok(bytes)
    }

    fn modelled_bytes(&self) -> u64 {
        self.scaled()
    }

    fn entries(&self) -> usize {
        self.map.len()
    }

    fn io_bytes(&self) -> u64 {
        self.spill_bytes + self.snapshot_read_bytes
    }
}
