//! The per-key index behind the in-memory partial stores.
//!
//! [`PartialMap`] is the one data structure every absorb-heavy component
//! shares — the reduce-side [`InMemoryStore`](super::InMemoryStore), the
//! [`SpillMergeStore`](super::SpillMergeStore)'s live run, and the
//! map-side [`CombinerBuffer`](crate::combine::CombinerBuffer). It wraps
//! either an ordered map (the paper's TreeMap) or an FxHash map
//! ([`crate::hash`]), selected by [`StoreIndex`].
//!
//! The contract that keeps the two interchangeable: **insertion order
//! never leaks**. Probes (`get_mut`) and inserts are order-free, and the
//! only way entries come back out is key-sorted — [`drain_sorted`]
//! (spill runs, combiner drains) and [`into_sorted_iter`] (finalize).
//! Under `Ordered` that is a plain in-order walk (no intermediate
//! collection); under `Hashed` the keys are sorted once at the drain,
//! amortizing the ordering cost the TreeMap paid on every insert.
//! Because keys within one map are unique, the sort has no equal
//! elements and both indexes produce byte-identical drains.
//!
//! [`drain_sorted`]: PartialMap::drain_sorted
//! [`into_sorted_iter`]: PartialMap::into_sorted_iter

use crate::config::StoreIndex;
use crate::hash::FxHashMap;
use crate::size::{SizeEstimate, ENTRY_OVERHEAD};
use std::collections::BTreeMap;
use std::hash::Hash;

/// A per-key map with order-free writes and key-sorted drains.
#[derive(Debug, Clone)]
pub enum PartialMap<K, V> {
    /// Keys kept sorted on every insert (`BTreeMap`).
    Ordered(BTreeMap<K, V>),
    /// O(1) expected probes; sorted once at drain (`FxHashMap`).
    Hashed(FxHashMap<K, V>),
}

impl<K: Ord + Hash + Eq, V> PartialMap<K, V> {
    /// An empty map using the given index strategy.
    pub fn new(index: StoreIndex) -> Self {
        match index {
            StoreIndex::Ordered => PartialMap::Ordered(BTreeMap::new()),
            StoreIndex::Hashed => PartialMap::Hashed(FxHashMap::default()),
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        match self {
            PartialMap::Ordered(m) => m.len(),
            PartialMap::Hashed(m) => m.len(),
        }
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The absorb-hot-path probe.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self {
            PartialMap::Ordered(m) => m.get_mut(key),
            PartialMap::Hashed(m) => m.get_mut(key),
        }
    }

    /// Inserts a fresh entry. The stores only call this after a missed
    /// probe, so the key is moved in — no clone on either path.
    #[inline]
    pub fn insert(&mut self, key: K, value: V) {
        match self {
            PartialMap::Ordered(m) => {
                m.insert(key, value);
            }
            PartialMap::Hashed(m) => {
                m.insert(key, value);
            }
        }
    }

    /// Empties the map (keeping its strategy) and returns every entry in
    /// ascending key order — the amortized sort the hot path skipped.
    /// The ordered index streams straight out of the tree; only the
    /// hashed index materializes (to sort).
    pub fn drain_sorted(&mut self) -> SortedDrain<K, V> {
        match self {
            PartialMap::Ordered(m) => SortedDrain::Ordered(std::mem::take(m).into_iter()),
            PartialMap::Hashed(m) => {
                let mut entries: Vec<(K, V)> = m.drain().collect();
                // Keys are unique, so an unstable sort is deterministic.
                entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                SortedDrain::Hashed(entries.into_iter())
            }
        }
    }

    /// Consumes the map, yielding every entry in ascending key order.
    pub fn into_sorted_iter(mut self) -> SortedDrain<K, V> {
        self.drain_sorted()
    }

    /// A *frozen view*: every live entry by reference, in ascending key
    /// order, leaving the map untouched. This is what snapshots walk —
    /// the same key ordering as [`drain_sorted`](PartialMap::drain_sorted)
    /// without consuming anything, so observation never perturbs spill
    /// cadence, byte accounting or final output. The ordered index
    /// streams its tree walk; the hashed index pays one reference sort.
    pub fn sorted_view(&self) -> Vec<(&K, &V)> {
        match self {
            PartialMap::Ordered(m) => m.iter().collect(),
            PartialMap::Hashed(m) => {
                let mut entries: Vec<(&K, &V)> = m.iter().collect();
                entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
                entries
            }
        }
    }

    /// The absorb hot path, shared by every store: folds into `key`'s
    /// entry via `absorb`, creating it with `init` on a miss (the key is
    /// moved in, never cloned). Returns the signed change in estimated
    /// bytes — the state delta on a hit; key + state + [`ENTRY_OVERHEAD`]
    /// on a miss — for the caller's accounting (see [`apply_byte_delta`]).
    #[inline]
    pub fn upsert_with(
        &mut self,
        key: K,
        init: impl FnOnce(&K) -> V,
        absorb: impl FnOnce(&K, &mut V),
    ) -> isize
    where
        K: SizeEstimate,
        V: SizeEstimate,
    {
        match self.get_mut(&key) {
            Some(state) => {
                let before = state.estimated_bytes();
                absorb(&key, state);
                state.estimated_bytes() as isize - before as isize
            }
            None => {
                let mut state = init(&key);
                absorb(&key, &mut state);
                let added = key.estimated_bytes() + state.estimated_bytes() + ENTRY_OVERHEAD;
                self.insert(key, state);
                added as isize
            }
        }
    }
}

/// Applies a signed byte delta from [`PartialMap::upsert_with`] to a
/// byte counter, saturating at zero (states can shrink — e.g. a
/// selection evicting values — so the delta is not assumed non-negative).
#[inline]
pub fn apply_byte_delta(total: u64, delta: isize) -> u64 {
    if delta >= 0 {
        total + delta as u64
    } else {
        total.saturating_sub(delta.unsigned_abs() as u64)
    }
}

/// Key-ascending draining iterator over a [`PartialMap`]'s entries.
pub enum SortedDrain<K, V> {
    /// Streaming straight out of the ordered tree.
    Ordered(std::collections::btree_map::IntoIter<K, V>),
    /// Walking the just-sorted entries of the hashed index.
    Hashed(std::vec::IntoIter<(K, V)>),
}

impl<K, V> Iterator for SortedDrain<K, V> {
    type Item = (K, V);

    fn next(&mut self) -> Option<(K, V)> {
        match self {
            SortedDrain::Ordered(it) => it.next(),
            SortedDrain::Hashed(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SortedDrain::Ordered(it) => it.size_hint(),
            SortedDrain::Hashed(it) => it.size_hint(),
        }
    }
}

impl<K, V> ExactSizeIterator for SortedDrain<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(index: StoreIndex) -> PartialMap<String, u64> {
        let mut m = PartialMap::new(index);
        for word in ["delta", "alpha", "charlie", "bravo"] {
            m.insert(word.to_string(), 1);
        }
        *m.get_mut(&"alpha".to_string()).expect("present") += 9;
        m
    }

    #[test]
    fn both_indexes_drain_in_identical_key_order() {
        let ordered: Vec<_> = filled(StoreIndex::Ordered).into_sorted_iter().collect();
        let hashed: Vec<_> = filled(StoreIndex::Hashed).into_sorted_iter().collect();
        assert_eq!(ordered, hashed);
        assert_eq!(ordered[0].0, "alpha");
        assert_eq!(ordered[0].1, 10);
    }

    #[test]
    fn sorted_view_is_key_ordered_and_non_destructive() {
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            let m = filled(index);
            let view: Vec<(String, u64)> = m
                .sorted_view()
                .into_iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            assert_eq!(
                view.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(),
                vec!["alpha", "bravo", "charlie", "delta"],
                "index {index:?}"
            );
            // Nothing consumed: the drain still sees everything.
            assert_eq!(m.len(), 4);
            let drained: Vec<(String, u64)> = m.into_sorted_iter().collect();
            assert_eq!(drained, view, "view diverged from drain under {index:?}");
        }
    }

    #[test]
    fn drain_sorted_resets_but_keeps_the_strategy() {
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            let mut m = filled(index);
            assert_eq!(m.len(), 4);
            let first = m.drain_sorted();
            assert_eq!(first.len(), 4, "ExactSizeIterator under {index:?}");
            assert_eq!(first.count(), 4);
            assert!(m.is_empty());
            m.insert("echo".to_string(), 5);
            let again: Vec<_> = m.drain_sorted().collect();
            assert_eq!(again, vec![("echo".to_string(), 5)]);
        }
    }

    #[test]
    fn upsert_reports_miss_and_hit_deltas() {
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            let mut m: PartialMap<u64, Vec<u64>> = PartialMap::new(index);
            let miss = m.upsert_with(1, |_| Vec::new(), |_, v| v.push(9));
            assert!(miss > 0, "miss must charge key+state+overhead");
            let grow = m.upsert_with(1, |_| Vec::new(), |_, v| v.push(9));
            assert!(grow > 0);
            let shrink = m.upsert_with(1, |_| Vec::new(), |_, v| v.clear());
            assert!(shrink < 0, "shrinking state must report a negative delta");
            assert_eq!(apply_byte_delta(100, 8), 108);
            assert_eq!(apply_byte_delta(100, -8), 92);
            assert_eq!(apply_byte_delta(4, -8), 0, "saturates at zero");
        }
    }

    #[test]
    fn probe_misses_and_hits() {
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            let mut m: PartialMap<u64, u64> = PartialMap::new(index);
            assert!(m.get_mut(&7).is_none());
            m.insert(7, 1);
            *m.get_mut(&7).expect("hit") += 1;
            assert_eq!(m.into_sorted_iter().collect::<Vec<_>>(), vec![(7, 2)]);
        }
    }
}
