//! In-memory partial-result store — the paper's Java `TreeMap` (§3.2).

use super::{PartialStore, StoreReport};
use crate::error::{MrError, MrResult};
use crate::size::{SizeEstimate, ENTRY_OVERHEAD};
use crate::traits::{Application, Emit};
use std::collections::BTreeMap;

/// A red-black-tree-equivalent ordered map of partial results, with byte
/// accounting and an optional hard heap cap.
///
/// The accounting models what the paper measured on the JVM: key bytes +
/// state bytes + a per-node overhead, scaled by `heap_scale` so that
/// scaled-down simulated workloads report full-size heap numbers.
pub struct InMemoryStore<A: Application> {
    map: BTreeMap<A::MapKey, A::State>,
    /// Unscaled live bytes (keys + states + node overhead).
    raw_bytes: u64,
    heap_scale: f64,
    heap_cap: Option<u64>,
    reducer: usize,
    peak_entries: usize,
    peak_bytes: u64,
}

impl<A: Application> InMemoryStore<A> {
    /// An empty store for reduce partition `reducer`.
    pub fn new(heap_cap: Option<u64>, heap_scale: f64, reducer: usize) -> Self {
        InMemoryStore {
            map: BTreeMap::new(),
            raw_bytes: 0,
            heap_scale,
            heap_cap,
            reducer,
            peak_entries: 0,
            peak_bytes: 0,
        }
    }

    fn scaled(&self) -> u64 {
        (self.raw_bytes as f64 * self.heap_scale) as u64
    }

    fn track_peaks(&mut self) {
        self.peak_entries = self.peak_entries.max(self.map.len());
        self.peak_bytes = self.peak_bytes.max(self.scaled());
    }

    fn check_cap(&self) -> MrResult<()> {
        if let Some(cap) = self.heap_cap {
            let used = self.scaled();
            if used > cap {
                return Err(MrError::OutOfMemory {
                    reducer: self.reducer,
                    used_bytes: used,
                    cap_bytes: cap,
                });
            }
        }
        Ok(())
    }
}

impl<A: Application> PartialStore<A> for InMemoryStore<A> {
    fn absorb(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()> {
        let state = match self.map.get_mut(&key) {
            Some(state) => state,
            None => {
                let fresh = app.init(&key);
                self.raw_bytes +=
                    (key.estimated_bytes() + fresh.estimated_bytes() + ENTRY_OVERHEAD) as u64;
                self.map.entry(key.clone()).or_insert(fresh)
            }
        };
        let before = state.estimated_bytes() as u64;
        app.absorb(&key, state, value, shared, out);
        let after = state.estimated_bytes() as u64;
        // States can shrink (e.g. a selection evicting values), so the
        // delta is applied saturating rather than assumed non-negative.
        self.raw_bytes = (self.raw_bytes + after).saturating_sub(before);
        self.track_peaks();
        self.check_cap()
    }

    fn finalize_into(
        self: Box<Self>,
        app: &A,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<StoreReport> {
        let this = *self;
        let report = StoreReport {
            entries: this.map.len(),
            peak_entries: this.peak_entries,
            peak_bytes: this.peak_bytes,
            ..StoreReport::default()
        };
        for (key, state) in this.map {
            app.finalize(key, state, shared, out);
        }
        Ok(report)
    }

    fn modelled_bytes(&self) -> u64 {
        self.scaled()
    }

    fn entries(&self) -> usize {
        self.map.len()
    }
}
