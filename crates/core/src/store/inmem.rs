//! In-memory partial-result store — the paper's Java `TreeMap` (§3.2),
//! with the index strategy now a knob ([`StoreIndex`]).

use super::index::{apply_byte_delta, PartialMap};
use super::{PartialStore, StoreReport};
use crate::config::StoreIndex;
use crate::error::{MrError, MrResult};
use crate::size::SizeEstimate;
use crate::traits::{Application, Emit};

/// Partial results in memory, with byte accounting and an optional hard
/// heap cap.
///
/// The index is either the paper's ordered map or an FxHash map with the
/// key sort deferred to [`finalize_into`](PartialStore::finalize_into) —
/// output is byte-identical either way, the absorb hot path is not (the
/// hashed probe skips the O(log n) comparison walk, and neither path
/// clones the key: it is moved into the map on a miss).
///
/// The accounting models what the paper measured on the JVM: key bytes +
/// state bytes + a per-node overhead, scaled by `heap_scale` so that
/// scaled-down simulated workloads report full-size heap numbers.
pub struct InMemoryStore<A: Application> {
    map: PartialMap<A::MapKey, A::State>,
    /// Unscaled live bytes (keys + states + node overhead).
    raw_bytes: u64,
    heap_scale: f64,
    heap_cap: Option<u64>,
    reducer: usize,
    peak_entries: usize,
    peak_bytes: u64,
}

impl<A: Application> InMemoryStore<A> {
    /// An empty store for reduce partition `reducer`.
    pub fn new(index: StoreIndex, heap_cap: Option<u64>, heap_scale: f64, reducer: usize) -> Self {
        InMemoryStore {
            map: PartialMap::new(index),
            raw_bytes: 0,
            heap_scale,
            heap_cap,
            reducer,
            peak_entries: 0,
            peak_bytes: 0,
        }
    }

    fn scaled(&self) -> u64 {
        (self.raw_bytes as f64 * self.heap_scale) as u64
    }

    fn track_peaks(&mut self) {
        self.peak_entries = self.peak_entries.max(self.map.len());
        self.peak_bytes = self.peak_bytes.max(self.scaled());
    }

    fn check_cap(&self) -> MrResult<()> {
        if let Some(cap) = self.heap_cap {
            let used = self.scaled();
            if used > cap {
                return Err(MrError::OutOfMemory {
                    reducer: self.reducer,
                    used_bytes: used,
                    cap_bytes: cap,
                });
            }
        }
        Ok(())
    }
}

impl<A: Application> PartialStore<A> for InMemoryStore<A> {
    fn absorb(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()> {
        let delta = self.map.upsert_with(
            key,
            |k| app.init(k),
            |k, state| app.absorb(k, state, value, shared, out),
        );
        self.raw_bytes = apply_byte_delta(self.raw_bytes, delta);
        self.track_peaks();
        self.check_cap()
    }

    fn finalize_into(
        self: Box<Self>,
        app: &A,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<StoreReport> {
        let this = *self;
        let report = StoreReport {
            entries: this.map.len(),
            peak_entries: this.peak_entries,
            peak_bytes: this.peak_bytes,
            ..StoreReport::default()
        };
        // The amortized sort: one key ordering for the whole task instead
        // of one tree rebalance per absorb.
        for (key, state) in this.map.into_sorted_iter() {
            app.finalize(key, state, shared, out);
        }
        Ok(report)
    }

    fn snapshot_into(
        &mut self,
        app: &A,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<u64> {
        let mut bytes = 0u64;
        for (key, state) in self.map.sorted_view() {
            bytes += (key.estimated_bytes() + state.estimated_bytes()) as u64;
            app.snapshot_emit(key, state, out);
        }
        Ok(bytes)
    }

    fn modelled_bytes(&self) -> u64 {
        self.scaled()
    }

    fn entries(&self) -> usize {
        self.map.len()
    }
}
