//! Partial-result stores for the barrier-less engine (§5 of the paper).
//!
//! Every record a barrier-less reducer receives updates a *partial result*
//! for its key. Where those partial results live is the paper's memory-
//! management question, with three answers:
//!
//! | Policy | Paper section | Type |
//! |---|---|---|
//! | In-memory ordered map (TreeMap) | §3.2 | [`InMemoryStore`] |
//! | Disk spill and merge | §5.1 | [`SpillMergeStore`] |
//! | Disk-spilling key/value store (BerkeleyDB) | §5.2 | [`KvBackedStore`] |

pub mod index;
mod inmem;
mod kv;
mod spill;

pub use index::PartialMap;
pub use inmem::InMemoryStore;
pub use kv::KvBackedStore;
pub use spill::SpillMergeStore;

use crate::config::{JobConfig, MemoryPolicy};
use crate::error::MrResult;
use crate::traits::{Application, Emit};

/// Statistics a store reports after finishing.
#[derive(Debug, Clone, Default)]
pub struct StoreReport {
    /// Live entries at the end (before finalize drained them).
    pub entries: usize,
    /// Largest number of simultaneously live in-memory entries.
    pub peak_entries: usize,
    /// Largest modelled heap footprint reached, in bytes.
    pub peak_bytes: u64,
    /// Spill run files written (spill-and-merge only).
    pub spill_files: u64,
    /// Bytes written to spill runs.
    pub spill_bytes: u64,
    /// Partial results combined by `Application::merge` during the merge
    /// phase (spill-and-merge only).
    pub merged_states: u64,
    /// KV-store statistics (KV policy only).
    pub kv_stats: Option<mr_kvstore::StoreStats>,
}

/// Storage for per-key partial results during a barrier-less reduce task.
///
/// The engine calls [`absorb`](PartialStore::absorb) once per record, in
/// arrival order, then [`finalize_into`](PartialStore::finalize_into) once
/// the shuffle is drained.
pub trait PartialStore<A: Application>: Send {
    /// Folds one record into its key's partial result.
    fn absorb(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()>;

    /// Drains the store: merges any spilled runs and calls
    /// `Application::finalize` for every key, in key order.
    fn finalize_into(
        self: Box<Self>,
        app: &A,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<StoreReport>;

    /// Walks a *frozen view* of every live partial result in key order,
    /// emitting each key's estimated output through
    /// [`Application::snapshot_emit`].
    /// Returns the estimated partial-state bytes covered (keys + states).
    ///
    /// Observation only: the store's contents, byte accounting and spill
    /// cadence are unchanged afterwards (the spill store re-reads its
    /// run files from disk and merges them with the live map, so a
    /// snapshot is complete even mid-spill; the KV store scans its
    /// segments). `&mut self` is needed for scan plumbing, never for
    /// mutation of logical contents.
    fn snapshot_into(
        &mut self,
        app: &A,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<u64>;

    /// Current modelled heap footprint in bytes (drives Figure 5 sampling).
    fn modelled_bytes(&self) -> u64;

    /// Live in-memory entries right now.
    fn entries(&self) -> usize;

    /// Cumulative bytes of disk traffic this store has generated so far
    /// (spill runs written, KV log writes + miss reads). The cluster
    /// simulator polls this to charge disk time as it happens.
    fn io_bytes(&self) -> u64 {
        0
    }
}

/// Builds the store that `cfg.engine`'s memory policy asks for.
pub fn make_store<A: Application>(
    policy: &MemoryPolicy,
    cfg: &JobConfig,
    reducer: usize,
) -> MrResult<Box<dyn PartialStore<A>>> {
    Ok(match policy {
        MemoryPolicy::InMemory => Box::new(InMemoryStore::new(
            cfg.store_index,
            cfg.heap_cap_bytes,
            cfg.heap_scale,
            reducer,
        )),
        MemoryPolicy::SpillMerge { threshold_bytes } => Box::new(SpillMergeStore::new(
            &cfg.scratch_dir,
            cfg.store_index,
            *threshold_bytes,
            cfg.heap_scale,
            reducer,
        )?),
        MemoryPolicy::KvStore { cache_bytes } => Box::new(KvBackedStore::new(
            &cfg.scratch_dir,
            *cache_bytes,
            cfg.heap_scale,
            reducer,
        )?),
    })
}
