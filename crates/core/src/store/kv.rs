//! KV-store-backed partial results (§5.2 of the paper).
//!
//! Every absorb is a read-modify-update cycle against the disk-spilling
//! key/value store from `mr-kvstore`: fetch the previous partial result,
//! fold in the record, store it back. The store's byte-budgeted cache
//! bounds memory; cold keys cost a disk read — which is precisely why this
//! policy loses to spill-and-merge on high-key-cardinality workloads in
//! Figures 9/10.

use super::{PartialStore, StoreReport};
use crate::codec::Codec;
use crate::error::MrResult;
use crate::size::SizeEstimate;
use crate::traits::{Application, Emit};
use mr_kvstore::{Store, StoreConfig};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

static KV_SERIAL: AtomicU64 = AtomicU64::new(0);

/// Partial results held in a disk-spilling KV store.
pub struct KvBackedStore<A: Application> {
    kv: Store,
    heap_scale: f64,
    /// Encode scratch reused across absorbs (key, then state) — the
    /// read-modify-update cycle costs no allocations beyond what the
    /// store itself does.
    key_buf: Vec<u8>,
    state_buf: Vec<u8>,
    peak_entries: usize,
    peak_bytes: u64,
    _marker: std::marker::PhantomData<fn() -> A>,
}

impl<A: Application> KvBackedStore<A> {
    /// Opens a fresh store under `scratch_dir` with `cache_bytes` of
    /// record cache.
    pub fn new(
        scratch_dir: &Path,
        cache_bytes: usize,
        heap_scale: f64,
        reducer: usize,
    ) -> MrResult<Self> {
        let serial = KV_SERIAL.fetch_add(1, Ordering::Relaxed);
        let dir = scratch_dir.join(format!("kv-{}-r{reducer}-{serial}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let kv = Store::open(StoreConfig::new(&dir).cache_bytes(cache_bytes))?;
        Ok(KvBackedStore {
            kv,
            heap_scale,
            key_buf: Vec::new(),
            state_buf: Vec::new(),
            peak_entries: 0,
            peak_bytes: 0,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<A: Application> PartialStore<A> for KvBackedStore<A> {
    fn absorb(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()> {
        self.key_buf.clear();
        key.encode(&mut self.key_buf);
        // Read-modify-update, exactly the cycle described in §5.2.
        let mut state = match self.kv.get(&self.key_buf)? {
            Some(bytes) => A::State::from_bytes(&bytes)?,
            None => app.init(&key),
        };
        app.absorb(&key, &mut state, value, shared, out);
        self.state_buf.clear();
        state.encode(&mut self.state_buf);
        self.kv.put(&self.key_buf, &self.state_buf)?;
        self.peak_entries = self.peak_entries.max(self.kv.len());
        self.peak_bytes = self
            .peak_bytes
            .max((self.kv.cache_used_bytes() as f64 * self.heap_scale) as u64);
        Ok(())
    }

    fn finalize_into(
        self: Box<Self>,
        app: &A,
        shared: &mut A::Shared,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<StoreReport> {
        let mut this = *self;
        let entries = this.kv.len();
        // Cursor over everything; encoded-byte order is not key order, so
        // decode first and sort by the real key for deterministic output.
        let mut all: Vec<(A::MapKey, A::State)> = Vec::with_capacity(entries);
        for (key_bytes, state_bytes) in this.kv.scan_sorted()? {
            all.push((
                A::MapKey::from_bytes(&key_bytes)?,
                A::State::from_bytes(&state_bytes)?,
            ));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, state) in all {
            app.finalize(key, state, shared, out);
        }
        let report = StoreReport {
            entries,
            peak_entries: this.peak_entries,
            peak_bytes: this.peak_bytes,
            kv_stats: Some(this.kv.stats()),
            ..StoreReport::default()
        };
        let dir = this.kv.dir().to_path_buf();
        drop(this.kv);
        std::fs::remove_dir_all(&dir).ok();
        Ok(report)
    }

    fn snapshot_into(
        &mut self,
        app: &A,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<u64> {
        // Scan everything (encoded-byte order), decode, sort by the real
        // key — the same canonicalization (and the same transient
        // whole-store materialization) finalize performs, but leaving
        // every record in place. Scan reads count as store I/O and show
        // up in `io_bytes`, which is honest: a snapshot of a disk-backed
        // store costs disk. Note the transient Vec is real host memory
        // outside the modelled budget, exactly like finalize's — a
        // store too big to materialize once cannot finalize either.
        let mut all: Vec<(A::MapKey, A::State)> = Vec::with_capacity(self.kv.len());
        for (key_bytes, state_bytes) in self.kv.scan_sorted()? {
            all.push((
                A::MapKey::from_bytes(&key_bytes)?,
                A::State::from_bytes(&state_bytes)?,
            ));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        let mut bytes = 0u64;
        for (key, state) in &all {
            bytes += (key.estimated_bytes() + state.estimated_bytes()) as u64;
            app.snapshot_emit(key, state, out);
        }
        Ok(bytes)
    }

    fn modelled_bytes(&self) -> u64 {
        (self.kv.cache_used_bytes() as f64 * self.heap_scale) as u64
    }

    fn entries(&self) -> usize {
        self.kv.len()
    }

    fn io_bytes(&self) -> u64 {
        let st = self.kv.stats();
        st.bytes_written + st.bytes_read
    }
}
