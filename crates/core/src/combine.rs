//! Map-side combining: pre-aggregating map output before the shuffle.
//!
//! Shuffle volume dominates the barrier-less pipeline's cost — every
//! record crosses the network the moment it is produced. The classic
//! lever is Hadoop's combiner, and this codebase gets one *for free*: the
//! incremental form (`init`/`absorb`/`merge`) already is a per-key
//! aggregator, so the map side can run the same fold over its own output
//! and ship the partial results instead of the raw records.
//!
//! [`CombinerBuffer`] holds per-key partials under a byte budget
//! (measured with the same [`SizeEstimate`](crate::size::SizeEstimate)
//! accounting the reduce-side
//! stores use), indexed per [`StoreIndex`] — the paper's ordered map, or
//! a hashed map whose keys are sorted once per drain. Either way the
//! buffer drains in key order, converting each partial back into shuffle
//! records via [`Application::combiner_emit`], so re-run map tasks
//! reproduce byte-identical shuffle output. Both executors use it: the
//! local runner inside its map workers, the cluster simulator inside
//! `map_write`.

use crate::config::StoreIndex;
use crate::store::index::{apply_byte_delta, PartialMap};
use crate::traits::{Application, Emit, FnEmit};

/// An [`Emit`] that rejects output: map-side combining runs `absorb`
/// outside any reduce task, so a combinable application emitting from
/// `absorb` is a contract violation, caught loudly here.
struct NoOutput;

impl<K, V> Emit<K, V> for NoOutput {
    fn emit(&mut self, _key: K, _value: V) {
        panic!(
            "combiner contract violated: absorb() emitted job output during \
             map-side combining; combine_enabled() applications must only \
             aggregate into their per-key state"
        );
    }
}

/// Byte-budgeted map-side pre-aggregator for one shuffle partition.
///
/// Records pushed in are folded into per-key partial results with the
/// application's `init`/`absorb`; [`drain`](CombinerBuffer::drain)
/// converts the partials back into `(MapKey, MapValue)` shuffle records
/// in key order (deterministic, so re-run map tasks reproduce identical
/// output). [`push`](CombinerBuffer::push) drains automatically when the
/// modelled footprint exceeds the budget, bounding map-side memory the
/// same way the paper bounds reduce-side partial results.
pub struct CombinerBuffer<A: Application> {
    entries: PartialMap<A::MapKey, A::State>,
    bytes: usize,
    budget_bytes: usize,
    /// Scratch shared state for `absorb` calls; combinable applications
    /// must not use it (see [`Application::combine_enabled`]), it exists
    /// only to satisfy the signature.
    shared: A::Shared,
    records_in: u64,
    records_out: u64,
}

impl<A: Application> CombinerBuffer<A> {
    /// An empty buffer that drains whenever its modelled footprint
    /// exceeds `budget_bytes`, with its partials indexed per `index`.
    pub fn new(app: &A, budget_bytes: usize, index: StoreIndex) -> Self {
        debug_assert!(
            app.uses_keyed_state(),
            "combining requires per-key state (uses_keyed_state)"
        );
        CombinerBuffer {
            entries: PartialMap::new(index),
            bytes: 0,
            budget_bytes,
            shared: app.new_shared(),
            records_in: 0,
            records_out: 0,
        }
    }

    /// Folds one map-output record into its key's partial result. When
    /// the buffer exceeds its budget, every partial is drained through
    /// `emit` as combined shuffle records.
    pub fn push<F: FnMut(A::MapKey, A::MapValue)>(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        emit: &mut F,
    ) {
        self.records_in += 1;
        let shared = &mut self.shared;
        let delta = self.entries.upsert_with(
            key,
            |k| app.init(k),
            |k, state| app.absorb(k, state, value, shared, &mut NoOutput),
        );
        self.bytes = apply_byte_delta(self.bytes as u64, delta) as usize;
        if self.bytes > self.budget_bytes {
            self.drain(app, emit);
        }
    }

    /// Drains every buffered partial result through `emit`, in key order
    /// (the hashed index pays its one amortized sort here). Also used for
    /// the end-of-task flush.
    pub fn drain<F: FnMut(A::MapKey, A::MapValue)>(&mut self, app: &A, emit: &mut F) {
        let entries = self.entries.drain_sorted();
        self.bytes = 0;
        let mut out = 0u64;
        {
            let mut sink = FnEmit(|k: A::MapKey, v: A::MapValue| {
                out += 1;
                emit(k, v);
            });
            for (key, state) in entries {
                app.combiner_emit(&key, state, &mut sink);
            }
        }
        self.records_out += out;
    }

    /// Buffered partials right now.
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Modelled heap footprint of the buffered partials.
    pub fn modelled_bytes(&self) -> usize {
        self.bytes
    }

    /// Raw map-output records pushed in so far.
    pub fn records_in(&self) -> u64 {
        self.records_in
    }

    /// Combined records emitted into the shuffle so far (drained only).
    pub fn records_out(&self) -> u64 {
        self.records_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WordCountApp;

    fn collect(buf: &mut CombinerBuffer<WordCountApp>) -> Vec<(String, u64)> {
        let mut got = Vec::new();
        buf.drain(&WordCountApp, &mut |k, v| got.push((k, v)));
        got
    }

    #[test]
    fn combines_duplicate_keys_into_one_record() {
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            let mut buf = CombinerBuffer::new(&WordCountApp, 1 << 20, index);
            let mut spilled = Vec::new();
            for _ in 0..10 {
                buf.push(&WordCountApp, "a".to_string(), 1, &mut |k, v| {
                    spilled.push((k, v))
                });
            }
            buf.push(&WordCountApp, "b".to_string(), 1, &mut |k, v| {
                spilled.push((k, v))
            });
            assert!(spilled.is_empty(), "under budget: nothing drains early");
            assert_eq!(buf.entries(), 2);
            assert_eq!(buf.records_in(), 11);
            let got = collect(&mut buf);
            assert_eq!(got, vec![("a".to_string(), 10), ("b".to_string(), 1)]);
            assert_eq!(buf.records_out(), 2);
            assert_eq!(buf.entries(), 0);
            assert_eq!(buf.modelled_bytes(), 0);
        }
    }

    #[test]
    fn tiny_budget_forces_early_drains_without_losing_counts() {
        // A budget below one entry's footprint drains on every push; the
        // shuffle then carries multiple partials per key, which the
        // reduce side's merge/absorb re-combines. Totals must survive.
        let mut buf = CombinerBuffer::new(&WordCountApp, 1, StoreIndex::Hashed);
        let mut spilled: Vec<(String, u64)> = Vec::new();
        for i in 0..20u64 {
            let word = if i % 2 == 0 { "x" } else { "y" };
            buf.push(&WordCountApp, word.to_string(), 1, &mut |k, v| {
                spilled.push((k, v))
            });
        }
        let rest = collect(&mut buf);
        let total: u64 = spilled.iter().chain(rest.iter()).map(|(_, v)| v).sum();
        assert_eq!(total, 20);
        assert!(
            buf.records_out() >= 2,
            "early drains should have emitted partials"
        );
    }

    #[test]
    fn drain_emits_in_key_order_under_both_indexes() {
        for index in [StoreIndex::Ordered, StoreIndex::Hashed] {
            let mut buf = CombinerBuffer::new(&WordCountApp, 1 << 20, index);
            for word in ["c", "a", "b"] {
                buf.push(&WordCountApp, word.to_string(), 1, &mut |_, _| {});
            }
            let keys: Vec<String> = collect(&mut buf).into_iter().map(|(k, _)| k).collect();
            assert_eq!(keys, vec!["a", "b", "c"], "index {index:?}");
        }
    }

    #[test]
    fn byte_accounting_grows_and_resets() {
        let mut buf = CombinerBuffer::new(&WordCountApp, usize::MAX, StoreIndex::Hashed);
        assert_eq!(buf.modelled_bytes(), 0);
        let mut last = 0;
        for i in 0..50u64 {
            buf.push(&WordCountApp, format!("key-{i}"), 1, &mut |_, _| {});
            assert!(buf.modelled_bytes() > last);
            last = buf.modelled_bytes();
        }
        collect(&mut buf);
        assert_eq!(buf.modelled_bytes(), 0);
    }
}
