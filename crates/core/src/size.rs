//! Heap-size estimation for partial results.
//!
//! The barrier-less engine must know how much memory the partial-result
//! store is holding — it is what triggers spills (§5.1) and what Figure 5
//! plots. Estimates model the JVM-style cost the paper measured: per-object
//! headers and container entry overheads, not just payload bytes.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-container-entry bookkeeping charge (tree node / bucket entry).
pub const ENTRY_OVERHEAD: usize = 48;

/// Best-effort estimate of the heap bytes a value occupies.
pub trait SizeEstimate {
    /// Estimated resident bytes, including owned allocations.
    fn estimated_bytes(&self) -> usize;
}

macro_rules! fixed_size {
    ($($t:ty),*) => {$(
        impl SizeEstimate for $t {
            fn estimated_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

fixed_size!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl SizeEstimate for () {
    fn estimated_bytes(&self) -> usize {
        0
    }
}

impl SizeEstimate for String {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<String>() + self.capacity()
    }
}

impl<T: SizeEstimate> SizeEstimate for Vec<T> {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Vec<T>>() + self.iter().map(T::estimated_bytes).sum::<usize>()
    }
}

impl<T: SizeEstimate> SizeEstimate for Option<T> {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Option<T>>() + self.as_ref().map_or(0, |v| v.estimated_bytes())
    }
}

impl<T: SizeEstimate> SizeEstimate for Box<T> {
    fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<usize>() + (**self).estimated_bytes()
    }
}

impl<K: SizeEstimate, V: SizeEstimate> SizeEstimate for BTreeMap<K, V> {
    fn estimated_bytes(&self) -> usize {
        self.iter()
            .map(|(k, v)| k.estimated_bytes() + v.estimated_bytes() + ENTRY_OVERHEAD)
            .sum()
    }
}

impl<K: SizeEstimate, V: SizeEstimate> SizeEstimate for HashMap<K, V> {
    fn estimated_bytes(&self) -> usize {
        self.iter()
            .map(|(k, v)| k.estimated_bytes() + v.estimated_bytes() + ENTRY_OVERHEAD)
            .sum()
    }
}

impl<T: SizeEstimate> SizeEstimate for HashSet<T> {
    fn estimated_bytes(&self) -> usize {
        self.iter()
            .map(|v| v.estimated_bytes() + ENTRY_OVERHEAD)
            .sum()
    }
}

macro_rules! tuple_size {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: SizeEstimate),+> SizeEstimate for ($($name,)+) {
            fn estimated_bytes(&self) -> usize {
                0 $(+ self.$idx.estimated_bytes())+
            }
        }
    )*};
}

tuple_size! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_their_size() {
        assert_eq!(5u64.estimated_bytes(), 8);
        assert_eq!(1u8.estimated_bytes(), 1);
        assert_eq!(2.5f64.estimated_bytes(), 8);
        assert_eq!(().estimated_bytes(), 0);
    }

    #[test]
    fn string_includes_capacity() {
        let s = String::with_capacity(100);
        assert!(s.estimated_bytes() >= 100);
        let t = "abc".to_string();
        assert!(t.estimated_bytes() >= 3 + std::mem::size_of::<String>());
    }

    #[test]
    fn containers_charge_per_entry_overhead() {
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        assert_eq!(m.estimated_bytes(), 0);
        for i in 0..10 {
            m.insert(i, i);
        }
        assert_eq!(m.estimated_bytes(), 10 * (8 + 8 + ENTRY_OVERHEAD));

        let mut s: HashSet<u32> = HashSet::new();
        s.insert(1);
        s.insert(2);
        assert_eq!(s.estimated_bytes(), 2 * (4 + ENTRY_OVERHEAD));
    }

    #[test]
    fn nesting_compounds() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2], vec![3]];
        let inner = std::mem::size_of::<Vec<u64>>();
        assert_eq!(
            v.estimated_bytes(),
            std::mem::size_of::<Vec<Vec<u64>>>() + (inner + 16) + (inner + 8)
        );
        let t = (1u64, "ab".to_string());
        assert!(t.estimated_bytes() > 8);
    }

    #[test]
    fn growth_is_monotone_in_content() {
        let mut set: HashSet<u64> = HashSet::new();
        let mut last = set.estimated_bytes();
        for i in 0..100 {
            set.insert(i);
            let now = set.estimated_bytes();
            assert!(now > last);
            last = now;
        }
    }
}
