//! Job results returned by executors.

use crate::counters::Counters;
use crate::engine::DriverReport;
use crate::traits::Application;

/// Everything a finished job hands back: per-partition output plus
/// counters and per-reducer store reports.
pub struct JobOutput<A: Application> {
    /// Output records per reduce partition, in the order each reducer
    /// emitted them.
    pub partitions: Vec<Vec<(A::OutKey, A::OutValue)>>,
    /// Merged counters from every task.
    pub counters: Counters,
    /// One report per reduce partition (empty under the barrier engine,
    /// which has no partial-result store).
    pub reports: Vec<DriverReport>,
}

impl<A: Application> JobOutput<A> {
    /// Total output records across partitions.
    pub fn record_count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Flattens all partitions and sorts by output key (stable), giving a
    /// canonical view for comparing engines against each other.
    pub fn into_sorted_output(self) -> Vec<(A::OutKey, A::OutValue)> {
        let mut all: Vec<(A::OutKey, A::OutValue)> =
            self.partitions.into_iter().flatten().collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Largest modelled heap footprint any reducer reached.
    pub fn max_peak_bytes(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.store.peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Sum of peak partial-result entries across reducers — the empirical
    /// "size of partial results" column of Table 1.
    pub fn total_peak_entries(&self) -> usize {
        self.reports.iter().map(|r| r.store.peak_entries).sum()
    }
}
