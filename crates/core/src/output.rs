//! Job results returned by executors.

use crate::counters::Counters;
use crate::engine::DriverReport;
use crate::snapshot::Snapshot;
use crate::traits::Application;
use mr_trace::TraceLog;

/// Everything a finished job hands back: per-partition output plus
/// counters, per-reducer store reports, and any published snapshots.
pub struct JobOutput<A: Application> {
    /// Output records per reduce partition, in the order each reducer
    /// emitted them.
    pub partitions: Vec<Vec<(A::OutKey, A::OutValue)>>,
    /// Merged counters from every task.
    pub counters: Counters,
    /// One report per reduce partition (empty under the barrier engine,
    /// which has no partial-result store).
    pub reports: Vec<DriverReport>,
    /// Per reduce partition, every snapshot published during the run, in
    /// publication order (empty unless a
    /// [`SnapshotPolicy`](crate::SnapshotPolicy) was enabled). Under the
    /// barrier engine the only possible snapshot is the finished output,
    /// so at most one appears per partition — which is the paper's
    /// point: a barrier job has nothing observable before the barrier.
    pub snapshots: Vec<Vec<Snapshot<A>>>,
    /// The run's structured trace, when the effective
    /// [`TracePolicy`](crate::TracePolicy) enables it (empty otherwise).
    /// Populated by [`LocalRunner`](crate::local::LocalRunner); the
    /// simulated executors surface their trace on the sim report instead
    /// and leave this empty. Query with [`TraceQuery`](crate::TraceQuery).
    pub trace: TraceLog,
}

impl<A: Application> JobOutput<A> {
    /// Total output records across partitions.
    pub fn record_count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Flattens all partitions and sorts by output key (stable), giving a
    /// canonical view for comparing engines against each other.
    pub fn into_sorted_output(self) -> Vec<(A::OutKey, A::OutValue)> {
        let mut all: Vec<(A::OutKey, A::OutValue)> =
            self.partitions.into_iter().flatten().collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Largest modelled heap footprint any reducer reached.
    pub fn max_peak_bytes(&self) -> u64 {
        self.reports
            .iter()
            .map(|r| r.store.peak_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Sum of peak partial-result entries across reducers — the empirical
    /// "size of partial results" column of Table 1.
    pub fn total_peak_entries(&self) -> usize {
        self.reports.iter().map(|r| r.store.peak_entries).sum()
    }

    /// Total snapshots published across all reduce partitions.
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.iter().map(Vec::len).sum()
    }

    /// All snapshots across partitions, ordered by `at_secs` then
    /// reducer — the raw series an early-answer observer would have seen.
    pub fn snapshots_by_time(&self) -> Vec<&Snapshot<A>> {
        let mut all: Vec<&Snapshot<A>> = self.snapshots.iter().flatten().collect();
        all.sort_by(|a, b| {
            a.at_secs
                .total_cmp(&b.at_secs)
                .then(a.reducer.cmp(&b.reducer))
                .then(a.seq.cmp(&b.seq))
        });
        all
    }
}
