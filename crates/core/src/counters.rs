//! Named job counters, Hadoop-style.

use mr_trace::{Label, TraceLog, TraceQuery};
use std::collections::BTreeMap;
use std::fmt;

/// A typed counter name: every well-known counter the engines maintain,
/// as an enum instead of a loose `&'static str`. A typo'd name is now a
/// compile error rather than a silently separate counter, while
/// [`as_str`](CounterName::as_str) keeps the wire/report strings
/// byte-identical to what the string constants always were.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum CounterName {
    /// Records produced by map functions.
    MapOutputRecords,
    /// Records consumed by the reduce side.
    ReduceInputRecords,
    /// Raw map-output records fed into map-side combiners.
    CombineInputRecords,
    /// Combined records the combiners emitted into the shuffle.
    CombineOutputRecords,
    /// Record batches handed to the shuffle transport (local executor).
    ShuffleBatches,
    /// Shuffle batches that ran past the transport channel's depth and
    /// so were built on a recycled buffer rather than a fresh
    /// allocation. Modelled deterministically from batch counts (per
    /// channel, `batches.saturating_sub(depth)`), not sampled from
    /// free-list timing, so the value is schedule-independent.
    ShuffleBatchReuse,
    /// Records that actually crossed the shuffle (post-combine).
    ShuffleRecords,
    /// Records written to job output.
    ReduceOutputRecords,
    /// Distinct key groups reduced (barrier engine).
    ReduceGroups,
    /// Spill files written by the spill-and-merge store.
    SpillFiles,
    /// Bytes written to spill files.
    SpillBytes,
    /// Partial results merged during the merge phase.
    SpillMergedStates,
    /// KV-store cache hits during absorb.
    KvCacheHits,
    /// KV-store cache misses during absorb.
    KvCacheMisses,
    /// Partial-result snapshots published by reduce tasks. Like
    /// Hadoop's counters, this reflects *surviving* task attempts: in
    /// the cluster simulator a reducer killed by a node failure keeps
    /// its published snapshots in `JobOutput::snapshots` (the stream an
    /// observer saw), so after fault recovery that stream can exceed
    /// this counter.
    SnapshotCount,
    /// Estimated output records emitted across all snapshots.
    SnapshotRecords,
    /// Estimated partial-state bytes (keys + states) covered by
    /// snapshots (zero under the barrier engine, which has no partial
    /// state to cover).
    SnapshotBytes,
    /// Records handed from one chained job's reduce side to the next
    /// job's map intake (both handoff modes).
    ChainHandoffRecords,
    /// Record batches handed across a chain stage boundary (streaming
    /// handoff; the barrier handoff moves one materialized batch per
    /// upstream partition).
    ChainHandoffBatches,
    /// Modelled bytes handed across chain stage boundaries, as estimated
    /// by `ChainableApplication::handoff_bytes`.
    ChainHandoffBytes,
    /// Speculative backup attempts launched for straggling tasks
    /// (cluster simulator only).
    SpeculationLaunched,
    /// Speculative backup attempts that finished before the original
    /// attempt and supplied the task's output.
    SpeculationWon,
    /// Attempts (original or backup) cancelled because the other attempt
    /// of the same task won the race.
    SpeculationCancelled,
    /// Result-cache lookups that found a resident artifact.
    CacheHits,
    /// Payload bytes handed out by result-cache hits.
    CacheHitBytes,
    /// Result-cache lookups that found nothing (the artifact was then
    /// computed and, budget permitting, inserted).
    CacheMisses,
    /// Payload bytes that had to be recomputed on result-cache misses
    /// (counted at insert time, when the artifact's size is known).
    CacheMissBytes,
    /// Artifacts admitted into the result cache.
    CacheInserts,
    /// Payload bytes admitted into the result cache.
    CacheInsertBytes,
    /// Artifacts evicted from the result cache to stay under budget.
    CacheEvictions,
    /// Payload bytes evicted from the result cache.
    CacheEvictBytes,
    /// Artifacts refused because one entry exceeded the whole cache
    /// budget (the typed `Oversize` rejection).
    CacheOversize,
    /// Cache-enabled jobs that ran uncached because the application
    /// could not vouch for a complete instance identity
    /// (`Application::cache_identity` returned `false`).
    CacheBypass,
}

impl CounterName {
    /// The counter's report string — byte-identical to the historical
    /// `&'static str` constants, so serialized output never changes.
    pub const fn as_str(self) -> &'static str {
        match self {
            CounterName::MapOutputRecords => "map.output.records",
            CounterName::ReduceInputRecords => "reduce.input.records",
            CounterName::CombineInputRecords => "combine.input.records",
            CounterName::CombineOutputRecords => "combine.output.records",
            CounterName::ShuffleBatches => "shuffle.batches",
            CounterName::ShuffleBatchReuse => "shuffle.batch_reuse",
            CounterName::ShuffleRecords => "shuffle.records",
            CounterName::ReduceOutputRecords => "reduce.output.records",
            CounterName::ReduceGroups => "reduce.groups",
            CounterName::SpillFiles => "spill.files",
            CounterName::SpillBytes => "spill.bytes",
            CounterName::SpillMergedStates => "spill.merged.states",
            CounterName::KvCacheHits => "kv.cache.hits",
            CounterName::KvCacheMisses => "kv.cache.misses",
            CounterName::SnapshotCount => "snapshot.count",
            CounterName::SnapshotRecords => "snapshot.records",
            CounterName::SnapshotBytes => "snapshot.bytes",
            CounterName::ChainHandoffRecords => "chain.handoff.records",
            CounterName::ChainHandoffBatches => "chain.handoff.batches",
            CounterName::ChainHandoffBytes => "chain.handoff.bytes",
            CounterName::SpeculationLaunched => "speculation.launched",
            CounterName::SpeculationWon => "speculation.won",
            CounterName::SpeculationCancelled => "speculation.cancelled",
            CounterName::CacheHits => "cache.hit.count",
            CounterName::CacheHitBytes => "cache.hit.bytes",
            CounterName::CacheMisses => "cache.miss.count",
            CounterName::CacheMissBytes => "cache.miss.bytes",
            CounterName::CacheInserts => "cache.insert.count",
            CounterName::CacheInsertBytes => "cache.insert.bytes",
            CounterName::CacheEvictions => "cache.evict.count",
            CounterName::CacheEvictBytes => "cache.evict.bytes",
            CounterName::CacheOversize => "cache.oversize.count",
            CounterName::CacheBypass => "cache.bypass.count",
        }
    }
}

impl AsRef<str> for CounterName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Display for CounterName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<CounterName> for Label {
    fn from(n: CounterName) -> Label {
        Label::Static(n.as_str())
    }
}

/// Well-known counter names used by the engines.
///
/// These are the historical constants, now typed: each is a
/// [`CounterName`] variant rather than a bare string, so existing call
/// sites (`counters.add(names::MAP_OUTPUT_RECORDS, n)`) compile
/// unchanged while misspellings no longer type-check.
pub mod names {
    use super::CounterName;

    /// Records produced by map functions.
    pub const MAP_OUTPUT_RECORDS: CounterName = CounterName::MapOutputRecords;
    /// Records consumed by the reduce side.
    pub const REDUCE_INPUT_RECORDS: CounterName = CounterName::ReduceInputRecords;
    /// Raw map-output records fed into map-side combiners.
    pub const COMBINE_INPUT_RECORDS: CounterName = CounterName::CombineInputRecords;
    /// Combined records the combiners emitted into the shuffle.
    pub const COMBINE_OUTPUT_RECORDS: CounterName = CounterName::CombineOutputRecords;
    /// Record batches handed to the shuffle transport (local executor).
    pub const SHUFFLE_BATCHES: CounterName = CounterName::ShuffleBatches;
    /// Shuffle batches past channel depth, modelled as buffer reuse.
    pub const SHUFFLE_BATCH_REUSE: CounterName = CounterName::ShuffleBatchReuse;
    /// Records that actually crossed the shuffle (post-combine).
    pub const SHUFFLE_RECORDS: CounterName = CounterName::ShuffleRecords;
    /// Records written to job output.
    pub const REDUCE_OUTPUT_RECORDS: CounterName = CounterName::ReduceOutputRecords;
    /// Distinct key groups reduced (barrier engine).
    pub const REDUCE_GROUPS: CounterName = CounterName::ReduceGroups;
    /// Spill files written by the spill-and-merge store.
    pub const SPILL_FILES: CounterName = CounterName::SpillFiles;
    /// Bytes written to spill files.
    pub const SPILL_BYTES: CounterName = CounterName::SpillBytes;
    /// Partial results merged during the merge phase.
    pub const SPILL_MERGED_STATES: CounterName = CounterName::SpillMergedStates;
    /// KV-store cache hits during absorb.
    pub const KV_CACHE_HITS: CounterName = CounterName::KvCacheHits;
    /// KV-store cache misses during absorb.
    pub const KV_CACHE_MISSES: CounterName = CounterName::KvCacheMisses;
    /// Partial-result snapshots published by reduce tasks.
    pub const SNAPSHOT_COUNT: CounterName = CounterName::SnapshotCount;
    /// Estimated output records emitted across all snapshots.
    pub const SNAPSHOT_RECORDS: CounterName = CounterName::SnapshotRecords;
    /// Estimated partial-state bytes covered by snapshots.
    pub const SNAPSHOT_BYTES: CounterName = CounterName::SnapshotBytes;
    /// Records handed from one chained job's reduce side to the next
    /// job's map intake (both handoff modes).
    pub const CHAIN_HANDOFF_RECORDS: CounterName = CounterName::ChainHandoffRecords;
    /// Record batches handed across a chain stage boundary.
    pub const CHAIN_HANDOFF_BATCHES: CounterName = CounterName::ChainHandoffBatches;
    /// Modelled bytes handed across chain stage boundaries.
    pub const CHAIN_HANDOFF_BYTES: CounterName = CounterName::ChainHandoffBytes;
    /// Speculative backup attempts launched for straggling tasks.
    pub const SPECULATION_LAUNCHED: CounterName = CounterName::SpeculationLaunched;
    /// Speculative backup attempts that won the race.
    pub const SPECULATION_WON: CounterName = CounterName::SpeculationWon;
    /// Attempts cancelled because the other attempt won.
    pub const SPECULATION_CANCELLED: CounterName = CounterName::SpeculationCancelled;
    /// Result-cache lookups that found a resident artifact.
    pub const CACHE_HITS: CounterName = CounterName::CacheHits;
    /// Payload bytes handed out by result-cache hits.
    pub const CACHE_HIT_BYTES: CounterName = CounterName::CacheHitBytes;
    /// Result-cache lookups that found nothing.
    pub const CACHE_MISSES: CounterName = CounterName::CacheMisses;
    /// Payload bytes recomputed on result-cache misses.
    pub const CACHE_MISS_BYTES: CounterName = CounterName::CacheMissBytes;
    /// Artifacts admitted into the result cache.
    pub const CACHE_INSERTS: CounterName = CounterName::CacheInserts;
    /// Payload bytes admitted into the result cache.
    pub const CACHE_INSERT_BYTES: CounterName = CounterName::CacheInsertBytes;
    /// Artifacts evicted from the result cache.
    pub const CACHE_EVICTIONS: CounterName = CounterName::CacheEvictions;
    /// Payload bytes evicted from the result cache.
    pub const CACHE_EVICT_BYTES: CounterName = CounterName::CacheEvictBytes;
    /// Oversize rejections (entry larger than the whole cache budget).
    pub const CACHE_OVERSIZE: CounterName = CounterName::CacheOversize;
    /// Cache-enabled jobs that bypassed the cache for lack of a
    /// complete application instance identity.
    pub const CACHE_BYPASS: CounterName = CounterName::CacheBypass;
}

/// A set of named monotonically increasing counters.
///
/// Engines create one per task and merge them into the job result, so no
/// locking is needed on the hot path. Keys are [`Label`]s: the typed
/// [`CounterName`]s cost nothing (static strings), and dynamic
/// runtime-built names are supported for ad-hoc instrumentation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<Label, u64>,
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to `name`.
    pub fn add(&mut self, name: impl Into<Label>, delta: u64) {
        *self.values.entry(name.into()).or_insert(0) += delta;
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: impl Into<Label>) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: impl AsRef<str>) -> u64 {
        self.values.get(name.as_ref()).copied().unwrap_or(0)
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in &other.values {
            *self.values.entry(name.clone()).or_insert(0) += v;
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Rebuilds job counters from a trace log — the legacy `Counters`
    /// view derived from the unified event stream: every
    /// `TraceEvent::Counter` delta summed by label across all scopes.
    pub fn from_trace(log: &TraceLog) -> Self {
        let mut c = Counters::new();
        for (label, v) in TraceQuery::new(log).counter_totals() {
            c.add(label, v);
        }
        c
    }

    /// Rebuilds one job's (chain stage's) counters from a trace log.
    pub fn from_trace_job(log: &TraceLog, job: u32) -> Self {
        let mut c = Counters::new();
        for (label, v) in TraceQuery::new(log).job_counter_totals(job) {
            c.add(label, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_trace::{Scope, TraceEvent};

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.incr(names::MAP_OUTPUT_RECORDS);
        c.add(names::MAP_OUTPUT_RECORDS, 9);
        assert_eq!(c.get(names::MAP_OUTPUT_RECORDS), 10);
        assert_eq!(c.get("never"), 0);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Counters::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        let items: Vec<_> = c.iter().collect();
        assert_eq!(items, vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn typed_names_keep_historical_strings() {
        // The report strings must never drift: external tooling parses
        // them (bench_json, figure outputs).
        assert_eq!(names::MAP_OUTPUT_RECORDS.as_str(), "map.output.records");
        assert_eq!(names::SHUFFLE_BATCH_REUSE.as_str(), "shuffle.batch_reuse");
        assert_eq!(names::SPILL_MERGED_STATES.as_str(), "spill.merged.states");
        assert_eq!(
            names::CHAIN_HANDOFF_RECORDS.as_str(),
            "chain.handoff.records"
        );
        assert_eq!(
            names::SPECULATION_CANCELLED.as_str(),
            "speculation.cancelled"
        );
        assert_eq!(names::CACHE_HITS.as_str(), "cache.hit.count");
        assert_eq!(names::CACHE_MISS_BYTES.as_str(), "cache.miss.bytes");
        assert_eq!(names::CACHE_EVICT_BYTES.as_str(), "cache.evict.bytes");
        assert_eq!(names::CACHE_OVERSIZE.as_str(), "cache.oversize.count");
        // Typed and string keys address the same counter.
        let mut c = Counters::new();
        c.add(names::REDUCE_GROUPS, 3);
        assert_eq!(c.get("reduce.groups"), 3);
    }

    #[test]
    fn dynamic_string_labels_work() {
        let mut c = Counters::new();
        let dynamic = format!("app.{}.emitted", "topk");
        c.add(dynamic.clone(), 5);
        c.add("app.topk.emitted", 2);
        assert_eq!(c.get(&dynamic), 7);
    }

    #[test]
    fn from_trace_sums_deltas_across_scopes() {
        let mut log = TraceLog::new();
        log.push(
            Scope::job(0),
            TraceEvent::Counter {
                label: names::MAP_OUTPUT_RECORDS.into(),
                delta: 10,
            },
        );
        log.push(
            Scope::job(1),
            TraceEvent::Counter {
                label: names::MAP_OUTPUT_RECORDS.into(),
                delta: 5,
            },
        );
        let all = Counters::from_trace(&log);
        assert_eq!(all.get(names::MAP_OUTPUT_RECORDS), 15);
        let j1 = Counters::from_trace_job(&log, 1);
        assert_eq!(j1.get(names::MAP_OUTPUT_RECORDS), 5);
    }
}
