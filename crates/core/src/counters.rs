//! Named job counters, Hadoop-style.

use std::collections::BTreeMap;

/// A set of named monotonically increasing counters.
///
/// Engines create one per task and merge them into the job result, so no
/// locking is needed on the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    values: BTreeMap<&'static str, u64>,
}

/// Well-known counter names used by the engines.
pub mod names {
    /// Records produced by map functions.
    pub const MAP_OUTPUT_RECORDS: &str = "map.output.records";
    /// Records consumed by the reduce side.
    pub const REDUCE_INPUT_RECORDS: &str = "reduce.input.records";
    /// Raw map-output records fed into map-side combiners.
    pub const COMBINE_INPUT_RECORDS: &str = "combine.input.records";
    /// Combined records the combiners emitted into the shuffle.
    pub const COMBINE_OUTPUT_RECORDS: &str = "combine.output.records";
    /// Record batches handed to the shuffle transport (local executor).
    pub const SHUFFLE_BATCHES: &str = "shuffle.batches";
    /// Shuffle batches built on a recycled buffer from the free-list
    /// (drained by a reducer, handed back to the mappers) instead of a
    /// fresh allocation.
    pub const SHUFFLE_BATCH_REUSE: &str = "shuffle.batch_reuse";
    /// Records that actually crossed the shuffle (post-combine).
    pub const SHUFFLE_RECORDS: &str = "shuffle.records";
    /// Records written to job output.
    pub const REDUCE_OUTPUT_RECORDS: &str = "reduce.output.records";
    /// Distinct key groups reduced (barrier engine).
    pub const REDUCE_GROUPS: &str = "reduce.groups";
    /// Spill files written by the spill-and-merge store.
    pub const SPILL_FILES: &str = "spill.files";
    /// Bytes written to spill files.
    pub const SPILL_BYTES: &str = "spill.bytes";
    /// Partial results merged during the merge phase.
    pub const SPILL_MERGED_STATES: &str = "spill.merged.states";
    /// KV-store cache hits during absorb.
    pub const KV_CACHE_HITS: &str = "kv.cache.hits";
    /// KV-store cache misses during absorb.
    pub const KV_CACHE_MISSES: &str = "kv.cache.misses";
    /// Partial-result snapshots published by reduce tasks. Like
    /// Hadoop's counters, this reflects *surviving* task attempts: in
    /// the cluster simulator a reducer killed by a node failure keeps
    /// its published snapshots in `JobOutput::snapshots` (the stream an
    /// observer saw), so after fault recovery that stream can exceed
    /// this counter.
    pub const SNAPSHOT_COUNT: &str = "snapshot.count";
    /// Estimated output records emitted across all snapshots.
    pub const SNAPSHOT_RECORDS: &str = "snapshot.records";
    /// Estimated partial-state bytes (keys + states) covered by
    /// snapshots (zero under the barrier engine, which has no partial
    /// state to cover).
    pub const SNAPSHOT_BYTES: &str = "snapshot.bytes";
    /// Records handed from one chained job's reduce side to the next
    /// job's map intake (both handoff modes).
    pub const CHAIN_HANDOFF_RECORDS: &str = "chain.handoff.records";
    /// Record batches handed across a chain stage boundary (streaming
    /// handoff; the barrier handoff moves one materialized batch per
    /// upstream partition).
    pub const CHAIN_HANDOFF_BATCHES: &str = "chain.handoff.batches";
    /// Modelled bytes handed across chain stage boundaries, as estimated
    /// by `ChainableApplication::handoff_bytes`.
    pub const CHAIN_HANDOFF_BYTES: &str = "chain.handoff.bytes";
    /// Speculative backup attempts launched for straggling tasks
    /// (cluster simulator only).
    pub const SPECULATION_LAUNCHED: &str = "speculation.launched";
    /// Speculative backup attempts that finished before the original
    /// attempt and supplied the task's output.
    pub const SPECULATION_WON: &str = "speculation.won";
    /// Attempts (original or backup) cancelled because the other attempt
    /// of the same task won the race.
    pub const SPECULATION_CANCELLED: &str = "speculation.cancelled";
}

impl Counters {
    /// An empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `delta` to `name`.
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.values.entry(name).or_insert(0) += delta;
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, v) in &other.values {
            *self.values.entry(name).or_insert(0) += v;
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut c = Counters::new();
        c.incr(names::MAP_OUTPUT_RECORDS);
        c.add(names::MAP_OUTPUT_RECORDS, 9);
        assert_eq!(c.get(names::MAP_OUTPUT_RECORDS), 10);
        assert_eq!(c.get("never"), 0);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("x", 1);
        a.add("y", 2);
        let mut b = Counters::new();
        b.add("y", 3);
        b.add("z", 4);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 4);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        let items: Vec<_> = c.iter().collect();
        assert_eq!(items, vec![("a", 1), ("b", 2)]);
    }
}
