//! In-tree FxHash-style hasher for the absorb hot path.
//!
//! Once the stage barrier is gone, every shuffled record becomes one
//! probe into a partial-result store, so per-probe cost *is* the reduce
//! hot path. `std`'s default SipHash is DoS-resistant but slow for the
//! short keys MapReduce shuffles around; the classic answer (rustc's
//! `FxHashMap`, Firefox's original) is a multiply-rotate hash that
//! compiles to a handful of instructions per word. External crates are
//! off-limits in this workspace (see the README's offline dependency
//! policy), so the algorithm is implemented here, same policy as the
//! shims.
//!
//! DoS resistance is deliberately *not* a goal: keys come from the job's
//! own map output, not from an adversary sharing a hash table with other
//! tenants.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant from rustc's FxHash (a truncation of
/// π·2⁶² — any odd constant with well-mixed bits works).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher: for each word `w`,
/// `hash = (hash.rotate_left(5) ^ w) * SEED`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (head, tail) = rest.split_at(8);
            self.add_to_hash(u64::from_le_bytes(head.try_into().expect("8 bytes")));
            rest = tail;
        }
        if rest.len() >= 4 {
            let (head, tail) = rest.split_at(4);
            self.add_to_hash(u32::from_le_bytes(head.try_into().expect("4 bytes")) as u64);
            rest = tail;
        }
        if rest.len() >= 2 {
            let (head, tail) = rest.split_at(2);
            self.add_to_hash(u16::from_le_bytes(head.try_into().expect("2 bytes")) as u64);
            rest = tail;
        }
        if let [byte] = rest {
            self.add_to_hash(*byte as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s; zero-sized, so maps carry no
/// per-instance seed state.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`FxHasher`] — the hashed index behind
/// [`StoreIndex::Hashed`](crate::config::StoreIndex).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_hashers() {
        for key in ["", "a", "word", "a-much-longer-key-spanning-words"] {
            assert_eq!(hash_of(&key), hash_of(&key));
        }
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(7u32, -3i64)), hash_of(&(7u32, -3i64)));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
    }

    #[test]
    fn write_chunking_covers_every_tail_length() {
        // 0..=16 bytes exercises the 8/4/2/1 chunk ladder end to end;
        // prefixes must not collide with each other.
        let bytes: Vec<u8> = (1..=16).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=bytes.len() {
            let mut h = FxHasher::default();
            h.write(&bytes[..len]);
            assert!(seen.insert(h.finish()), "collision at prefix {len}");
        }
    }

    #[test]
    fn spreads_sequential_keys_across_buckets() {
        // A smoke check that the mix is usable: 10k sequential u64 keys
        // should not pile into a handful of low-bit patterns.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            low_bits.insert(hash_of(&i) & 0xff);
        }
        assert!(low_bits.len() > 200, "only {} buckets hit", low_bits.len());
    }

    #[test]
    fn fx_hashmap_behaves_like_a_map() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        for i in 0..100u64 {
            *m.entry(format!("k{}", i % 10)).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m["k3"], 10);
    }
}
