//! Error type shared by the engines and runners.

use crate::codec::CodecError;
use std::io;

/// Anything that can go wrong while running a job.
#[derive(Debug)]
pub enum MrError {
    /// A reduce task's partial results exceeded the heap cap under the
    /// in-memory policy — the Figure 5(a) failure mode. The job is killed.
    OutOfMemory {
        /// Which reduce partition died.
        reducer: usize,
        /// Modelled heap bytes at the moment of death.
        used_bytes: u64,
        /// The configured cap.
        cap_bytes: u64,
    },
    /// Spill file or KV store I/O failed.
    Io(io::Error),
    /// A spill file failed to decode.
    Codec(CodecError),
    /// A worker thread panicked (bug in an application function).
    WorkerPanic(String),
    /// A [`JobConfig`](crate::JobConfig) knob combination made no sense
    /// (zero shuffle batch, zero spill threshold, …). Returned by
    /// `JobConfig::validate()` before any worker thread starts, instead
    /// of panicking mid-job.
    InvalidConfig(String),
}

impl std::fmt::Display for MrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MrError::OutOfMemory {
                reducer,
                used_bytes,
                cap_bytes,
            } => write!(
                f,
                "reducer {reducer} out of memory: {used_bytes} bytes used, cap {cap_bytes}"
            ),
            MrError::Io(e) => write!(f, "I/O error: {e}"),
            MrError::Codec(e) => write!(f, "spill decode error: {e}"),
            MrError::WorkerPanic(what) => write!(f, "worker panicked: {what}"),
            MrError::InvalidConfig(what) => write!(f, "invalid job config: {what}"),
        }
    }
}

impl std::error::Error for MrError {}

impl From<io::Error> for MrError {
    fn from(e: io::Error) -> Self {
        MrError::Io(e)
    }
}

impl From<CodecError> for MrError {
    fn from(e: CodecError) -> Self {
        MrError::Codec(e)
    }
}

/// Result alias used throughout the framework.
pub type MrResult<T> = Result<T, MrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MrError::OutOfMemory {
            reducer: 3,
            used_bytes: 1_300_000_000,
            cap_bytes: 1_200_000_000,
        };
        let msg = e.to_string();
        assert!(msg.contains("reducer 3"));
        assert!(msg.contains("1300000000"));

        let io_err: MrError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(io_err.to_string().contains("gone"));

        let codec_err: MrError = CodecError::UnexpectedEof.into();
        assert!(codec_err.to_string().contains("end of input"));
    }
}
