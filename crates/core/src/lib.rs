//! `mr-core` — the barrier-less MapReduce framework.
//!
//! This is the reproduction's primary contribution, corresponding to the
//! modified Hadoop 0.20 of *Breaking the MapReduce Stage Barrier* (Verma
//! et al., CLUSTER 2010). One [`Application`] definition runs under two
//! engines:
//!
//! * **Barrier** ([`engine::barrier`]) — the classic contract: the reduce
//!   side waits for all map output, merge-sorts it, and calls the grouped
//!   Reduce once per key (paper Figure 2).
//! * **Barrier-less** ([`engine::pipeline`]) — the paper's contribution:
//!   records are reduced one at a time in shuffle-arrival order against a
//!   per-key *partial result*, eliminating the sort and the wait (Figure 3).
//!
//! Removing the barrier makes partial-result memory the central problem
//! (§5); the three [`store`] policies answer it: in-memory map, disk
//! spill-and-merge, and a disk-spilling key/value store. The in-memory
//! index is a knob ([`StoreIndex`]): the paper's ordered map, or an
//! in-tree FxHash map ([`hash`]) whose key ordering is recovered by one
//! amortized sort at drain time — byte-identical output either way.
//!
//! [`local::LocalRunner`] executes jobs for real on a fixed-size worker
//! pool ([`local::pool`]) with true map→reduce pipelining: task state
//! machines multiplex onto [`JobConfig::pool_workers`] OS threads, so
//! hundreds of concurrent jobs ([`local::LocalRunner::run_many`]) run
//! with a bounded thread count. The `mr-cluster` crate executes the same
//! [`Application`]s on a simulated 16-node cluster to regenerate the
//! paper's figures.

pub mod chain;
pub mod codec;
pub mod combine;
pub mod config;
pub mod counters;
pub mod engine;
pub mod error;
pub mod hash;
pub mod local;
pub mod output;
pub mod partition;
pub mod size;
pub mod snapshot;
pub mod store;
pub mod traits;

#[cfg(test)]
pub(crate) mod testutil;

pub use chain::{ChainOutput, ChainableApplication, InputAdapter, StageStats};
pub use codec::{Codec, CodecError};
pub use combine::CombinerBuffer;
pub use config::{
    CacheBudget, ChainConfig, ChainSpec, CombinerPolicy, DeadlinePolicy, Engine, HandoffMode,
    JobConfig, MemoryPolicy, ServiceConfig, SnapshotPolicy, SpeculationPolicy, StoreIndex,
    TenantSpec, TracePolicy,
};
pub use counters::{CounterName, Counters};
// The unified trace pipeline this crate's executors emit into.
pub use error::{MrError, MrResult};
pub use hash::{FxBuildHasher, FxHashMap, FxHasher};
pub use local::cache::SharedCache;
pub use local::pool::{pool_thread_high_water, PoolReport};
pub use local::service::{serve, JobHandle, JobService, RejectReason, ServiceReport, SubmitError};
pub use local::{LocalRunner, ManyJobsOutput, PoolStats};
pub use mr_cache::{CacheKey, CacheStats, KeyBuilder, ResultCache, StableHash};
pub use mr_trace::{
    Label, Scope, SpanKind, SpanRec, SpecEvent, SpecTaskKind, TaskKind, TraceBatch,
    TraceDispatcher, TraceEntry, TraceEvent, TraceInstant, TraceLog, TraceQuery, TraceRecorder,
    TraceSink,
};
pub use output::JobOutput;
pub use partition::{HashPartitioner, Partitioner};
pub use size::SizeEstimate;
pub use snapshot::Snapshot;
pub use traits::{Application, Emit, FnEmit, IdentityWriter, Key, Value};
