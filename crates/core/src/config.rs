//! Job configuration: which engine, how many reducers, how partial
//! results are stored, how the shuffle moves records, and when partial-
//! result snapshots are published.

use crate::error::{MrError, MrResult};
use std::path::PathBuf;

/// Default map-side combiner byte budget (per map worker × reducer).
pub const DEFAULT_COMBINER_BUDGET: u64 = 256 << 10;

/// Default shuffle batch budget: how many buffered bytes a map worker
/// accumulates per reducer before handing a batch to the transport.
pub const DEFAULT_SHUFFLE_BATCH_BYTES: usize = 32 << 10;

/// Map-side combining policy.
///
/// The combiner is *derived* from the barrier-less incremental form:
/// `init`/`absorb` already compute a per-key partial result, so when an
/// application opts in ([`combine_enabled`](crate::Application::combine_enabled))
/// the map side can pre-aggregate its output under a byte budget and ship
/// combined records instead of raw ones, cutting shuffle volume. The
/// engines only combine when *both* the policy and the application allow
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinerPolicy {
    /// No map-side combining: every map output record enters the shuffle.
    Disabled,
    /// Pre-aggregate per-key partials on the map side; when the buffered
    /// partials exceed `budget_bytes` (modelled heap bytes) they are
    /// drained into the shuffle early.
    Enabled {
        /// Combiner buffer budget in modelled heap bytes.
        budget_bytes: u64,
    },
}

impl CombinerPolicy {
    /// Combining with the default byte budget.
    pub fn enabled() -> Self {
        CombinerPolicy::Enabled {
            budget_bytes: DEFAULT_COMBINER_BUDGET,
        }
    }

    /// True unless the policy is [`CombinerPolicy::Disabled`].
    pub fn is_enabled(&self) -> bool {
        matches!(self, CombinerPolicy::Enabled { .. })
    }

    /// The byte budget, if combining is enabled.
    pub fn budget_bytes(&self) -> Option<u64> {
        match self {
            CombinerPolicy::Disabled => None,
            CombinerPolicy::Enabled { budget_bytes } => Some(*budget_bytes),
        }
    }
}

/// Default shared result-cache byte budget (64 MiB).
pub const DEFAULT_CACHE_BUDGET: u64 = 64 << 20;

/// Whether (and how large) a job's shared result cache is.
///
/// The result cache (`mr-cache` + [`crate::local::cache`]) memoizes
/// content-addressed artifacts — partitioned map outputs and sealed job
/// outputs — across jobs and tenants. The paper's §8 future-work note
/// observes memoization "becomes feasible in the barrier-less model";
/// this knob turns it on. `Disabled` by default: caching never changes
/// job output (that is the determinism bar), but it does add hashing
/// work to cold runs, so jobs opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheBudget {
    /// No result caching: every run computes from scratch.
    Disabled,
    /// Cache artifacts under an LRU byte budget; an entry larger than
    /// the whole budget is refused (counted as `cache.oversize.count`).
    Limit {
        /// Whole-cache byte budget.
        bytes: u64,
    },
}

impl CacheBudget {
    /// Caching with the default byte budget.
    pub fn enabled() -> Self {
        CacheBudget::Limit {
            bytes: DEFAULT_CACHE_BUDGET,
        }
    }

    /// True unless the policy is [`CacheBudget::Disabled`].
    pub fn is_enabled(&self) -> bool {
        matches!(self, CacheBudget::Limit { .. })
    }

    /// The byte budget, if caching is enabled.
    pub fn bytes(&self) -> Option<u64> {
        match self {
            CacheBudget::Disabled => None,
            CacheBudget::Limit { bytes } => Some(*bytes),
        }
    }
}

/// When a barrier-less reduce task publishes a *snapshot* — a consistent
/// point-in-time estimate of its final output built from the live
/// partial results (the paper's headline capability: reducers hold
/// usable per-key state long before the job finishes).
///
/// Snapshots are read-only over a frozen view of the partial store and
/// never change what the job finally emits; they only make mid-job state
/// observable. Under the barrier engine there is no partial state to
/// observe, so the only snapshot a barrier reducer can publish is its
/// finished output — which is exactly the paper's point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnapshotPolicy {
    /// Never snapshot (the default; zero overhead on every path).
    Disabled,
    /// Snapshot after every `records` records absorbed by a reduce task.
    /// Deterministic: the snapshot points depend only on the record
    /// stream, so the determinism harness can assert snapshot contents.
    EveryRecords {
        /// Absorbed-record interval between snapshots (≥ 1).
        records: u64,
    },
    /// Snapshot roughly every `secs` seconds — wall clock under the
    /// local executor, virtual time under the cluster simulator (where
    /// ticks are scheduled as timeline events).
    EverySecs {
        /// Seconds between snapshots (> 0).
        secs: f64,
    },
    /// Only when explicitly requested via
    /// [`IncrementalDriver::snapshot_now`](crate::engine::pipeline::IncrementalDriver::snapshot_now).
    OnDemand,
}

impl SnapshotPolicy {
    /// True unless the policy is [`SnapshotPolicy::Disabled`].
    pub fn is_enabled(&self) -> bool {
        !matches!(self, SnapshotPolicy::Disabled)
    }

    /// True for the periodic policies (`EveryRecords` / `EverySecs`),
    /// which also publish one final snapshot at end-of-input so the last
    /// snapshot always equals the finalize output.
    pub fn is_periodic(&self) -> bool {
        matches!(
            self,
            SnapshotPolicy::EveryRecords { .. } | SnapshotPolicy::EverySecs { .. }
        )
    }

    /// The absorbed-record interval, if records-driven.
    pub fn record_interval(&self) -> Option<u64> {
        match self {
            SnapshotPolicy::EveryRecords { records } => Some(*records),
            _ => None,
        }
    }

    /// The time interval in seconds, if time-driven.
    pub fn secs_interval(&self) -> Option<f64> {
        match self {
            SnapshotPolicy::EverySecs { secs } => Some(*secs),
            _ => None,
        }
    }
}

/// When the cluster simulator launches speculative backup attempts for
/// straggling tasks (Hadoop-style speculative execution).
///
/// Detection is progress-relative-to-median: a map attempt is a
/// straggler when it has been running `slowdown` times longer than the
/// median completed map (records read per second, since maps stream a
/// fixed chunk); a reduce attempt is a straggler when its shuffle
/// deliveries trail the median running reducer by the same factor. At
/// most one backup per task is launched, on a node away from the
/// original; whichever attempt finishes first wins and the loser is
/// cancelled. Because task execution is deterministic, both attempts
/// produce byte-identical output — speculation can never change what
/// the job emits, only when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeculationPolicy {
    /// Never speculate (the default; zero overhead on every path).
    Disabled,
    /// Scan for stragglers every `check_secs` of virtual time.
    Enabled {
        /// Seconds between straggler scans (> 0).
        check_secs: f64,
        /// How far behind the median an attempt must be before a backup
        /// launches (≥ 1; at 1.0 an attempt on a homogeneous noise-free
        /// cluster still never qualifies, because equals are never
        /// *strictly* behind).
        slowdown: f64,
    },
}

impl SpeculationPolicy {
    /// Speculation with the default scan interval and slowdown factor.
    pub fn enabled() -> Self {
        SpeculationPolicy::Enabled {
            check_secs: 5.0,
            slowdown: 1.2,
        }
    }

    /// True unless the policy is [`SpeculationPolicy::Disabled`].
    pub fn is_enabled(&self) -> bool {
        matches!(self, SpeculationPolicy::Enabled { .. })
    }
}

/// A completion deadline for a simulated job: an SLA built on top of
/// [`SnapshotPolicy`].
///
/// When the deadline event fires before the job finishes, the simulator
/// stops the run and finalizes the job from the latest snapshot each
/// reduce task has published, reporting
/// `Outcome::Approximate` instead of `Completed`. The deadline is a
/// fixed virtual-time tick, so which snapshot is "latest" — and
/// therefore the approximate answer itself — is deterministic for a
/// given seed. Requires an enabled snapshot policy (otherwise there
/// would be nothing to answer with); [`JobConfig::validate`] enforces
/// that.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeadlinePolicy {
    /// No deadline: jobs run to completion (the default).
    Disabled,
    /// Finalize from snapshots if the job is still running at `secs` of
    /// virtual time.
    At {
        /// Deadline in virtual seconds from job start (> 0).
        secs: f64,
    },
}

impl DeadlinePolicy {
    /// True unless the policy is [`DeadlinePolicy::Disabled`].
    pub fn is_enabled(&self) -> bool {
        matches!(self, DeadlinePolicy::At { .. })
    }

    /// The deadline in seconds, if one is set.
    pub fn secs(&self) -> Option<f64> {
        match self {
            DeadlinePolicy::At { secs } => Some(*secs),
            DeadlinePolicy::Disabled => None,
        }
    }
}

/// Whether a run records the unified structured trace (`mr-trace`): the
/// one event stream from which the legacy `Counters`, timeline and
/// per-stage views are derived.
///
/// Tracing is on by default: recording is allocation-light (per-task
/// buffered batches, merged exactly like task counters) and under the
/// simulator it costs zero *virtual* time. Disabling it yields an empty
/// [`TraceLog`](mr_trace::TraceLog) and empty derived views while the
/// job's actual output stays byte-identical — the trace is observability
/// only and can never change what a job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TracePolicy {
    /// Record every event into the run's `TraceLog` (the default).
    #[default]
    Enabled,
    /// Record nothing; reports carry an empty log and empty derived
    /// views. The local executor skips event emission entirely.
    Disabled,
}

impl TracePolicy {
    /// True unless the policy is [`TracePolicy::Disabled`].
    pub fn is_enabled(&self) -> bool {
        matches!(self, TracePolicy::Enabled)
    }
}

/// Default handoff batch budget between chained jobs: how many buffered
/// bytes an upstream reduce task accumulates before handing a record
/// batch to the downstream stage's map intake.
pub const DEFAULT_HANDOFF_BATCH_BYTES: usize = 32 << 10;

/// How a [`ChainSpec`] hands one stage's reduce output to the next
/// stage's mappers.
///
/// This is the inter-*job* analogue of the intra-job [`Engine`] choice:
/// the paper's strongest claim beyond single-job pipelining is that for
/// concatenated MapReduce jobs the stage boundary between job N's reduce
/// and job N+1's map can be removed exactly like the shuffle barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HandoffMode {
    /// Hard inter-job barrier (the Hadoop baseline): stage N materializes
    /// its complete output before any stage-N+1 map task starts.
    #[default]
    Barrier,
    /// Barrier-less streaming: each upstream reduce task's emitted output
    /// flows straight into downstream map intake through bounded batched
    /// channels (the same transport the shuffle uses), so stage N+1 map
    /// work overlaps stage N reduce work.
    Streaming,
}

impl HandoffMode {
    /// True for [`HandoffMode::Streaming`].
    pub fn is_streaming(&self) -> bool {
        matches!(self, HandoffMode::Streaming)
    }
}

/// Chain-level knobs shared by every stage boundary of a [`ChainSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainConfig {
    /// Barrier or streaming stage handoff.
    pub handoff: HandoffMode,
    /// Byte budget an upstream reduce task buffers before handing a
    /// record batch to the downstream map intake (streaming mode only;
    /// sizes come from
    /// [`ChainableApplication::handoff_bytes`](crate::chain::ChainableApplication::handoff_bytes)).
    pub handoff_batch_bytes: usize,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            handoff: HandoffMode::default(),
            handoff_batch_bytes: DEFAULT_HANDOFF_BATCH_BYTES,
        }
    }
}

impl ChainConfig {
    /// The Hadoop baseline: a hard barrier at every stage boundary.
    pub fn barrier() -> Self {
        ChainConfig::default()
    }

    /// Barrier-less streaming handoff with the default batch budget.
    pub fn streaming() -> Self {
        ChainConfig {
            handoff: HandoffMode::Streaming,
            ..ChainConfig::default()
        }
    }

    /// Sets the handoff batch budget in bytes.
    pub fn handoff_batch_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 1);
        self.handoff_batch_bytes = bytes;
        self
    }

    /// Checks the chain-level knobs, mirroring [`JobConfig::validate`]'s
    /// Err-not-panic contract for direct struct mutation.
    pub fn validate(&self) -> MrResult<()> {
        if self.handoff_batch_bytes == 0 {
            return Err(MrError::InvalidConfig(
                "handoff_batch_bytes must be >= 1 (0 would never flush a handoff batch)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

/// A concatenated sequence of MapReduce jobs: one [`JobConfig`] per
/// stage plus the chain-level [`ChainConfig`]. Stage `i`'s reduce output
/// is re-partitioned and fed to stage `i + 1`'s mappers as a record
/// stream (streaming handoff) or a materialized dataset (barrier
/// handoff).
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Per-stage job configurations, in execution order.
    pub stages: Vec<JobConfig>,
    /// Chain-level handoff knobs.
    pub chain: ChainConfig,
}

impl ChainSpec {
    /// A chain over `stages` with the default (barrier) handoff.
    pub fn new(stages: Vec<JobConfig>) -> Self {
        ChainSpec {
            stages,
            chain: ChainConfig::default(),
        }
    }

    /// Sets the chain-level config.
    pub fn chain(mut self, chain: ChainConfig) -> Self {
        self.chain = chain;
        self
    }

    /// Sets the handoff mode, keeping the other chain knobs.
    pub fn handoff(mut self, handoff: HandoffMode) -> Self {
        self.chain.handoff = handoff;
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the chain has no stages (always invalid to run).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Checks every chain knob up front: the chain must have at least one
    /// stage, the chain-level knobs must make sense, and every stage's
    /// [`JobConfig`] must itself validate. Chain drivers call this before
    /// spawning anything.
    pub fn validate(&self) -> MrResult<()> {
        if self.stages.is_empty() {
            return Err(MrError::InvalidConfig(
                "empty chain: a ChainSpec needs at least one stage".to_string(),
            ));
        }
        self.chain.validate()?;
        for (i, stage) in self.stages.iter().enumerate() {
            stage.validate().map_err(|e| match e {
                MrError::InvalidConfig(msg) => {
                    MrError::InvalidConfig(format!("chain stage {i}: {msg}"))
                }
                other => other,
            })?;
        }
        Ok(())
    }

    /// Fan-in validation: `branches` upstream jobs (stages `0..branches`)
    /// feed one downstream job (the last stage). Every upstream branch
    /// must use the same partition count, because upstream reduce
    /// partition `i` of every branch feeds downstream map intake `i`.
    pub fn validate_fan_in(&self, branches: usize) -> MrResult<()> {
        self.validate()?;
        if branches < 1 || self.stages.len() != branches + 1 {
            return Err(MrError::InvalidConfig(format!(
                "fan-in chain needs {branches} upstream stages plus one downstream \
                 stage, got {} stages",
                self.stages.len()
            )));
        }
        let first = self.stages[0].reducers;
        for (i, stage) in self.stages[..branches].iter().enumerate() {
            if stage.reducers != first {
                return Err(MrError::InvalidConfig(format!(
                    "mismatched partition counts across fan-in branches: branch 0 \
                     has {first} reducers, branch {i} has {}",
                    stage.reducers
                )));
            }
        }
        Ok(())
    }
}

/// How per-key partial results are *indexed* inside the in-memory
/// stores — the reduce-side [`InMemoryStore`](crate::store::InMemoryStore)
/// and [`SpillMergeStore`](crate::store::SpillMergeStore) run, and the
/// map-side [`CombinerBuffer`](crate::combine::CombinerBuffer).
///
/// The paper's Java prototype used a `TreeMap`, making every `absorb` an
/// O(log n) ordered probe with full key comparisons. [`StoreIndex::Hashed`]
/// replaces that with an in-tree FxHash map ([`crate::hash`]) and recovers
/// the key-order guarantees by sorting **once at drain time** (combiner
/// drains, spill-run writes, finalize) instead of on every insert — so
/// output bytes, spill-run contents and fault-recovery map re-runs are
/// identical under either index. Both are kept so the trade-off stays
/// A/B-able (`ablation_storeindex`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreIndex {
    /// Ordered map (`BTreeMap`), the paper's TreeMap: keys kept sorted on
    /// every insert, drains are a plain in-order walk.
    Ordered,
    /// FxHash map with amortized sort-at-drain: O(1) expected probes on
    /// the absorb hot path; keys sorted once when the store drains.
    #[default]
    Hashed,
}

/// How the barrier-less engine stores partial results (§5).
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryPolicy {
    /// Keep everything in an in-memory ordered map (the paper's TreeMap).
    /// Fails with an out-of-memory error when `heap_cap_bytes` (if set)
    /// is exceeded — reproducing Figure 5(a).
    InMemory,
    /// Disk spill and merge (§5.1): spill the sorted store to a run file
    /// when it reaches `threshold_bytes`; k-way merge runs at finalize.
    SpillMerge {
        /// Spill trigger, in *modelled* heap bytes.
        threshold_bytes: u64,
    },
    /// Disk-spilling key/value store (§5.2, BerkeleyDB stand-in): every
    /// absorb is a read-modify-update against `mr-kvstore`.
    KvStore {
        /// Record-cache budget for the store.
        cache_bytes: usize,
    },
}

/// Which execution engine runs the Reduce side.
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Classic MapReduce: full shuffle barrier, sort, grouped reduce.
    Barrier,
    /// The paper's contribution: pipelined shuffle + per-record reduce.
    BarrierLess {
        /// Partial-result storage strategy.
        memory: MemoryPolicy,
    },
}

impl Engine {
    /// Convenience: barrier-less with unbounded in-memory storage.
    pub fn barrierless() -> Engine {
        Engine::BarrierLess {
            memory: MemoryPolicy::InMemory,
        }
    }
}

/// Everything the runner needs besides the application itself.
///
/// # Policy knobs at a glance
///
/// Every policy knob follows the same pattern: a field with a safe
/// default, a chainable builder method, and — for runs under the cluster
/// simulator — a `ClusterParams` override that wins over the job's own
/// setting (`Some`/enabled wins; `None`/disabled leaves the job's choice
/// in force). `ClusterParams::effective_config` resolves the whole set.
///
/// | Knob | Builder | `ClusterParams` override | Default |
/// |------|---------|--------------------------|---------|
/// | `combiner` | [`combiner`](JobConfig::combiner) | `combiner` (enabled wins) | `Disabled` |
/// | `store_index` | [`store_index`](JobConfig::store_index) | `store_index` (`Some` wins) | `Hashed` |
/// | `snapshots` | [`snapshots`](JobConfig::snapshots) | `snapshots` (`Some` wins) | `Disabled` |
/// | `speculation` | [`speculation`](JobConfig::speculation) | `speculation` (`Some` wins) | `Disabled` |
/// | `deadline` | [`deadline`](JobConfig::deadline) | `deadline` (`Some` wins) | `Disabled` |
/// | `trace` | [`trace`](JobConfig::trace) | `trace` (`Some` wins) | `Enabled` |
/// | `cache` | [`cache`](JobConfig::cache) | `cache` (`Some` wins) | `Disabled` |
/// | `pool_workers` | [`pool_workers`](JobConfig::pool_workers) | `pool_workers` (`Some` wins) | available parallelism |
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of reduce tasks (partitions).
    pub reducers: usize,
    /// Engine selection.
    pub engine: Engine,
    /// Per-reduce-task heap cap in modelled bytes; `None` = unbounded.
    /// Exceeding it under `MemoryPolicy::InMemory` kills the job, exactly
    /// like the paper's JVM heap exhaustion.
    pub heap_cap_bytes: Option<u64>,
    /// Multiplier from real store bytes to modelled heap bytes. The
    /// simulator scales record volume down; this scales accounting back
    /// up so thresholds like "240 MB" stay meaningful. 1.0 for real runs.
    pub heap_scale: f64,
    /// Directory for spill files and KV-store segments.
    pub scratch_dir: PathBuf,
    /// Map-side combining policy. Only applications that return `true`
    /// from [`combine_enabled`](crate::Application::combine_enabled)
    /// actually combine; for the rest this is a no-op.
    pub combiner: CombinerPolicy,
    /// Byte budget a map worker buffers per reducer before handing a
    /// record batch to the shuffle transport (the local executor's
    /// batched channels). Per-record shuffle overhead amortizes over
    /// roughly `batch_bytes / record_bytes` records.
    pub shuffle_batch_bytes: usize,
    /// How the in-memory partial stores (reduce-side in-memory/spill
    /// runs, map-side combiner buffers) index their keys. Defaults to
    /// [`StoreIndex::Hashed`]; [`StoreIndex::Ordered`] restores the
    /// paper's TreeMap behaviour for A/B runs. Output is byte-identical
    /// under either.
    pub store_index: StoreIndex,
    /// When reduce tasks publish partial-result snapshots (early
    /// estimates of the final answer). [`SnapshotPolicy::Disabled`] by
    /// default; snapshots never change final output, only observability.
    pub snapshots: SnapshotPolicy,
    /// When the cluster simulator launches speculative backup attempts
    /// for straggling tasks. [`SpeculationPolicy::Disabled`] by default;
    /// the local executor has no cluster to straggle on and ignores it.
    pub speculation: SpeculationPolicy,
    /// Completion deadline after which the simulator answers from the
    /// latest published snapshots. [`DeadlinePolicy::Disabled`] by
    /// default; requires an enabled snapshot policy when set.
    pub deadline: DeadlinePolicy,
    /// Whether the run records the unified structured trace.
    /// [`TracePolicy::Enabled`] by default; disabling yields empty
    /// trace/derived views but byte-identical job output.
    pub trace: TracePolicy,
    /// Whether this job participates in the shared result cache (the
    /// cached entry points and the job service consult it only when
    /// enabled). [`CacheBudget::Disabled`] by default; caching never
    /// changes job output, only whether it is recomputed.
    pub cache: CacheBudget,
    /// Number of OS threads in the local executor's worker pool. Every
    /// task (map, reduce, chain intake, handoff) is a state machine
    /// multiplexed over this many threads, so the thread count is bounded
    /// by the pool — not by splits × reducers × chain stages. Defaults to
    /// the machine's available parallelism. Output is byte-identical at
    /// any width; `1` additionally makes task interleaving deterministic.
    pub pool_workers: usize,
    /// Seed for anything stochastic inside the engines (none today, but
    /// carried so runs stay reproducible end to end).
    pub seed: u64,
}

impl JobConfig {
    /// A barrier-engine config with `reducers` partitions and defaults
    /// suitable for tests and examples.
    pub fn new(reducers: usize) -> Self {
        JobConfig {
            reducers,
            engine: Engine::Barrier,
            heap_cap_bytes: None,
            heap_scale: 1.0,
            scratch_dir: std::env::temp_dir().join("mr-scratch"),
            combiner: CombinerPolicy::Disabled,
            shuffle_batch_bytes: DEFAULT_SHUFFLE_BATCH_BYTES,
            store_index: StoreIndex::default(),
            snapshots: SnapshotPolicy::Disabled,
            speculation: SpeculationPolicy::Disabled,
            deadline: DeadlinePolicy::Disabled,
            trace: TracePolicy::Enabled,
            cache: CacheBudget::Disabled,
            pool_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0,
        }
    }

    /// Sets the engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the per-reduce-task heap cap.
    pub fn heap_cap(mut self, bytes: u64) -> Self {
        self.heap_cap_bytes = Some(bytes);
        self
    }

    /// Sets the real-to-modelled heap scaling factor.
    pub fn heap_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.heap_scale = scale;
        self
    }

    /// Sets the scratch directory.
    pub fn scratch_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.scratch_dir = dir.into();
        self
    }

    /// Sets the map-side combining policy.
    pub fn combiner(mut self, policy: CombinerPolicy) -> Self {
        self.combiner = policy;
        self
    }

    /// Sets the shuffle transport batch budget in bytes.
    pub fn shuffle_batch_bytes(mut self, bytes: usize) -> Self {
        assert!(bytes >= 1);
        self.shuffle_batch_bytes = bytes;
        self
    }

    /// Sets the partial-store index strategy.
    pub fn store_index(mut self, index: StoreIndex) -> Self {
        self.store_index = index;
        self
    }

    /// Sets the snapshot policy.
    pub fn snapshots(mut self, policy: SnapshotPolicy) -> Self {
        self.snapshots = policy;
        self
    }

    /// Sets the speculation policy.
    pub fn speculation(mut self, policy: SpeculationPolicy) -> Self {
        self.speculation = policy;
        self
    }

    /// Sets the deadline policy.
    pub fn deadline(mut self, policy: DeadlinePolicy) -> Self {
        self.deadline = policy;
        self
    }

    /// Sets the trace policy.
    pub fn trace(mut self, policy: TracePolicy) -> Self {
        self.trace = policy;
        self
    }

    /// Sets the result-cache participation policy.
    pub fn cache(mut self, budget: CacheBudget) -> Self {
        self.cache = budget;
        self
    }

    /// Sets the worker-pool width for the local executor.
    pub fn pool_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.pool_workers = workers;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks every knob combination up front, returning
    /// [`MrError::InvalidConfig`] instead of letting a nonsense value
    /// panic deep inside a worker thread (or silently spin: a zero
    /// `shuffle_batch_bytes` would never flush a batch). The executors
    /// call this before spawning anything; direct struct mutation is
    /// covered too, not just the asserting builders.
    pub fn validate(&self) -> MrResult<()> {
        fn bad(what: impl Into<String>) -> MrResult<()> {
            Err(MrError::InvalidConfig(what.into()))
        }
        if self.reducers == 0 {
            return bad("reducers must be >= 1");
        }
        if self.shuffle_batch_bytes == 0 {
            return bad("shuffle_batch_bytes must be >= 1 (0 would never flush a batch)");
        }
        if self.pool_workers == 0 {
            return bad("pool_workers must be >= 1 (a zero-width pool never runs a task)");
        }
        if !(self.heap_scale.is_finite() && self.heap_scale > 0.0) {
            return bad(format!(
                "heap_scale must be finite and > 0 (got {})",
                self.heap_scale
            ));
        }
        if self.heap_cap_bytes == Some(0) {
            return bad("heap_cap_bytes of 0 kills every job on its first record");
        }
        if self.combiner.budget_bytes() == Some(0) {
            return bad("combiner budget_bytes must be >= 1 (0 drains before every record)");
        }
        if self.cache.bytes() == Some(0) {
            return bad(
                "cache budget bytes must be >= 1 (a zero-byte cache rejects every artifact)",
            );
        }
        match &self.engine {
            Engine::Barrier => {}
            Engine::BarrierLess { memory } => match memory {
                MemoryPolicy::InMemory => {}
                MemoryPolicy::SpillMerge { threshold_bytes } => {
                    if *threshold_bytes == 0 {
                        return bad("SpillMerge threshold_bytes must be >= 1");
                    }
                }
                MemoryPolicy::KvStore { cache_bytes } => {
                    if *cache_bytes == 0 {
                        return bad("KvStore cache_bytes must be >= 1");
                    }
                }
            },
        }
        match self.snapshots {
            SnapshotPolicy::EveryRecords { records: 0 } => {
                return bad("SnapshotPolicy::EveryRecords interval must be >= 1");
            }
            SnapshotPolicy::EverySecs { secs } if !(secs.is_finite() && secs > 0.0) => {
                return bad(format!(
                    "SnapshotPolicy::EverySecs interval must be finite and > 0 (got {secs})"
                ));
            }
            _ => {}
        }
        if let SpeculationPolicy::Enabled {
            check_secs,
            slowdown,
        } = self.speculation
        {
            if !(check_secs.is_finite() && check_secs > 0.0) {
                return bad(format!(
                    "SpeculationPolicy check_secs must be finite and > 0 (got {check_secs})"
                ));
            }
            if !(slowdown.is_finite() && slowdown >= 1.0) {
                return bad(format!(
                    "SpeculationPolicy slowdown must be finite and >= 1 (got {slowdown}; \
                     below 1 every on-pace attempt counts as a straggler)"
                ));
            }
        }
        if let DeadlinePolicy::At { secs } = self.deadline {
            if !(secs.is_finite() && secs > 0.0) {
                return bad(format!(
                    "DeadlinePolicy deadline must be finite and > 0 (got {secs})"
                ));
            }
            if !self.snapshots.is_enabled() {
                return bad(
                    "DeadlinePolicy requires an enabled SnapshotPolicy: with no snapshots \
                     there is nothing to answer with when the deadline fires",
                );
            }
        }
        Ok(())
    }
}

/// One tenant's scheduling identity under the job service: its
/// weighted-fair share, its preemption priority, and its overload
/// quotas. All fields have permissive defaults; quotas are opt-in caps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Deficit-round weight: a tenant with weight 2 gets twice the slot
    /// share of a weight-1 tenant when both have work queued. Must be
    /// >= 1.
    pub weight: u32,
    /// Preemption priority; a strictly higher-priority tenant's pending
    /// work may evict a lower-priority tenant's running task in the
    /// simulator. Equal priorities share fairly and never preempt.
    pub priority: u32,
    /// Cap on the tenant's concurrently held slots. Must be >= 1: a
    /// zero-slot tenant could accept jobs it can never run.
    pub max_concurrent_slots: usize,
    /// Cap on the tenant's jobs waiting in the admission queue; a
    /// submission beyond it is rejected, not queued.
    pub max_queued_jobs: usize,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            weight: 1,
            priority: 0,
            max_concurrent_slots: usize::MAX,
            max_queued_jobs: usize::MAX,
        }
    }
}

impl TenantSpec {
    /// An unweighted, unprioritised, uncapped tenant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the deficit-round weight.
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the preemption priority.
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Caps the tenant's concurrently held slots.
    pub fn max_concurrent_slots(mut self, slots: usize) -> Self {
        self.max_concurrent_slots = slots;
        self
    }

    /// Caps the tenant's queued (admitted but not yet running) jobs.
    pub fn max_queued_jobs(mut self, jobs: usize) -> Self {
        self.max_queued_jobs = jobs;
        self
    }
}

/// Configuration for a [`JobService`](crate::local::service::JobService): the
/// tenant table, the admission-queue bound, and the width of the one
/// long-lived worker pool every admitted job runs on.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// The tenant table; a submission names a tenant by index.
    pub tenants: Vec<TenantSpec>,
    /// Bound on jobs waiting for a slot across all tenants. A submission
    /// that would exceed it is rejected with `QueueFull`, not blocked.
    pub queue_cap: usize,
    /// Worker threads in the service's long-lived pool — also the number
    /// of job slots the scheduler hands out (one admitted job occupies
    /// one slot for its whole run).
    pub pool_workers: usize,
    /// Seed carried into per-job configs for reproducibility.
    pub seed: u64,
    /// Sizing of the one shared result cache every tenant's jobs
    /// consult (a job still opts in per-submission via
    /// [`JobConfig::cache`]). [`CacheBudget::Disabled`] by default: no
    /// cache is built and every job runs cold.
    pub cache: CacheBudget,
}

impl ServiceConfig {
    /// A service with `tenants` default-spec tenants, a generous queue,
    /// and one slot per available core.
    pub fn new(tenants: usize) -> Self {
        ServiceConfig {
            tenants: vec![TenantSpec::default(); tenants],
            queue_cap: 1024,
            pool_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            seed: 0,
            cache: CacheBudget::Disabled,
        }
    }

    /// Replaces tenant `index`'s spec.
    pub fn tenant(mut self, index: usize, spec: TenantSpec) -> Self {
        self.tenants[index] = spec;
        self
    }

    /// Sets the global admission-queue bound.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Sets the pool width (= concurrent job slots).
    pub fn pool_workers(mut self, workers: usize) -> Self {
        self.pool_workers = workers;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sizes the service's shared result cache.
    pub fn cache(mut self, budget: CacheBudget) -> Self {
        self.cache = budget;
        self
    }

    /// Checks the tenant table and service knobs up front, returning
    /// [`MrError::InvalidConfig`] before any pool thread starts. Same
    /// contract as [`JobConfig::validate`]: nonsense never reaches a
    /// worker.
    pub fn validate(&self) -> MrResult<()> {
        fn bad(what: impl Into<String>) -> MrResult<()> {
            Err(MrError::InvalidConfig(what.into()))
        }
        if self.tenants.is_empty() {
            return bad("a service needs at least one tenant");
        }
        if self.queue_cap == 0 {
            return bad("queue_cap must be >= 1 (a zero-length queue rejects every submission)");
        }
        if self.pool_workers == 0 {
            return bad("pool_workers must be >= 1 (a zero-width pool never runs a job)");
        }
        if self.cache.bytes() == Some(0) {
            return bad(
                "cache budget bytes must be >= 1 (a zero-byte cache rejects every artifact)",
            );
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return bad(format!(
                    "tenant {i} weight must be >= 1 (weight 0 would starve the tenant by \
                     construction)"
                ));
            }
            if t.max_concurrent_slots == 0 {
                return bad(format!(
                    "tenant {i} max_concurrent_slots must be >= 1 (a zero-slot tenant can \
                     queue jobs it can never run)"
                ));
            }
            if t.max_queued_jobs == 0 {
                return bad(format!(
                    "tenant {i} max_queued_jobs must be >= 1 (the tenant could never submit)"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = JobConfig::new(4)
            .engine(Engine::barrierless())
            .heap_cap(1 << 30)
            .heap_scale(2.0)
            .seed(9);
        assert_eq!(cfg.reducers, 4);
        assert_eq!(
            cfg.engine,
            Engine::BarrierLess {
                memory: MemoryPolicy::InMemory
            }
        );
        assert_eq!(cfg.heap_cap_bytes, Some(1 << 30));
        assert_eq!(cfg.heap_scale, 2.0);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn default_is_barrier() {
        assert_eq!(JobConfig::new(1).engine, Engine::Barrier);
    }

    #[test]
    fn hashed_index_is_the_default_and_ordered_is_reachable() {
        let cfg = JobConfig::new(1);
        assert_eq!(cfg.store_index, StoreIndex::Hashed);
        let cfg = cfg.store_index(StoreIndex::Ordered);
        assert_eq!(cfg.store_index, StoreIndex::Ordered);
    }

    #[test]
    fn snapshots_are_off_by_default_and_builder_sets_them() {
        let cfg = JobConfig::new(1);
        assert_eq!(cfg.snapshots, SnapshotPolicy::Disabled);
        assert!(!cfg.snapshots.is_enabled());
        assert!(!cfg.snapshots.is_periodic());
        let cfg = cfg.snapshots(SnapshotPolicy::EveryRecords { records: 64 });
        assert!(cfg.snapshots.is_enabled());
        assert!(cfg.snapshots.is_periodic());
        assert_eq!(cfg.snapshots.record_interval(), Some(64));
        assert_eq!(cfg.snapshots.secs_interval(), None);
        let timed = SnapshotPolicy::EverySecs { secs: 2.5 };
        assert_eq!(timed.secs_interval(), Some(2.5));
        assert!(SnapshotPolicy::OnDemand.is_enabled());
        assert!(!SnapshotPolicy::OnDemand.is_periodic());
    }

    #[test]
    fn validate_accepts_every_sane_combination() {
        JobConfig::new(1).validate().unwrap();
        JobConfig::new(8)
            .engine(Engine::BarrierLess {
                memory: MemoryPolicy::SpillMerge { threshold_bytes: 1 },
            })
            .combiner(CombinerPolicy::enabled())
            .snapshots(SnapshotPolicy::EveryRecords { records: 1 })
            .heap_cap(1)
            .validate()
            .unwrap();
        JobConfig::new(2)
            .engine(Engine::BarrierLess {
                memory: MemoryPolicy::KvStore { cache_bytes: 1 },
            })
            .snapshots(SnapshotPolicy::EverySecs { secs: 0.001 })
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_each_bad_knob_with_err_not_panic() {
        use crate::error::MrError;
        let check = |cfg: JobConfig, what: &str| match cfg.validate() {
            Err(MrError::InvalidConfig(msg)) => {
                assert!(
                    msg.contains(what),
                    "message {msg:?} does not mention {what:?}"
                )
            }
            other => panic!("expected InvalidConfig for {what}, got {other:?}"),
        };

        let mut cfg = JobConfig::new(1);
        cfg.reducers = 0;
        check(cfg, "reducers");

        let mut cfg = JobConfig::new(1);
        cfg.shuffle_batch_bytes = 0;
        check(cfg, "shuffle_batch_bytes");

        let mut cfg = JobConfig::new(1);
        cfg.pool_workers = 0;
        check(cfg, "pool_workers");

        let mut cfg = JobConfig::new(1);
        cfg.heap_scale = 0.0;
        check(cfg, "heap_scale");
        let mut cfg = JobConfig::new(1);
        cfg.heap_scale = f64::NAN;
        check(cfg, "heap_scale");

        let mut cfg = JobConfig::new(1);
        cfg.heap_cap_bytes = Some(0);
        check(cfg, "heap_cap_bytes");

        let mut cfg = JobConfig::new(1);
        cfg.combiner = CombinerPolicy::Enabled { budget_bytes: 0 };
        check(cfg, "budget_bytes");

        let mut cfg = JobConfig::new(1);
        cfg.cache = CacheBudget::Limit { bytes: 0 };
        check(cfg, "cache budget");

        let cfg = JobConfig::new(1).engine(Engine::BarrierLess {
            memory: MemoryPolicy::SpillMerge { threshold_bytes: 0 },
        });
        check(cfg, "threshold_bytes");

        let cfg = JobConfig::new(1).engine(Engine::BarrierLess {
            memory: MemoryPolicy::KvStore { cache_bytes: 0 },
        });
        check(cfg, "cache_bytes");

        let mut cfg = JobConfig::new(1);
        cfg.snapshots = SnapshotPolicy::EveryRecords { records: 0 };
        check(cfg, "EveryRecords");

        let mut cfg = JobConfig::new(1);
        cfg.snapshots = SnapshotPolicy::EverySecs { secs: 0.0 };
        check(cfg, "EverySecs");
        let mut cfg = JobConfig::new(1);
        cfg.snapshots = SnapshotPolicy::EverySecs { secs: f64::NAN };
        check(cfg, "EverySecs");

        let mut cfg = JobConfig::new(1);
        cfg.speculation = SpeculationPolicy::Enabled {
            check_secs: 0.0,
            slowdown: 1.5,
        };
        check(cfg, "check_secs");
        let mut cfg = JobConfig::new(1);
        cfg.speculation = SpeculationPolicy::Enabled {
            check_secs: 5.0,
            slowdown: 0.5,
        };
        check(cfg, "slowdown");
        let mut cfg = JobConfig::new(1);
        cfg.speculation = SpeculationPolicy::Enabled {
            check_secs: f64::NAN,
            slowdown: 1.5,
        };
        check(cfg, "check_secs");

        let mut cfg = JobConfig::new(1);
        cfg.deadline = DeadlinePolicy::At { secs: -1.0 };
        check(cfg, "DeadlinePolicy");
        // A deadline without snapshots has nothing to answer with.
        let cfg = JobConfig::new(1).deadline(DeadlinePolicy::At { secs: 100.0 });
        check(cfg, "SnapshotPolicy");
    }

    #[test]
    fn speculation_and_deadline_are_off_by_default_and_builders_set_them() {
        let cfg = JobConfig::new(1);
        assert_eq!(cfg.speculation, SpeculationPolicy::Disabled);
        assert!(!cfg.speculation.is_enabled());
        assert_eq!(cfg.deadline, DeadlinePolicy::Disabled);
        assert!(!cfg.deadline.is_enabled());
        assert_eq!(cfg.deadline.secs(), None);

        let cfg = cfg
            .speculation(SpeculationPolicy::enabled())
            .snapshots(SnapshotPolicy::EverySecs { secs: 10.0 })
            .deadline(DeadlinePolicy::At { secs: 120.0 });
        assert!(cfg.speculation.is_enabled());
        assert!(cfg.deadline.is_enabled());
        assert_eq!(cfg.deadline.secs(), Some(120.0));
        cfg.validate().unwrap();
    }

    #[test]
    fn chain_defaults_are_a_barrier_with_sane_batching() {
        let chain = ChainConfig::default();
        assert_eq!(chain.handoff, HandoffMode::Barrier);
        assert!(!chain.handoff.is_streaming());
        assert_eq!(chain.handoff_batch_bytes, DEFAULT_HANDOFF_BATCH_BYTES);
        chain.validate().unwrap();
        let streaming = ChainConfig::streaming().handoff_batch_bytes(1 << 10);
        assert!(streaming.handoff.is_streaming());
        assert_eq!(streaming.handoff_batch_bytes, 1 << 10);
        streaming.validate().unwrap();
    }

    #[test]
    fn chain_zero_handoff_batch_bytes_is_rejected() {
        let mut chain = ChainConfig::streaming();
        chain.handoff_batch_bytes = 0;
        match chain.validate() {
            Err(MrError::InvalidConfig(msg)) => assert!(msg.contains("handoff_batch_bytes")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // The spec-level validate surfaces the same knob.
        let mut spec = ChainSpec::new(vec![JobConfig::new(1), JobConfig::new(1)]);
        spec.chain.handoff_batch_bytes = 0;
        assert!(matches!(spec.validate(), Err(MrError::InvalidConfig(_))));
    }

    #[test]
    fn empty_chain_is_rejected() {
        let spec = ChainSpec::new(Vec::new());
        assert!(spec.is_empty());
        assert_eq!(spec.len(), 0);
        match spec.validate() {
            Err(MrError::InvalidConfig(msg)) => assert!(msg.contains("empty chain")),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn chain_validation_covers_every_stage_config() {
        // A nonsense knob in *any* stage fails the whole spec, naming the
        // offending stage.
        let mut bad = JobConfig::new(2);
        bad.shuffle_batch_bytes = 0;
        let spec = ChainSpec::new(vec![JobConfig::new(2), bad]);
        match spec.validate() {
            Err(MrError::InvalidConfig(msg)) => {
                assert!(msg.contains("chain stage 1"), "missing stage index: {msg}");
                assert!(msg.contains("shuffle_batch_bytes"));
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        ChainSpec::new(vec![JobConfig::new(2), JobConfig::new(3)])
            .handoff(HandoffMode::Streaming)
            .validate()
            .unwrap();
    }

    #[test]
    fn fan_in_requires_matching_upstream_partition_counts() {
        // Two branches with equal reducer counts plus one downstream: OK.
        ChainSpec::new(vec![
            JobConfig::new(3),
            JobConfig::new(3),
            JobConfig::new(2),
        ])
        .validate_fan_in(2)
        .unwrap();
        // Mismatched branch partition counts: rejected.
        let spec = ChainSpec::new(vec![
            JobConfig::new(3),
            JobConfig::new(4),
            JobConfig::new(2),
        ]);
        match spec.validate_fan_in(2) {
            Err(MrError::InvalidConfig(msg)) => {
                assert!(msg.contains("mismatched partition counts"), "{msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // Wrong stage count for the declared branches: rejected.
        let spec = ChainSpec::new(vec![JobConfig::new(3), JobConfig::new(3)]);
        assert!(matches!(
            spec.validate_fan_in(2),
            Err(MrError::InvalidConfig(_))
        ));
        assert!(matches!(
            ChainSpec::new(vec![JobConfig::new(1)]).validate_fan_in(0),
            Err(MrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn tracing_is_on_by_default_and_builder_disables_it() {
        let cfg = JobConfig::new(1);
        assert_eq!(cfg.trace, TracePolicy::Enabled);
        assert!(cfg.trace.is_enabled());
        let cfg = cfg.trace(TracePolicy::Disabled);
        assert!(!cfg.trace.is_enabled());
        cfg.validate().unwrap();
    }

    #[test]
    fn combining_is_off_by_default() {
        let cfg = JobConfig::new(1);
        assert_eq!(cfg.combiner, CombinerPolicy::Disabled);
        assert!(!cfg.combiner.is_enabled());
        assert_eq!(cfg.shuffle_batch_bytes, DEFAULT_SHUFFLE_BATCH_BYTES);
        let cfg = cfg
            .combiner(CombinerPolicy::enabled())
            .shuffle_batch_bytes(1 << 10);
        assert!(cfg.combiner.is_enabled());
        assert_eq!(cfg.combiner.budget_bytes(), Some(DEFAULT_COMBINER_BUDGET));
        assert_eq!(cfg.shuffle_batch_bytes, 1 << 10);
    }

    #[test]
    fn caching_is_off_by_default() {
        let cfg = JobConfig::new(1);
        assert_eq!(cfg.cache, CacheBudget::Disabled);
        assert!(!cfg.cache.is_enabled());
        assert_eq!(cfg.cache.bytes(), None);
        let cfg = cfg.cache(CacheBudget::enabled());
        assert!(cfg.cache.is_enabled());
        assert_eq!(cfg.cache.bytes(), Some(DEFAULT_CACHE_BUDGET));
        cfg.validate().unwrap();

        let svc = ServiceConfig::new(1);
        assert_eq!(svc.cache, CacheBudget::Disabled);
        let svc = svc.cache(CacheBudget::Limit { bytes: 1 << 20 });
        assert_eq!(svc.cache.bytes(), Some(1 << 20));
        svc.validate().unwrap();
        let mut svc = ServiceConfig::new(1);
        svc.cache = CacheBudget::Limit { bytes: 0 };
        assert!(svc.validate().is_err());
    }
}
