//! Job configuration: which engine, how many reducers, how partial
//! results are stored.

use std::path::PathBuf;

/// How the barrier-less engine stores partial results (§5).
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryPolicy {
    /// Keep everything in an in-memory ordered map (the paper's TreeMap).
    /// Fails with an out-of-memory error when `heap_cap_bytes` (if set)
    /// is exceeded — reproducing Figure 5(a).
    InMemory,
    /// Disk spill and merge (§5.1): spill the sorted store to a run file
    /// when it reaches `threshold_bytes`; k-way merge runs at finalize.
    SpillMerge {
        /// Spill trigger, in *modelled* heap bytes.
        threshold_bytes: u64,
    },
    /// Disk-spilling key/value store (§5.2, BerkeleyDB stand-in): every
    /// absorb is a read-modify-update against `mr-kvstore`.
    KvStore {
        /// Record-cache budget for the store.
        cache_bytes: usize,
    },
}

/// Which execution engine runs the Reduce side.
#[derive(Debug, Clone, PartialEq)]
pub enum Engine {
    /// Classic MapReduce: full shuffle barrier, sort, grouped reduce.
    Barrier,
    /// The paper's contribution: pipelined shuffle + per-record reduce.
    BarrierLess {
        /// Partial-result storage strategy.
        memory: MemoryPolicy,
    },
}

impl Engine {
    /// Convenience: barrier-less with unbounded in-memory storage.
    pub fn barrierless() -> Engine {
        Engine::BarrierLess {
            memory: MemoryPolicy::InMemory,
        }
    }
}

/// Everything the runner needs besides the application itself.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Number of reduce tasks (partitions).
    pub reducers: usize,
    /// Engine selection.
    pub engine: Engine,
    /// Per-reduce-task heap cap in modelled bytes; `None` = unbounded.
    /// Exceeding it under `MemoryPolicy::InMemory` kills the job, exactly
    /// like the paper's JVM heap exhaustion.
    pub heap_cap_bytes: Option<u64>,
    /// Multiplier from real store bytes to modelled heap bytes. The
    /// simulator scales record volume down; this scales accounting back
    /// up so thresholds like "240 MB" stay meaningful. 1.0 for real runs.
    pub heap_scale: f64,
    /// Directory for spill files and KV-store segments.
    pub scratch_dir: PathBuf,
    /// Seed for anything stochastic inside the engines (none today, but
    /// carried so runs stay reproducible end to end).
    pub seed: u64,
}

impl JobConfig {
    /// A barrier-engine config with `reducers` partitions and defaults
    /// suitable for tests and examples.
    pub fn new(reducers: usize) -> Self {
        JobConfig {
            reducers,
            engine: Engine::Barrier,
            heap_cap_bytes: None,
            heap_scale: 1.0,
            scratch_dir: std::env::temp_dir().join("mr-scratch"),
            seed: 0,
        }
    }

    /// Sets the engine.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the per-reduce-task heap cap.
    pub fn heap_cap(mut self, bytes: u64) -> Self {
        self.heap_cap_bytes = Some(bytes);
        self
    }

    /// Sets the real-to-modelled heap scaling factor.
    pub fn heap_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.heap_scale = scale;
        self
    }

    /// Sets the scratch directory.
    pub fn scratch_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.scratch_dir = dir.into();
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = JobConfig::new(4)
            .engine(Engine::barrierless())
            .heap_cap(1 << 30)
            .heap_scale(2.0)
            .seed(9);
        assert_eq!(cfg.reducers, 4);
        assert_eq!(
            cfg.engine,
            Engine::BarrierLess {
                memory: MemoryPolicy::InMemory
            }
        );
        assert_eq!(cfg.heap_cap_bytes, Some(1 << 30));
        assert_eq!(cfg.heap_scale, 2.0);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn default_is_barrier() {
        assert_eq!(JobConfig::new(1).engine, Engine::Barrier);
    }
}
