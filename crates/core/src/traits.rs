//! The programming model: one [`Application`] trait carrying both the
//! classic grouped form and the paper's barrier-less incremental form.
//!
//! In the paper, converting an application means rewriting its `run()` and
//! `reduce()` (Algorithm 1 → Algorithm 2). Here the two forms are methods
//! on the same trait so a single app definition can run under either
//! engine and be checked for output equivalence; the per-app modules in
//! `mr-apps` keep the two forms in separate source files so Table 2's
//! lines-of-code comparison stays honest.

use crate::codec::Codec;
use crate::size::SizeEstimate;
use std::cmp::Ordering;
use std::hash::Hash;

/// Intermediate key requirements: shuffled, compared, hashed, spilled.
pub trait Key: Clone + Ord + Hash + Send + Codec + SizeEstimate + 'static {}
impl<T: Clone + Ord + Hash + Send + Codec + SizeEstimate + 'static> Key for T {}

/// Intermediate value requirements.
pub trait Value: Clone + Send + SizeEstimate + 'static {}
impl<T: Clone + Send + SizeEstimate + 'static> Value for T {}

/// Output sink passed to map / reduce functions.
pub trait Emit<K, V> {
    /// Emits one record.
    fn emit(&mut self, key: K, value: V);
}

impl<K, V> Emit<K, V> for Vec<(K, V)> {
    fn emit(&mut self, key: K, value: V) {
        self.push((key, value));
    }
}

/// Sink for an application instance's *cache identity* — the parameters
/// that shape its output. Implemented by the shared result cache's key
/// builder; applications only ever write into it through
/// [`Application::cache_identity`].
///
/// Multi-byte writes are length-prefixed by the implementation, so
/// consecutive writes cannot alias by concatenation.
pub trait IdentityWriter {
    /// Absorbs one `u64`.
    fn write_u64(&mut self, v: u64);
    /// Absorbs a byte slice.
    fn write_bytes(&mut self, bytes: &[u8]);
    /// Absorbs a string's UTF-8 bytes.
    fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }
    /// Absorbs an `i64` (two's-complement bits).
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    /// Absorbs an `f64`'s IEEE-754 bit pattern (`-0.0` ≠ `0.0`).
    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

/// An `Emit` that counts records and forwards to a closure; used by
/// engines to meter output volume.
pub struct FnEmit<F>(pub F);

impl<K, V, F: FnMut(K, V)> Emit<K, V> for FnEmit<F> {
    fn emit(&mut self, key: K, value: V) {
        (self.0)(key, value);
    }
}

/// A complete MapReduce program: the Map function plus *both* Reduce
/// forms, and the metadata the engines need (sorting contract, secondary
/// sort, cost hints live elsewhere).
///
/// # The two Reduce forms
///
/// * [`reduce_grouped`](Application::reduce_grouped) is Hadoop's contract:
///   called once per key group with every value, after the barrier.
/// * [`init`](Application::init) / [`absorb`](Application::absorb) /
///   [`merge`](Application::merge) / [`finalize`](Application::finalize)
///   is the barrier-less contract: `absorb` is called once per *record* in
///   arrival order, updating a per-key partial result ([`Application::State`]);
///   `finalize` runs when all input has been seen. `merge` combines two
///   partial results for the same key — the spill-and-merge store needs it
///   (the paper notes this function "is often functionally the same as the
///   combiner", §5.1).
///
/// # Per-reducer shared state
///
/// Cross-key operations (§4.6) and single-reducer aggregations (§4.7) keep
/// state *across* keys — a window of individuals, a running sum — rather
/// than per key. [`Application::Shared`] models that: one value per reduce
/// task, threaded through every call, flushed at the end. Applications
/// whose classes need no per-key store return `false` from
/// [`uses_keyed_state`](Application::uses_keyed_state) and the engine
/// skips the store entirely, giving the O(1)/O(window) memory of Table 1.
pub trait Application: Send + Sync + 'static {
    /// Input key (e.g. document id).
    type InKey: Clone + Send + Sync + 'static;
    /// Input value (e.g. document text).
    type InValue: Clone + Send + Sync + 'static;
    /// Intermediate (shuffle) key.
    type MapKey: Key;
    /// Intermediate (shuffle) value.
    type MapValue: Value;
    /// Final output key.
    type OutKey: Clone + Ord + Send + 'static;
    /// Final output value.
    type OutValue: Clone + Send + 'static;
    /// Per-key partial result (barrier-less engine).
    type State: SizeEstimate + Codec + Send + 'static;
    /// Per-reduce-task state shared across keys.
    type Shared: Send + 'static;

    /// The Map function.
    fn map(
        &self,
        key: &Self::InKey,
        value: &Self::InValue,
        out: &mut dyn Emit<Self::MapKey, Self::MapValue>,
    );

    /// Fresh shared state for one reduce task.
    fn new_shared(&self) -> Self::Shared;

    /// Classic barrier-mode Reduce: one call per key group.
    fn reduce_grouped(
        &self,
        key: &Self::MapKey,
        values: Vec<Self::MapValue>,
        shared: &mut Self::Shared,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    );

    /// Whether the barrier-less engine keeps a per-key partial result.
    /// Identity, cross-key and single-reducer-aggregation classes say no.
    fn uses_keyed_state(&self) -> bool {
        true
    }

    /// A fresh partial result for `key` (barrier-less engine).
    fn init(&self, key: &Self::MapKey) -> Self::State;

    /// Folds one record into the partial result (barrier-less engine).
    fn absorb(
        &self,
        key: &Self::MapKey,
        state: &mut Self::State,
        value: Self::MapValue,
        shared: &mut Self::Shared,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    );

    /// Combines two partial results for the same key (spill-and-merge).
    fn merge(&self, key: &Self::MapKey, a: Self::State, b: Self::State) -> Self::State;

    /// Emits the final output for `key` once all records are absorbed.
    fn finalize(
        &self,
        key: Self::MapKey,
        state: Self::State,
        shared: &mut Self::Shared,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    );

    /// Flushes shared state at end of task (window remnants, running sums).
    fn flush_shared(&self, shared: Self::Shared, out: &mut dyn Emit<Self::OutKey, Self::OutValue>) {
        let _ = (shared, out);
    }

    /// Total order used by the barrier engine's sort. Defaults to key
    /// order; override for Hadoop-style *secondary sort* (e.g. kNN sorts
    /// composite keys by distance).
    fn sort_cmp(
        &self,
        a: &(Self::MapKey, Self::MapValue),
        b: &(Self::MapKey, Self::MapValue),
    ) -> Ordering {
        a.0.cmp(&b.0)
    }

    /// Grouping predicate used by the barrier engine after sorting.
    /// Defaults to key equality; override together with
    /// [`sort_cmp`](Application::sort_cmp) for secondary sort.
    fn group_eq(&self, a: &Self::MapKey, b: &Self::MapKey) -> bool {
        a == b
    }

    /// Whether the job's contract includes key-sorted output (the Sorting
    /// class). The barrier engine gets this for free; the barrier-less
    /// engine must pay for it in the Reduce function.
    fn requires_sorted_output(&self) -> bool {
        false
    }

    /// Whether the map side may pre-aggregate this application's records
    /// with a combiner derived from the incremental form (the paper notes
    /// `merge` "is often functionally the same as the combiner", §5.1).
    ///
    /// Returning `true` is a contract with three clauses, all required
    /// for the byte-exact output invariant to survive combining:
    ///
    /// 1. [`absorb`](Application::absorb) is a *pure fold* into
    ///    `State` — it emits no output and ignores `shared`;
    /// 2. absorbing values is order-insensitive (the combiner reorders
    ///    records within a map task);
    /// 3. [`combiner_emit`](Application::combiner_emit) re-encodes a
    ///    partial result as shuffle records that, absorbed or grouped
    ///    downstream, yield exactly the output the raw records would
    ///    have. Deterministic emission order is required so re-run map
    ///    tasks reproduce identical output for fault recovery.
    ///
    /// Requires [`uses_keyed_state`](Application::uses_keyed_state);
    /// unkeyed applications have nothing to combine per key.
    fn combine_enabled(&self) -> bool {
        false
    }

    /// Converts one combined partial result back into shuffle records.
    /// Called when the map-side [`CombinerBuffer`](crate::combine::CombinerBuffer)
    /// drains; must be overridden by applications returning `true` from
    /// [`combine_enabled`](Application::combine_enabled).
    fn combiner_emit(
        &self,
        key: &Self::MapKey,
        state: Self::State,
        out: &mut dyn Emit<Self::MapKey, Self::MapValue>,
    ) {
        let _ = (key, state, out);
        unimplemented!("combine_enabled() applications must implement combiner_emit()")
    }

    /// Emits this key's contribution to a *snapshot* — an early estimate
    /// of the final answer built from the live partial result, published
    /// mid-job under a [`SnapshotPolicy`](crate::SnapshotPolicy).
    ///
    /// The default clones the partial result through its [`Codec`]
    /// round-trip and runs [`finalize`](Application::finalize) on the
    /// clone against throwaway shared state, so any application whose
    /// finalize is a pure projection of `State` gets snapshots for free.
    /// Override to emit a cheaper or smarter estimate (e.g. confidence
    /// bounds). Must not mutate anything: snapshots are read-only over a
    /// frozen view and may never perturb the final output.
    fn snapshot_emit(
        &self,
        key: &Self::MapKey,
        state: &Self::State,
        out: &mut dyn Emit<Self::OutKey, Self::OutValue>,
    ) {
        let mut scratch = self.new_shared();
        let bytes = state.to_bytes();
        // An asymmetric State codec is an application bug (the spill
        // store's round-trips would corrupt output too); fail loudly
        // rather than silently omit the key from the estimate.
        let clone = Self::State::from_bytes(&bytes).unwrap_or_else(|e| {
            panic!(
                "snapshot_emit: State codec round-trip failed ({e}); \
                 a lossless encode/decode pair is required"
            )
        });
        self.finalize(key.clone(), clone, &mut scratch, out);
    }

    /// Accuracy of a snapshot `estimate` against the final `truth`, as an
    /// error in `[0, 1]` (0 = exact). Both slices must be in canonical
    /// key-sorted order (what
    /// [`JobOutput::into_sorted_output`](crate::JobOutput::into_sorted_output)
    /// yields). The default measures key coverage — the fraction of final
    /// output keys the estimate has *not* produced yet — which is
    /// meaningful for any application; apps override it with a
    /// value-aware metric (WordCount uses relative count error, kNN the
    /// fraction of wrong neighbours).
    fn snapshot_error(
        &self,
        estimate: &[(Self::OutKey, Self::OutValue)],
        truth: &[(Self::OutKey, Self::OutValue)],
    ) -> f64 {
        if truth.is_empty() {
            return 0.0;
        }
        let mut covered = 0usize;
        let mut total = 0usize;
        let mut est = estimate.iter().map(|(k, _)| k).peekable();
        let mut last: Option<&Self::OutKey> = None;
        for (key, _) in truth {
            if last.is_some_and(|l| l == key) {
                continue; // count each distinct truth key once
            }
            last = Some(key);
            total += 1;
            while est.peek().is_some_and(|e| *e < key) {
                est.next();
            }
            if est.peek().is_some_and(|e| *e == key) {
                covered += 1;
            }
        }
        1.0 - covered as f64 / total as f64
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str {
        "application"
    }

    /// Folds this *instance's* parameters — every field that changes map
    /// or reduce output — into the shared result cache's key, returning
    /// `true` iff the identity is complete.
    ///
    /// The cache keys artifacts by input content plus application
    /// identity; two instances whose outputs can differ must never key
    /// identically (`Grep { pattern: "foo" }` vs `"bar"`, `TopK { k: 5 }`
    /// vs `{ k: 10 }`). The type name alone cannot see instance fields,
    /// so parameterized applications must write each output-shaping
    /// field here.
    ///
    /// The default returns `true` only for zero-sized types — a unit
    /// struct provably carries no parameters to omit — and `false`
    /// otherwise, which makes every cached entry point
    /// ([`LocalRunner::run_cached`], `serve`) **bypass the cache** for
    /// that application (counted as `cache.bypass.count`) rather than
    /// risk serving another configuration's results. Overriding this is
    /// how a parameterized application opts in.
    ///
    /// [`LocalRunner::run_cached`]: crate::local::LocalRunner::run_cached
    fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool
    where
        Self: Sized,
    {
        let _ = w;
        std::mem::size_of::<Self>() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_emit_collects() {
        let mut out: Vec<(u32, u32)> = Vec::new();
        out.emit(1, 2);
        out.emit(3, 4);
        assert_eq!(out, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn fn_emit_forwards() {
        let mut n = 0u32;
        {
            let mut sink = FnEmit(|k: u32, v: u32| n += k + v);
            sink.emit(1, 2);
            sink.emit(10, 20);
        }
        assert_eq!(n, 33);
    }
}
