//! Barrier-mode reduce: sort, group, reduce (Figure 2 of the paper).

use crate::counters::{names, Counters};
use crate::error::MrResult;
use crate::traits::Application;

/// Runs one reduce partition the classic way.
///
/// `records` is everything the shuffle delivered for this partition, in
/// arbitrary arrival order. The engine sorts it with the application's
/// [`sort_cmp`](Application::sort_cmp) (stable, like Hadoop's merge sort —
/// this is what secondary sort relies on), walks key groups using
/// [`group_eq`](Application::group_eq), and hands each group to
/// `reduce_grouped`.
pub fn reduce_partition_barrier<A: Application>(
    app: &A,
    mut records: Vec<(A::MapKey, A::MapValue)>,
    counters: &mut Counters,
) -> MrResult<Vec<(A::OutKey, A::OutValue)>> {
    counters.add(names::REDUCE_INPUT_RECORDS, records.len() as u64);
    // Hadoop merge-sorts the fetched map outputs at the barrier; a stable
    // sort keeps equal sort-keys in fetch order, which secondary-sort
    // applications depend on.
    records.sort_by(|a, b| app.sort_cmp(a, b));

    let mut out: Vec<(A::OutKey, A::OutValue)> = Vec::new();
    let mut shared = app.new_shared();
    let mut iter = records.into_iter().peekable();
    while let Some((key, value)) = iter.next() {
        let mut values = vec![value];
        while let Some((next_key, _)) = iter.peek() {
            if app.group_eq(&key, next_key) {
                let (_, v) = iter.next().expect("peeked");
                values.push(v);
            } else {
                break;
            }
        }
        counters.incr(names::REDUCE_GROUPS);
        app.reduce_grouped(&key, values, &mut shared, &mut out);
    }
    app.flush_shared(shared, &mut out);
    counters.add(names::REDUCE_OUTPUT_RECORDS, out.len() as u64);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{SecondaryMax, WordCountApp};

    #[test]
    fn groups_all_values_per_key() {
        let app = WordCountApp;
        let records = vec![
            ("b".to_string(), 1u64),
            ("a".to_string(), 1),
            ("b".to_string(), 1),
            ("a".to_string(), 1),
            ("a".to_string(), 1),
        ];
        let mut counters = Counters::new();
        let out = reduce_partition_barrier(&app, records, &mut counters).unwrap();
        assert_eq!(out, vec![("a".to_string(), 3), ("b".to_string(), 2)]);
        assert_eq!(counters.get(names::REDUCE_GROUPS), 2);
        assert_eq!(counters.get(names::REDUCE_INPUT_RECORDS), 5);
        assert_eq!(counters.get(names::REDUCE_OUTPUT_RECORDS), 2);
    }

    #[test]
    fn output_is_key_sorted_for_free() {
        let app = WordCountApp;
        let records: Vec<(String, u64)> = ["zeta", "alpha", "mid", "alpha"]
            .iter()
            .map(|w| (w.to_string(), 1))
            .collect();
        let out = reduce_partition_barrier(&app, records, &mut Counters::new()).unwrap();
        let keys: Vec<&str> = out.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn empty_partition_produces_nothing() {
        let app = WordCountApp;
        let out = reduce_partition_barrier(&app, Vec::new(), &mut Counters::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn secondary_sort_orders_within_group() {
        // SecondaryMax uses composite (group, metric) keys sorted by
        // metric descending within a group; the reducer takes the first
        // value per group — Hadoop's classic top-1 selection pattern.
        let app = SecondaryMax;
        let records = vec![
            ((1u64, 5i64), 50i64),
            ((2u64, 9i64), 90),
            ((1u64, 8i64), 80),
            ((1u64, 2i64), 20),
            ((2u64, 1i64), 10),
        ];
        let out = reduce_partition_barrier(&app, records, &mut Counters::new()).unwrap();
        assert_eq!(out, vec![(1, 80), (2, 90)]);
    }
}
