//! Barrier-less reduce: record-at-a-time with a partial-result store
//! (Figure 3 of the paper).

use crate::config::{Engine, JobConfig, MemoryPolicy};
use crate::counters::{names, Counters};
use crate::error::MrResult;
use crate::store::{make_store, PartialStore, StoreReport};
use crate::traits::{Application, Emit};

/// What a finished driver reports to the executor.
#[derive(Debug, Clone, Default)]
pub struct DriverReport {
    /// Records absorbed.
    pub records: u64,
    /// Store statistics (zeroed for unkeyed applications).
    pub store: StoreReport,
}

/// Drives one barrier-less reduce partition.
///
/// The executor feeds records in shuffle-arrival order via
/// [`push`](IncrementalDriver::push); each becomes a `reduce` invocation on
/// a single record, as in the paper's modified `run()` (Algorithm 2). When
/// the shuffle is drained, [`finish`](IncrementalDriver::finish) replays
/// the paper's end-of-input phase: merge spills if any, finalize every key
/// in key order, then flush cross-key shared state.
pub struct IncrementalDriver<A: Application> {
    /// `None` for applications that keep no per-key state (Identity,
    /// cross-key, single-reducer aggregation — Table 1's O(1)/O(window)).
    store: Option<Box<dyn PartialStore<A>>>,
    shared: A::Shared,
    records: u64,
}

impl<A: Application> IncrementalDriver<A> {
    /// Builds the driver for reduce partition `reducer` under `cfg`.
    ///
    /// # Panics
    /// If `cfg.engine` is not `Engine::BarrierLess` — the executor picked
    /// the wrong engine module.
    pub fn new(app: &A, cfg: &JobConfig, reducer: usize) -> MrResult<Self> {
        let Engine::BarrierLess { memory } = &cfg.engine else {
            panic!("IncrementalDriver requires the barrier-less engine");
        };
        let store = if app.uses_keyed_state() {
            Some(make_store::<A>(memory, cfg, reducer)?)
        } else {
            None
        };
        Ok(IncrementalDriver {
            store,
            shared: app.new_shared(),
            records: 0,
        })
    }

    /// Absorbs one record, in arrival order.
    pub fn push(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()> {
        self.records += 1;
        match &mut self.store {
            Some(store) => store.absorb(app, key, value, &mut self.shared, out),
            None => {
                // No keyed state: absorb against a throwaway state; the
                // application works through `shared` and `out`.
                let mut scratch = app.init(&key);
                app.absorb(&key, &mut scratch, value, &mut self.shared, out);
                Ok(())
            }
        }
    }

    /// Current modelled heap footprint (for Figure 5 sampling).
    pub fn modelled_bytes(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.modelled_bytes())
    }

    /// Live partial results right now.
    pub fn entries(&self) -> usize {
        self.store.as_ref().map_or(0, |s| s.entries())
    }

    /// Cumulative store disk traffic so far (spills, KV log I/O).
    pub fn io_bytes(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.io_bytes())
    }

    /// Ends the task: merge + finalize + flush shared state.
    pub fn finish(
        self,
        app: &A,
        counters: &mut Counters,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<DriverReport> {
        let mut shared = self.shared;
        let store_report = match self.store {
            Some(store) => store.finalize_into(app, &mut shared, out)?,
            None => StoreReport::default(),
        };
        app.flush_shared(shared, out);
        counters.add(names::REDUCE_INPUT_RECORDS, self.records);
        counters.add(names::SPILL_FILES, store_report.spill_files);
        counters.add(names::SPILL_BYTES, store_report.spill_bytes);
        counters.add(names::SPILL_MERGED_STATES, store_report.merged_states);
        if let Some(kv) = &store_report.kv_stats {
            counters.add(names::KV_CACHE_HITS, kv.cache_hits);
            counters.add(names::KV_CACHE_MISSES, kv.cache_misses);
        }
        Ok(DriverReport {
            records: self.records,
            store: store_report,
        })
    }
}

/// Convenience used by tests and the simulator: run a whole partition's
/// records through a fresh driver in one call.
#[allow(clippy::type_complexity)]
pub fn reduce_partition_barrierless<A: Application>(
    app: &A,
    cfg: &JobConfig,
    reducer: usize,
    records: Vec<(A::MapKey, A::MapValue)>,
    counters: &mut Counters,
) -> MrResult<(Vec<(A::OutKey, A::OutValue)>, DriverReport)> {
    let mut driver = IncrementalDriver::new(app, cfg, reducer)?;
    let mut out = Vec::new();
    for (key, value) in records {
        driver.push(app, key, value, &mut out)?;
    }
    let report = driver.finish(app, counters, &mut out)?;
    counters.add(names::REDUCE_OUTPUT_RECORDS, out.len() as u64);
    Ok((out, report))
}

/// Re-exported policy helper: the three §5 policies with sane test sizes.
pub fn all_policies(spill_threshold: u64, kv_cache: usize) -> Vec<MemoryPolicy> {
    vec![
        MemoryPolicy::InMemory,
        MemoryPolicy::SpillMerge {
            threshold_bytes: spill_threshold,
        },
        MemoryPolicy::KvStore {
            cache_bytes: kv_cache,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{scratch_dir, WordCountApp};

    fn barrierless_cfg(policy: MemoryPolicy) -> JobConfig {
        JobConfig::new(1)
            .engine(Engine::BarrierLess { memory: policy })
            .scratch_dir(scratch_dir("pipeline"))
    }

    /// `rounds` records over `rounds / 2 + 1` distinct keys, interleaved so
    /// most keys repeat: a realistic aggregation working set.
    fn wc_records(rounds: u64) -> Vec<(String, u64)> {
        let distinct = rounds / 2 + 1;
        (0..rounds)
            .map(|i| (format!("word-{:06}", (i * 7919) % distinct), 1u64))
            .collect()
    }

    fn expected_counts(records: &[(String, u64)]) -> Vec<(String, u64)> {
        let mut m = std::collections::BTreeMap::new();
        for (k, v) in records {
            *m.entry(k.clone()).or_insert(0) += v;
        }
        m.into_iter().collect()
    }

    #[test]
    fn all_three_policies_agree_with_each_other() {
        let records = wc_records(50);
        let expect = expected_counts(&records);
        for policy in all_policies(2_000, 512) {
            let cfg = barrierless_cfg(policy.clone());
            let mut counters = Counters::new();
            let (out, report) = reduce_partition_barrierless(
                &WordCountApp,
                &cfg,
                0,
                records.clone(),
                &mut counters,
            )
            .unwrap();
            assert_eq!(out, expect, "policy {policy:?} diverged");
            assert_eq!(report.records, records.len() as u64);
            assert_eq!(
                counters.get(names::REDUCE_INPUT_RECORDS),
                records.len() as u64
            );
        }
    }

    #[test]
    fn spill_policy_actually_spills_and_merges() {
        let records = wc_records(200);
        let expect = expected_counts(&records);
        // Threshold far below the working set forces many runs.
        let cfg = barrierless_cfg(MemoryPolicy::SpillMerge {
            threshold_bytes: 600,
        });
        let mut counters = Counters::new();
        let (out, report) =
            reduce_partition_barrierless(&WordCountApp, &cfg, 0, records, &mut counters).unwrap();
        assert_eq!(out, expect);
        assert!(report.store.spill_files > 1, "expected multiple spills");
        assert!(counters.get(names::SPILL_MERGED_STATES) > 0);
        assert!(counters.get(names::SPILL_BYTES) > 0);
    }

    #[test]
    fn oom_kills_the_task_under_inmemory_cap() {
        let records = wc_records(500);
        let mut cfg = barrierless_cfg(MemoryPolicy::InMemory);
        cfg.heap_cap_bytes = Some(400);
        let result =
            reduce_partition_barrierless(&WordCountApp, &cfg, 3, records, &mut Counters::new());
        match result {
            Err(crate::error::MrError::OutOfMemory { reducer, .. }) => assert_eq!(reducer, 3),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn spill_survives_where_inmemory_dies() {
        // Same data, same cap mindset: the spill policy must complete.
        let records = wc_records(500);
        let expect = expected_counts(&records);
        let cfg = barrierless_cfg(MemoryPolicy::SpillMerge {
            threshold_bytes: 400,
        });
        let (out, _) =
            reduce_partition_barrierless(&WordCountApp, &cfg, 0, records, &mut Counters::new())
                .unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn kv_policy_reports_cache_stats() {
        let records = wc_records(100);
        let cfg = barrierless_cfg(MemoryPolicy::KvStore { cache_bytes: 4096 });
        let mut counters = Counters::new();
        let (_, report) =
            reduce_partition_barrierless(&WordCountApp, &cfg, 0, records, &mut counters).unwrap();
        let kv = report.store.kv_stats.expect("kv stats present");
        assert!(kv.puts > 0);
        assert!(kv.gets > 0);
        assert!(counters.get(names::KV_CACHE_HITS) + counters.get(names::KV_CACHE_MISSES) > 0);
    }

    #[test]
    fn heap_tracking_is_visible_mid_stream() {
        let cfg = barrierless_cfg(MemoryPolicy::InMemory);
        let mut driver = IncrementalDriver::new(&WordCountApp, &cfg, 0).unwrap();
        let mut out = Vec::new();
        assert_eq!(driver.modelled_bytes(), 0);
        for i in 0..100u64 {
            driver
                .push(&WordCountApp, format!("key-{i}"), 1, &mut out)
                .unwrap();
        }
        assert!(driver.modelled_bytes() > 0);
        assert_eq!(driver.entries(), 100);
        let report = driver
            .finish(&WordCountApp, &mut Counters::new(), &mut out)
            .unwrap();
        assert_eq!(report.store.peak_entries, 100);
    }
}
