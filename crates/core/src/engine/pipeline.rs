//! Barrier-less reduce: record-at-a-time with a partial-result store
//! (Figure 3 of the paper).

use crate::config::{Engine, JobConfig, MemoryPolicy, SnapshotPolicy};
use crate::counters::{names, Counters};
use crate::error::MrResult;
use crate::snapshot::Snapshot;
use crate::store::{make_store, PartialStore, StoreReport};
use crate::traits::{Application, Emit};

/// What a finished driver reports to the executor.
#[derive(Debug, Clone, Default)]
pub struct DriverReport {
    /// Records absorbed.
    pub records: u64,
    /// Store statistics (zeroed for unkeyed applications).
    pub store: StoreReport,
}

/// Drives one barrier-less reduce partition.
///
/// The executor feeds records in shuffle-arrival order via
/// [`push`](IncrementalDriver::push); each becomes a `reduce` invocation on
/// a single record, as in the paper's modified `run()` (Algorithm 2). When
/// the shuffle is drained, [`finish`](IncrementalDriver::finish) replays
/// the paper's end-of-input phase: merge spills if any, finalize every key
/// in key order, then flush cross-key shared state.
pub struct IncrementalDriver<A: Application> {
    /// `None` for applications that keep no per-key state (Identity,
    /// cross-key, single-reducer aggregation — Table 1's O(1)/O(window)).
    store: Option<Box<dyn PartialStore<A>>>,
    shared: A::Shared,
    records: u64,
    reducer: usize,
    /// Snapshot policy for this task (from the effective `JobConfig`).
    policy: SnapshotPolicy,
    /// Snapshots published but not yet collected by the executor.
    snapshots: Vec<Snapshot<A>>,
    /// Next sequence number; starts at the fault-recovery base so a
    /// restarted attempt never regresses its predecessor's numbering.
    next_seq: u64,
    /// Next records-absorbed threshold for `EveryRecords`.
    next_at_records: u64,
    /// Next time threshold for `EverySecs` (driven by the executor via
    /// [`maybe_time_snapshot`](IncrementalDriver::maybe_time_snapshot)).
    next_at_secs: f64,
    /// Executor-stamped clock: wall seconds since task start (local) or
    /// virtual sim seconds (cluster). Metadata only.
    now_secs: f64,
    snap_count: u64,
    snap_records: u64,
    snap_bytes: u64,
}

impl<A: Application> IncrementalDriver<A> {
    /// Builds the driver for reduce partition `reducer` under `cfg`.
    ///
    /// # Panics
    /// If `cfg.engine` is not `Engine::BarrierLess` — the executor picked
    /// the wrong engine module.
    pub fn new(app: &A, cfg: &JobConfig, reducer: usize) -> MrResult<Self> {
        let Engine::BarrierLess { memory } = &cfg.engine else {
            panic!("IncrementalDriver requires the barrier-less engine");
        };
        let store = if app.uses_keyed_state() {
            Some(make_store::<A>(memory, cfg, reducer)?)
        } else {
            None
        };
        Ok(IncrementalDriver {
            store,
            shared: app.new_shared(),
            records: 0,
            reducer,
            policy: cfg.snapshots,
            snapshots: Vec::new(),
            next_seq: 0,
            next_at_records: cfg.snapshots.record_interval().unwrap_or(u64::MAX),
            next_at_secs: cfg.snapshots.secs_interval().unwrap_or(f64::INFINITY),
            now_secs: 0.0,
            snap_count: 0,
            snap_records: 0,
            snap_bytes: 0,
        })
    }

    /// Absorbs one record, in arrival order. Under
    /// [`SnapshotPolicy::EveryRecords`] the driver publishes a snapshot
    /// the moment the interval is crossed — deterministically, since the
    /// trigger depends only on the record stream.
    pub fn push(
        &mut self,
        app: &A,
        key: A::MapKey,
        value: A::MapValue,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<()> {
        self.records += 1;
        match &mut self.store {
            Some(store) => store.absorb(app, key, value, &mut self.shared, out)?,
            None => {
                // No keyed state: absorb against a throwaway state; the
                // application works through `shared` and `out`.
                let mut scratch = app.init(&key);
                app.absorb(&key, &mut scratch, value, &mut self.shared, out);
            }
        }
        if self.records >= self.next_at_records {
            let interval = self.policy.record_interval().expect("threshold finite");
            self.next_at_records = self.records + interval;
            self.snapshot_now(app)?;
        }
        Ok(())
    }

    /// Stamps the driver's clock (wall seconds since task start under
    /// the local executor, virtual seconds under the simulator) so
    /// snapshots carry a meaningful `at_secs`. Metadata only.
    pub fn set_now_secs(&mut self, secs: f64) {
        self.now_secs = secs;
    }

    /// Fault recovery: a restarted reduce attempt resumes snapshot
    /// numbering at `seq` so published sequence numbers never regress
    /// across re-runs.
    pub fn set_snapshot_seq_base(&mut self, seq: u64) {
        self.next_seq = self.next_seq.max(seq);
    }

    /// The next sequence number this driver would publish.
    pub fn snapshot_seq(&self) -> u64 {
        self.next_seq
    }

    /// Snapshots published so far (collected or not).
    pub fn snapshot_count_total(&self) -> u64 {
        self.snap_count
    }

    /// Estimated output records emitted across all snapshots so far.
    pub fn snapshot_records_total(&self) -> u64 {
        self.snap_records
    }

    /// Publishes a snapshot right now, regardless of policy (the
    /// `OnDemand` entry point; also used by executors for time-driven
    /// ticks and the end-of-input final snapshot). The store is walked
    /// as a frozen view — absorb state, spill cadence and final output
    /// are untouched.
    pub fn snapshot_now(&mut self, app: &A) -> MrResult<()> {
        let mut estimate = Vec::new();
        let mut bytes = 0u64;
        let mut live_entries = 0usize;
        if let Some(store) = &mut self.store {
            live_entries = store.entries();
            bytes = store.snapshot_into(app, &mut estimate)?;
        }
        self.snap_count += 1;
        self.snap_records += estimate.len() as u64;
        self.snap_bytes += bytes;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.snapshots.push(Snapshot {
            reducer: self.reducer,
            seq,
            records_absorbed: self.records,
            live_entries,
            at_secs: self.now_secs,
            estimate,
        });
        Ok(())
    }

    /// Publishes a snapshot if an `EverySecs` interval elapsed by
    /// `now_secs`. Executors call this between batches; the local runner
    /// feeds wall time, the simulator virtual time.
    pub fn maybe_time_snapshot(&mut self, app: &A, now_secs: f64) -> MrResult<()> {
        self.now_secs = now_secs;
        if now_secs >= self.next_at_secs {
            let interval = self.policy.secs_interval().expect("threshold finite");
            // Re-arm relative to *now*: a long stall must not produce a
            // burst of identical catch-up snapshots.
            self.next_at_secs = now_secs + interval;
            self.snapshot_now(app)?;
        }
        Ok(())
    }

    /// Moves every published-but-uncollected snapshot out of the driver.
    pub fn take_snapshots(&mut self) -> Vec<Snapshot<A>> {
        std::mem::take(&mut self.snapshots)
    }

    /// Current modelled heap footprint (for Figure 5 sampling).
    pub fn modelled_bytes(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.modelled_bytes())
    }

    /// Live partial results right now.
    pub fn entries(&self) -> usize {
        self.store.as_ref().map_or(0, |s| s.entries())
    }

    /// Cumulative store disk traffic so far (spills, KV log I/O).
    pub fn io_bytes(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.io_bytes())
    }

    /// Ends the task: merge + finalize + flush shared state.
    pub fn finish(
        self,
        app: &A,
        counters: &mut Counters,
        out: &mut dyn Emit<A::OutKey, A::OutValue>,
    ) -> MrResult<DriverReport> {
        let mut shared = self.shared;
        let store_report = match self.store {
            Some(store) => store.finalize_into(app, &mut shared, out)?,
            None => StoreReport::default(),
        };
        app.flush_shared(shared, out);
        counters.add(names::REDUCE_INPUT_RECORDS, self.records);
        counters.add(names::SPILL_FILES, store_report.spill_files);
        counters.add(names::SPILL_BYTES, store_report.spill_bytes);
        counters.add(names::SPILL_MERGED_STATES, store_report.merged_states);
        if let Some(kv) = &store_report.kv_stats {
            counters.add(names::KV_CACHE_HITS, kv.cache_hits);
            counters.add(names::KV_CACHE_MISSES, kv.cache_misses);
        }
        counters.add(names::SNAPSHOT_COUNT, self.snap_count);
        counters.add(names::SNAPSHOT_RECORDS, self.snap_records);
        counters.add(names::SNAPSHOT_BYTES, self.snap_bytes);
        Ok(DriverReport {
            records: self.records,
            store: store_report,
        })
    }
}

/// Convenience used by tests and the simulator: run a whole partition's
/// records through a fresh driver in one call.
#[allow(clippy::type_complexity)]
pub fn reduce_partition_barrierless<A: Application>(
    app: &A,
    cfg: &JobConfig,
    reducer: usize,
    records: Vec<(A::MapKey, A::MapValue)>,
    counters: &mut Counters,
) -> MrResult<(Vec<(A::OutKey, A::OutValue)>, DriverReport)> {
    let (out, report, _) =
        reduce_partition_barrierless_traced(app, cfg, reducer, records, counters)?;
    Ok((out, report))
}

/// Like [`reduce_partition_barrierless`], additionally returning every
/// snapshot the task published. Under a periodic policy a final snapshot
/// is taken at end-of-input, so the last snapshot always equals the
/// finalize output for applications whose finalize is a pure projection.
#[allow(clippy::type_complexity)]
pub fn reduce_partition_barrierless_traced<A: Application>(
    app: &A,
    cfg: &JobConfig,
    reducer: usize,
    records: Vec<(A::MapKey, A::MapValue)>,
    counters: &mut Counters,
) -> MrResult<(
    Vec<(A::OutKey, A::OutValue)>,
    DriverReport,
    Vec<Snapshot<A>>,
)> {
    let mut driver = IncrementalDriver::new(app, cfg, reducer)?;
    let mut out = Vec::new();
    for (key, value) in records {
        driver.push(app, key, value, &mut out)?;
    }
    if cfg.snapshots.is_periodic() {
        driver.snapshot_now(app)?;
    }
    let snapshots = driver.take_snapshots();
    let report = driver.finish(app, counters, &mut out)?;
    counters.add(names::REDUCE_OUTPUT_RECORDS, out.len() as u64);
    Ok((out, report, snapshots))
}

/// Re-exported policy helper: the three §5 policies with sane test sizes.
pub fn all_policies(spill_threshold: u64, kv_cache: usize) -> Vec<MemoryPolicy> {
    vec![
        MemoryPolicy::InMemory,
        MemoryPolicy::SpillMerge {
            threshold_bytes: spill_threshold,
        },
        MemoryPolicy::KvStore {
            cache_bytes: kv_cache,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{scratch_dir, WordCountApp};

    fn barrierless_cfg(policy: MemoryPolicy) -> JobConfig {
        JobConfig::new(1)
            .engine(Engine::BarrierLess { memory: policy })
            .scratch_dir(scratch_dir("pipeline"))
    }

    /// `rounds` records over `rounds / 2 + 1` distinct keys, interleaved so
    /// most keys repeat: a realistic aggregation working set.
    fn wc_records(rounds: u64) -> Vec<(String, u64)> {
        let distinct = rounds / 2 + 1;
        (0..rounds)
            .map(|i| (format!("word-{:06}", (i * 7919) % distinct), 1u64))
            .collect()
    }

    fn expected_counts(records: &[(String, u64)]) -> Vec<(String, u64)> {
        let mut m = std::collections::BTreeMap::new();
        for (k, v) in records {
            *m.entry(k.clone()).or_insert(0) += v;
        }
        m.into_iter().collect()
    }

    #[test]
    fn all_three_policies_agree_with_each_other() {
        let records = wc_records(50);
        let expect = expected_counts(&records);
        for policy in all_policies(2_000, 512) {
            let cfg = barrierless_cfg(policy.clone());
            let mut counters = Counters::new();
            let (out, report) = reduce_partition_barrierless(
                &WordCountApp,
                &cfg,
                0,
                records.clone(),
                &mut counters,
            )
            .unwrap();
            assert_eq!(out, expect, "policy {policy:?} diverged");
            assert_eq!(report.records, records.len() as u64);
            assert_eq!(
                counters.get(names::REDUCE_INPUT_RECORDS),
                records.len() as u64
            );
        }
    }

    #[test]
    fn spill_policy_actually_spills_and_merges() {
        let records = wc_records(200);
        let expect = expected_counts(&records);
        // Threshold far below the working set forces many runs.
        let cfg = barrierless_cfg(MemoryPolicy::SpillMerge {
            threshold_bytes: 600,
        });
        let mut counters = Counters::new();
        let (out, report) =
            reduce_partition_barrierless(&WordCountApp, &cfg, 0, records, &mut counters).unwrap();
        assert_eq!(out, expect);
        assert!(report.store.spill_files > 1, "expected multiple spills");
        assert!(counters.get(names::SPILL_MERGED_STATES) > 0);
        assert!(counters.get(names::SPILL_BYTES) > 0);
    }

    #[test]
    fn oom_kills_the_task_under_inmemory_cap() {
        let records = wc_records(500);
        let mut cfg = barrierless_cfg(MemoryPolicy::InMemory);
        cfg.heap_cap_bytes = Some(400);
        let result =
            reduce_partition_barrierless(&WordCountApp, &cfg, 3, records, &mut Counters::new());
        match result {
            Err(crate::error::MrError::OutOfMemory { reducer, .. }) => assert_eq!(reducer, 3),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn spill_survives_where_inmemory_dies() {
        // Same data, same cap mindset: the spill policy must complete.
        let records = wc_records(500);
        let expect = expected_counts(&records);
        let cfg = barrierless_cfg(MemoryPolicy::SpillMerge {
            threshold_bytes: 400,
        });
        let (out, _) =
            reduce_partition_barrierless(&WordCountApp, &cfg, 0, records, &mut Counters::new())
                .unwrap();
        assert_eq!(out, expect);
    }

    #[test]
    fn kv_policy_reports_cache_stats() {
        let records = wc_records(100);
        let cfg = barrierless_cfg(MemoryPolicy::KvStore { cache_bytes: 4096 });
        let mut counters = Counters::new();
        let (_, report) =
            reduce_partition_barrierless(&WordCountApp, &cfg, 0, records, &mut counters).unwrap();
        let kv = report.store.kv_stats.expect("kv stats present");
        assert!(kv.puts > 0);
        assert!(kv.gets > 0);
        assert!(counters.get(names::KV_CACHE_HITS) + counters.get(names::KV_CACHE_MISSES) > 0);
    }

    #[test]
    fn record_interval_snapshots_fire_deterministically() {
        let mut cfg = barrierless_cfg(MemoryPolicy::InMemory);
        cfg.snapshots = SnapshotPolicy::EveryRecords { records: 10 };
        let records = wc_records(35);
        let mut counters = Counters::new();
        let (out, _, snaps) = reduce_partition_barrierless_traced(
            &WordCountApp,
            &cfg,
            0,
            records.clone(),
            &mut counters,
        )
        .unwrap();
        // 3 interval snapshots (at 10, 20, 30) + the final one.
        assert_eq!(snaps.len(), 4);
        assert_eq!(
            snaps.iter().map(|s| s.records_absorbed).collect::<Vec<_>>(),
            vec![10, 20, 30, 35]
        );
        assert_eq!(
            snaps.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // The last snapshot IS the final answer for a pure-finalize app.
        assert_eq!(snaps.last().unwrap().estimate, out);
        assert_eq!(counters.get(names::SNAPSHOT_COUNT), 4);
        assert_eq!(
            counters.get(names::SNAPSHOT_RECORDS),
            snaps.iter().map(|s| s.estimate.len() as u64).sum::<u64>()
        );
        assert!(counters.get(names::SNAPSHOT_BYTES) > 0);
        // And the run with snapshots equals the run without, byte for byte.
        let plain_cfg = barrierless_cfg(MemoryPolicy::InMemory);
        let (plain, _) = reduce_partition_barrierless(
            &WordCountApp,
            &plain_cfg,
            0,
            records,
            &mut Counters::new(),
        )
        .unwrap();
        assert_eq!(out, plain);
    }

    #[test]
    fn snapshots_merge_spilled_runs_with_the_live_map() {
        let mut cfg = barrierless_cfg(MemoryPolicy::SpillMerge {
            threshold_bytes: 600,
        });
        cfg.snapshots = SnapshotPolicy::EveryRecords { records: 50 };
        let records = wc_records(200);
        let expect = expected_counts(&records);
        let mut counters = Counters::new();
        let (out, report, snaps) =
            reduce_partition_barrierless_traced(&WordCountApp, &cfg, 0, records, &mut counters)
                .unwrap();
        assert_eq!(out, expect);
        assert!(report.store.spill_files > 1, "test needs real spills");
        // Mid-stream snapshots must account records spilled to disk, not
        // just the live map: the snapshot at 100 records absorbed covers
        // exactly 100 counted words.
        for snap in &snaps {
            let total: u64 = snap.estimate.iter().map(|(_, n)| n).sum();
            assert_eq!(
                total, snap.records_absorbed,
                "snapshot seq {} lost spilled partials",
                snap.seq
            );
            // Key-sorted and duplicate-free (self-consistent).
            for pair in snap.estimate.windows(2) {
                assert!(pair[0].0 < pair[1].0, "snapshot not key-sorted");
            }
        }
        assert_eq!(snaps.last().unwrap().estimate, out);
    }

    #[test]
    fn on_demand_snapshots_only_fire_when_asked() {
        let mut cfg = barrierless_cfg(MemoryPolicy::InMemory);
        cfg.snapshots = SnapshotPolicy::OnDemand;
        let mut driver = IncrementalDriver::new(&WordCountApp, &cfg, 0).unwrap();
        let mut out = Vec::new();
        for (k, v) in wc_records(40) {
            driver.push(&WordCountApp, k, v, &mut out).unwrap();
        }
        assert!(driver.take_snapshots().is_empty(), "nothing requested yet");
        driver.snapshot_now(&WordCountApp).unwrap();
        driver.snapshot_now(&WordCountApp).unwrap();
        let snaps = driver.take_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].seq, 0);
        assert_eq!(snaps[1].seq, 1);
        assert_eq!(snaps[0].estimate, snaps[1].estimate, "no records between");
    }

    #[test]
    fn seq_base_survives_a_simulated_restart() {
        let mut cfg = barrierless_cfg(MemoryPolicy::InMemory);
        cfg.snapshots = SnapshotPolicy::EveryRecords { records: 5 };
        let mut driver = IncrementalDriver::new(&WordCountApp, &cfg, 0).unwrap();
        driver.set_snapshot_seq_base(7);
        let mut out = Vec::new();
        for (k, v) in wc_records(12) {
            driver.push(&WordCountApp, k, v, &mut out).unwrap();
        }
        let snaps = driver.take_snapshots();
        assert_eq!(snaps.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![7, 8]);
        assert_eq!(driver.snapshot_seq(), 9);
    }

    #[test]
    fn time_snapshots_rearm_relative_to_now() {
        let mut cfg = barrierless_cfg(MemoryPolicy::InMemory);
        cfg.snapshots = SnapshotPolicy::EverySecs { secs: 10.0 };
        let mut driver = IncrementalDriver::new(&WordCountApp, &cfg, 0).unwrap();
        let mut out = Vec::new();
        driver
            .push(&WordCountApp, "w".to_string(), 1, &mut out)
            .unwrap();
        driver.maybe_time_snapshot(&WordCountApp, 3.0).unwrap();
        assert_eq!(driver.snapshot_count_total(), 0, "interval not reached");
        driver.maybe_time_snapshot(&WordCountApp, 47.0).unwrap();
        assert_eq!(
            driver.snapshot_count_total(),
            1,
            "one snapshot, no catch-up burst"
        );
        driver.maybe_time_snapshot(&WordCountApp, 48.0).unwrap();
        assert_eq!(
            driver.snapshot_count_total(),
            1,
            "re-armed at now + interval"
        );
        driver.maybe_time_snapshot(&WordCountApp, 57.5).unwrap();
        assert_eq!(driver.snapshot_count_total(), 2);
        let snaps = driver.take_snapshots();
        assert_eq!(snaps[0].at_secs, 47.0);
        assert_eq!(snaps[1].at_secs, 57.5);
        assert!(driver.snapshot_records_total() >= 2);
    }

    #[test]
    fn heap_tracking_is_visible_mid_stream() {
        let cfg = barrierless_cfg(MemoryPolicy::InMemory);
        let mut driver = IncrementalDriver::new(&WordCountApp, &cfg, 0).unwrap();
        let mut out = Vec::new();
        assert_eq!(driver.modelled_bytes(), 0);
        for i in 0..100u64 {
            driver
                .push(&WordCountApp, format!("key-{i}"), 1, &mut out)
                .unwrap();
        }
        assert!(driver.modelled_bytes() > 0);
        assert_eq!(driver.entries(), 100);
        let report = driver
            .finish(&WordCountApp, &mut Counters::new(), &mut out)
            .unwrap();
        assert_eq!(report.store.peak_entries, 100);
    }
}
