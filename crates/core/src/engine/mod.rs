//! The two reduce-side engines.
//!
//! * [`barrier`] — classic MapReduce: wait for all map output, merge-sort
//!   it, call `reduce_grouped` once per key group (Figure 2 of the paper).
//! * [`pipeline`] — barrier-less: records are reduced one by one, in
//!   arrival order, against a partial-result store (Figure 3).
//!
//! Both are *per-partition* building blocks: executors (the threaded
//! [`local`](crate::local) runner, the simulated cluster in `mr-cluster`)
//! decide where and when partitions run; the engines define what a reduce
//! task does with its records.

pub mod barrier;
pub mod pipeline;

pub use barrier::reduce_partition_barrier;
pub use pipeline::{DriverReport, IncrementalDriver};
