//! The real multi-threaded local executor.
//!
//! Runs a job for real on OS threads — not a simulation. Under the
//! barrier engine, the map phase completes, per-partition record vectors
//! are handed to parallel reduce tasks, and each reduce sorts-then-groups.
//! Under the barrier-less engine, mappers stream records into bounded
//! per-reducer channels while reducer threads absorb them concurrently —
//! genuine map/reduce pipelining on multicore, the local analogue of the
//! paper's overlapped shuffle.
//!
//! The shuffle transport is **batched**: each map worker buffers records
//! per reducer under [`JobConfig::shuffle_batch_bytes`] and hands whole
//! batches to the channel, so the per-record cost of the hot path is one
//! `Vec` push instead of one channel rendezvous. Back-pressure is
//! preserved — the batch channels are bounded, and a full reducer still
//! stalls its mappers. Batch buffers are **recycled**: reducers drain a
//! batch in place and hand the empty `Vec` (capacity intact) back to the
//! mappers through a shared free-list, so steady-state shuffling does no
//! per-batch allocation (`shuffle.batch_reuse` counts the round trips).
//! When the application opts into map-side combining
//! ([`Application::combine_enabled`]), those per-reducer buffers become
//! [`CombinerBuffer`]s: records are pre-aggregated under the combiner
//! byte budget and the shuffle carries combined partials instead of raw
//! records.
//!
//! With a [`SnapshotPolicy`](crate::SnapshotPolicy) enabled, pipelined
//! reducer threads additionally publish consistent point-in-time
//! snapshots of their partial results — early estimates of the final
//! answer — between batches, over a frozen view of the store (absorb is
//! never stalled by a lock and final output is untouched). The barrier
//! engine has no partial state to observe, so its reducers publish
//! exactly one snapshot each: their finished output.

pub mod memo;

use crate::combine::CombinerBuffer;
use crate::config::{Engine, JobConfig};
use crate::counters::{names, Counters};
use crate::engine::barrier::reduce_partition_barrier;
use crate::engine::pipeline::{reduce_partition_barrierless_traced, IncrementalDriver};
use crate::engine::DriverReport;
use crate::error::{MrError, MrResult};
use crate::output::JobOutput;
use crate::partition::{HashPartitioner, Partitioner};
use crate::size::SizeEstimate;
use crate::snapshot::Snapshot;
use crate::traits::{Application, Emit, FnEmit};
use crossbeam::channel::{bounded, Receiver, Sender};
use mr_trace::{
    Scope, SpanKind, TaskKind, TraceBatch, TraceDispatcher, TraceEvent, TraceLog, TraceRecorder,
    TraceSink, NO_NODE,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Bounded shuffle-channel depth per reducer, in *batches*. With the
/// default 32 KiB batch budget this keeps roughly 2 MiB in flight per
/// reducer — deep enough to decouple bursts, shallow enough to exert
/// back-pressure like a real shuffle buffer.
pub(crate) const BATCH_CHANNEL_DEPTH: usize = 64;

/// Whether this job should run the map-side combiner: policy says yes,
/// the application opted in, and it keeps per-key state to combine.
pub(crate) fn combining_active<A: Application>(app: &A, cfg: &JobConfig) -> bool {
    cfg.combiner.is_enabled() && app.combine_enabled() && app.uses_keyed_state()
}

/// The one snapshot a barrier reduce task can publish: its finished
/// output (there is no partial state to observe before the barrier).
/// Returns the singleton list when snapshots are enabled, empty
/// otherwise, and charges the snapshot counters.
fn barrier_snapshot<A: Application>(
    cfg: &JobConfig,
    reducer: usize,
    records_absorbed: u64,
    at_secs: f64,
    out: &[(A::OutKey, A::OutValue)],
    counters: &mut Counters,
) -> Vec<Snapshot<A>> {
    if !cfg.snapshots.is_enabled() {
        return Vec::new();
    }
    counters.incr(names::SNAPSHOT_COUNT);
    counters.add(names::SNAPSHOT_RECORDS, out.len() as u64);
    vec![Snapshot {
        reducer,
        seq: 0,
        records_absorbed,
        live_entries: 0,
        at_secs,
        estimate: out.to_vec(),
    }]
}

/// Emits one `Counter` trace event per entry of `counters` — zeros
/// included, bypassing [`TraceRecorder::counter`]'s zero-skip: these are
/// *totals*, and `Counters::from_trace` must reproduce the legacy merged
/// map exactly, keeping keys that were touched but never incremented.
pub(crate) fn record_counter_totals(rec: &mut TraceRecorder, counters: &Counters) {
    for (name, value) in counters.iter() {
        rec.record(TraceEvent::Counter {
            label: name.to_string().into(),
            delta: value,
        });
    }
}

/// A batch of shuffle records bound for one reducer.
pub(crate) type Batch<A> = Vec<(<A as Application>::MapKey, <A as Application>::MapValue)>;

/// Where a reduce task's emitted output goes.
///
/// Normal jobs sink into a plain `Vec` — the materialized partition
/// buffer `JobOutput` carries. The chain driver
/// ([`crate::chain::local`]) sinks into a handoff that streams records
/// to the next stage's map intake instead, so intermediate output is
/// never materialized. Every emission path of a reduce task goes
/// through the sink: absorb-time emissions, finalize, shared-state
/// flush.
pub(crate) trait ReduceSink<A: Application>: Emit<A::OutKey, A::OutValue> + Send {
    /// Absorbs a whole already-computed output batch (the barrier
    /// engine's reduce result).
    fn absorb_batch(&mut self, batch: Vec<(A::OutKey, A::OutValue)>) {
        for (k, v) in batch {
            self.emit(k, v);
        }
    }

    /// Records emitted so far (feeds `reduce.output.records`).
    fn emitted(&self) -> u64;

    /// Called once when the reduce task finishes: flush buffered state
    /// and release any downstream handle (EOF).
    fn done(&mut self) {}

    /// The materialized partition, if this sink keeps one (empty for
    /// streaming sinks — their records are downstream already).
    fn into_partition(self) -> Vec<(A::OutKey, A::OutValue)>
    where
        Self: Sized;
}

impl<A: Application> ReduceSink<A> for Vec<(A::OutKey, A::OutValue)> {
    fn absorb_batch(&mut self, mut batch: Vec<(A::OutKey, A::OutValue)>) {
        if self.is_empty() {
            *self = batch;
        } else {
            self.append(&mut batch);
        }
    }

    fn emitted(&self) -> u64 {
        self.len() as u64
    }

    fn into_partition(self) -> Vec<(A::OutKey, A::OutValue)> {
        self
    }
}

/// Per-worker map-output fan-out for the pipelined shuffle: per-reducer
/// buffers (plain byte-budgeted batches, or combiners when map-side
/// combining is active), bounded batch channels, and free-list buffer
/// recycling. Shared by the pipelined map workers and the chain
/// driver's downstream map intake, so both transports batch, combine
/// and recycle identically.
pub(crate) struct ShuffleEmitter<'a, A: Application, P: Partitioner<A::MapKey>> {
    app: &'a A,
    partitioner: &'a P,
    reducers: usize,
    senders: Vec<Sender<Batch<A>>>,
    batch_pool: &'a Mutex<Vec<Batch<A>>>,
    plain: Vec<Batch<A>>,
    plain_bytes: Vec<usize>,
    combs: Vec<CombinerBuffer<A>>,
    combining: bool,
    batch_bytes: usize,
    counters: Counters,
    dead: bool,
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> ShuffleEmitter<'a, A, P> {
    pub(crate) fn new(
        app: &'a A,
        cfg: &JobConfig,
        partitioner: &'a P,
        senders: Vec<Sender<Batch<A>>>,
        batch_pool: &'a Mutex<Vec<Batch<A>>>,
    ) -> Self {
        let reducers = senders.len();
        let combining = combining_active(app, cfg);
        let combine_budget = cfg.combiner.budget_bytes().unwrap_or(0) as usize;
        ShuffleEmitter {
            app,
            partitioner,
            reducers,
            senders,
            batch_pool,
            plain: (0..reducers).map(|_| Vec::new()).collect(),
            plain_bytes: vec![0; reducers],
            combs: if combining {
                (0..reducers)
                    .map(|_| CombinerBuffer::new(app, combine_budget, cfg.store_index))
                    .collect()
            } else {
                Vec::new()
            },
            combining,
            batch_bytes: cfg.shuffle_batch_bytes,
            counters: Counters::new(),
            dead: false,
        }
    }

    /// One map-output record: count, partition, buffer (or combine), and
    /// hand a full batch to the transport.
    pub(crate) fn push(&mut self, key: A::MapKey, value: A::MapValue) {
        if self.dead {
            return;
        }
        self.counters.incr(names::MAP_OUTPUT_RECORDS);
        let p = self.partitioner.partition(&key, self.reducers);
        let batch = if self.combining {
            // Fold into the combiner; it drains a combined batch when
            // over budget. The buffer for a drain comes from the
            // free-list, grabbed lazily on the drain's first record so
            // under-budget pushes touch no lock.
            let app = self.app;
            let pool = self.batch_pool;
            let mut drained: Batch<A> = Vec::new();
            let mut recycled = false;
            self.combs[p].push(app, key, value, &mut |k2, v2| {
                if drained.capacity() == 0 {
                    if let Some(buf) = pool.lock().unwrap().pop() {
                        drained = buf;
                        recycled = true;
                    }
                }
                drained.push((k2, v2));
            });
            if recycled {
                self.counters.incr(names::SHUFFLE_BATCH_REUSE);
            }
            if drained.is_empty() {
                None
            } else {
                Some(drained)
            }
        } else {
            self.plain_bytes[p] += key.estimated_bytes() + value.estimated_bytes();
            self.plain[p].push((key, value));
            if self.plain_bytes[p] >= self.batch_bytes {
                self.plain_bytes[p] = 0;
                let fresh = match self.batch_pool.lock().unwrap().pop() {
                    Some(recycled) => {
                        self.counters.incr(names::SHUFFLE_BATCH_REUSE);
                        recycled
                    }
                    None => Vec::new(),
                };
                Some(std::mem::replace(&mut self.plain[p], fresh))
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            self.send(p, batch);
        }
    }

    fn send(&mut self, p: usize, batch: Batch<A>) {
        self.counters.incr(names::SHUFFLE_BATCHES);
        self.counters
            .add(names::SHUFFLE_RECORDS, batch.len() as u64);
        // A send error means the reducer died (e.g. OOM): the job is
        // failing, stop producing.
        if self.senders[p].send(batch).is_err() {
            self.dead = true;
        }
    }

    /// Whether a downstream reducer disappeared (the job is failing);
    /// callers stop feeding records.
    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }

    /// End of this worker's input: flush every buffer and settle the
    /// combiner counters.
    pub(crate) fn flush(&mut self) {
        let app = self.app;
        for p in 0..self.reducers {
            if self.dead {
                break;
            }
            let mut batch: Batch<A> = std::mem::take(&mut self.plain[p]);
            if self.combining && self.combs[p].entries() > 0 {
                if batch.capacity() == 0 {
                    if let Some(buf) = self.batch_pool.lock().unwrap().pop() {
                        batch = buf;
                        self.counters.incr(names::SHUFFLE_BATCH_REUSE);
                    }
                }
                let sink = &mut batch;
                self.combs[p].drain(app, &mut |k, v| sink.push((k, v)));
            }
            if !batch.is_empty() {
                self.send(p, batch);
            }
        }
        for comb in &self.combs {
            self.counters
                .add(names::COMBINE_INPUT_RECORDS, comb.records_in());
            self.counters
                .add(names::COMBINE_OUTPUT_RECORDS, comb.records_out());
        }
    }

    /// The worker's accumulated counters.
    pub(crate) fn into_counters(self) -> Counters {
        self.counters
    }
}

/// Runs one pipelined reduce task to completion: absorb batches from
/// `rx` in arrival order through an [`IncrementalDriver`], recycle
/// drained batch buffers through the free-list, publish snapshots per
/// policy, then merge + finalize into `sink`.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
pub(crate) fn pipelined_reduce_task<A: Application, S: ReduceSink<A>>(
    app: &A,
    cfg: &JobConfig,
    r: usize,
    rx: Receiver<Batch<A>>,
    batch_pool: &Mutex<Vec<Batch<A>>>,
    pool_cap: usize,
    started: Instant,
    mut sink: S,
) -> MrResult<(S, DriverReport, Counters, Vec<Snapshot<A>>)> {
    let mut driver = IncrementalDriver::new(app, cfg, r)?;
    let snapping = cfg.snapshots.is_enabled();
    let timed = cfg.snapshots.secs_interval().is_some();
    let mut counters = Counters::new();
    for mut batch in rx.iter() {
        if snapping {
            // Stamp wall time so record-driven snapshots carry a
            // meaningful clock.
            driver.set_now_secs(started.elapsed().as_secs_f64());
        }
        for (k, v) in batch.drain(..) {
            driver.push(app, k, v, &mut sink)?;
        }
        // Return the drained buffer to the mappers.
        {
            let mut pool = batch_pool.lock().unwrap();
            if pool.len() < pool_cap {
                pool.push(batch);
            }
        }
        if timed {
            driver.maybe_time_snapshot(app, started.elapsed().as_secs_f64())?;
        }
    }
    if cfg.snapshots.is_periodic() {
        // End-of-input snapshot: the last estimate a periodic observer
        // sees equals the final answer.
        driver.set_now_secs(started.elapsed().as_secs_f64());
        driver.snapshot_now(app)?;
    }
    let snapshots = driver.take_snapshots();
    let report = driver.finish(app, &mut counters, &mut sink)?;
    counters.add(names::REDUCE_OUTPUT_RECORDS, sink.emitted());
    sink.done();
    Ok((sink, report, counters, snapshots))
}

/// The barrier engine's reduce phase over already-shuffled partitions:
/// one grouped-reduce task per partition run on `workers` threads, each
/// feeding its sink inside the worker the moment its reduce finishes (a
/// streaming sink hands records downstream per partition, not after the
/// whole stage). Shared by [`LocalRunner::run_barrier_sinked`] and the
/// chain driver's barrier-engine streamed stages.
#[allow(clippy::too_many_arguments)]
pub(crate) fn barrier_reduce_sinked<A, S, F>(
    workers: usize,
    app: &A,
    cfg: &JobConfig,
    partitions: Vec<Vec<(A::MapKey, A::MapValue)>>,
    started: Instant,
    mut counters: Counters,
    upstream_trace: Vec<TraceBatch>,
    make_sink: F,
) -> MrResult<SinkedRun<A, S>>
where
    A: Application,
    S: ReduceSink<A>,
    F: Fn(usize) -> S,
{
    let reducers = partitions.len();
    let tracing = cfg.trace.is_enabled();
    let dispatcher = TraceDispatcher::new(tracing);
    // Batches the caller recorded before the reduce phase (map-task
    // spans); they join the reduce batches in the one ordered log.
    for b in upstream_trace {
        dispatcher.submit(b);
    }
    type ReduceSlot<A, S> = Mutex<Option<MrResult<(S, Counters, Vec<Snapshot<A>>)>>>;
    type PartitionSlot<A> =
        Mutex<Option<Vec<(<A as Application>::MapKey, <A as Application>::MapValue)>>>;
    let results: Vec<ReduceSlot<A, S>> = (0..reducers).map(|_| Mutex::new(None)).collect();
    let sink_slots: Vec<Mutex<Option<S>>> = (0..reducers)
        .map(|r| Mutex::new(Some(make_sink(r))))
        .collect();
    let partitions: Vec<PartitionSlot<A>> = partitions
        .into_iter()
        .map(|p| Mutex::new(Some(p)))
        .collect();
    let next_part = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers.max(1).min(reducers.max(1)) {
            let partitions = &partitions;
            let results = &results;
            let sink_slots = &sink_slots;
            let next_part = &next_part;
            let dispatcher = &dispatcher;
            handles.push(scope.spawn(move || loop {
                let idx = next_part.fetch_add(1, Ordering::Relaxed);
                if idx >= reducers {
                    break;
                }
                let records = partitions[idx].lock().unwrap().take().expect("one taker");
                let mut sink = sink_slots[idx].lock().unwrap().take().expect("one taker");
                let absorbed = records.len() as u64;
                let t0 = started.elapsed().as_secs_f64();
                let mut counters = Counters::new();
                let out = reduce_partition_barrier(app, records, &mut counters).map(|out| {
                    let snaps = barrier_snapshot::<A>(
                        cfg,
                        idx,
                        absorbed,
                        started.elapsed().as_secs_f64(),
                        &out,
                        &mut counters,
                    );
                    sink.absorb_batch(out);
                    sink.done();
                    if tracing {
                        let mut rec = TraceRecorder::new(
                            Scope::task(0, TaskKind::Reduce, idx as u32, 0, NO_NODE),
                            true,
                        );
                        rec.span_wall(SpanKind::SortReduce, t0, started.elapsed().as_secs_f64());
                        for s in &snaps {
                            rec.snapshot_wall(
                                s.at_secs,
                                s.seq,
                                s.records_absorbed,
                                s.live_entries as u64,
                            );
                        }
                        record_counter_totals(&mut rec, &counters);
                        rec.flush_into(dispatcher);
                    }
                    (sink, counters, snaps)
                });
                *results[idx].lock().unwrap() = Some(out);
            }));
        }
        for h in handles {
            h.join()
                .map_err(|_| MrError::WorkerPanic("reduce worker panicked".to_string()))?;
        }
        Ok::<(), MrError>(())
    })?;

    // The non-reduce counters (map phase or chain intake) are attributed
    // to the job scope as one pre-merged batch: per-worker attribution
    // would depend on which worker claimed which split, and the log's
    // byte layout must not.
    if tracing {
        let mut rec = TraceRecorder::new(Scope::job(0), true);
        record_counter_totals(&mut rec, &counters);
        rec.flush_into(&dispatcher);
    }
    let mut sinks = Vec::with_capacity(reducers);
    let mut snapshots = Vec::with_capacity(reducers);
    for slot in results {
        let (sink, task_counters, snaps) = slot
            .into_inner()
            .unwrap()
            .expect("every partition was reduced")?;
        counters.merge(&task_counters);
        snapshots.push(snaps);
        sinks.push(sink);
    }
    let trace = dispatcher.finish();
    // Eat our own dogfood: with tracing on, the counters the caller sees
    // are *derived from the log* (equal to the direct merge by
    // construction — the trace carries every task's totals).
    let counters = if tracing {
        Counters::from_trace(&trace)
    } else {
        counters
    };
    Ok(SinkedRun {
        sinks,
        counters,
        reports: Vec::new(),
        snapshots,
        trace,
    })
}

/// A finished run whose reduce output went to caller-chosen sinks.
pub(crate) struct SinkedRun<A: Application, S> {
    /// One finished sink per reduce partition.
    pub sinks: Vec<S>,
    /// Merged counters from every task.
    pub counters: Counters,
    /// Per-reducer driver reports (pipelined engine only).
    pub reports: Vec<DriverReport>,
    /// Per-reducer published snapshots.
    pub snapshots: Vec<Vec<Snapshot<A>>>,
    /// The run's structured trace (empty when tracing is disabled).
    pub trace: TraceLog,
}

impl<A: Application, S: ReduceSink<A>> SinkedRun<A, S> {
    pub(crate) fn into_job_output(self) -> JobOutput<A> {
        JobOutput {
            partitions: self
                .sinks
                .into_iter()
                .map(ReduceSink::into_partition)
                .collect(),
            counters: self.counters,
            reports: self.reports,
            snapshots: self.snapshots,
            trace: self.trace,
        }
    }
}

/// Executes jobs on local OS threads.
#[derive(Debug, Clone)]
pub struct LocalRunner {
    /// Concurrent map workers.
    pub map_threads: usize,
}

impl LocalRunner {
    /// A runner with `map_threads` map workers. Reduce-side parallelism
    /// equals the partition count.
    pub fn new(map_threads: usize) -> Self {
        assert!(map_threads >= 1);
        LocalRunner { map_threads }
    }

    /// Runs `app` over `splits` with the default hash partitioner.
    pub fn run<A: Application>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
    ) -> MrResult<JobOutput<A>> {
        self.run_with_partitioner(app, splits, cfg, &HashPartitioner)
    }

    /// Runs `app` over `splits` with a custom partitioner.
    pub fn run_with_partitioner<A: Application, P: Partitioner<A::MapKey>>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
    ) -> MrResult<JobOutput<A>> {
        cfg.validate()?;
        match &cfg.engine {
            Engine::Barrier => self.run_barrier(app, splits, cfg, partitioner),
            Engine::BarrierLess { .. } => self.run_pipelined(app, splits, cfg, partitioner),
        }
    }

    /// Runs `app` with DryadInc-style map-output memoization (§8 of the
    /// paper): splits whose [`memo::Fingerprint`] is already cached skip
    /// the map function entirely. Pass the same `cache` across runs of an
    /// iterative job; clear it when the map function changes.
    ///
    /// The reduce side runs the configured engine as usual (the cached
    /// map output feeds it all at once, so this path favours iterative
    /// re-runs over first-run pipelining).
    #[allow(clippy::type_complexity)]
    pub fn run_memoized<A: Application, P: Partitioner<A::MapKey>>(
        &self,
        app: &A,
        splits: Vec<(memo::Fingerprint, Vec<(A::InKey, A::InValue)>)>,
        cfg: &JobConfig,
        partitioner: &P,
        cache: &mut memo::MemoCache<A>,
    ) -> MrResult<JobOutput<A>> {
        cfg.validate()?;
        let started = Instant::now();
        let reducers = cfg.reducers;
        let tracing = cfg.trace.is_enabled();
        let dispatcher = TraceDispatcher::new(tracing);
        let mut counters = Counters::new();
        let mut partitions: Vec<Vec<(A::MapKey, A::MapValue)>> =
            (0..reducers).map(|_| Vec::new()).collect();
        for (fp, split) in &splits {
            if let Some(cached) = cache.lookup(*fp, reducers) {
                for (p, records) in cached.iter().enumerate() {
                    partitions[p].extend(records.iter().cloned());
                }
                continue;
            }
            let mut parts: Vec<Vec<(A::MapKey, A::MapValue)>> =
                (0..reducers).map(|_| Vec::new()).collect();
            {
                let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                    counters.incr(names::MAP_OUTPUT_RECORDS);
                    let p = partitioner.partition(&k, reducers);
                    parts[p].push((k, v));
                });
                for (k, v) in split {
                    app.map(k, v, &mut emit);
                }
            }
            for (p, records) in parts.iter().enumerate() {
                partitions[p].extend(records.iter().cloned());
            }
            cache.insert(*fp, reducers, parts);
        }

        let mut outputs = Vec::with_capacity(reducers);
        let mut reports = Vec::new();
        let mut snapshots: Vec<Vec<Snapshot<A>>> = Vec::with_capacity(reducers);
        for (r, records) in partitions.into_iter().enumerate() {
            let t0 = started.elapsed().as_secs_f64();
            let span_kind = match &cfg.engine {
                Engine::Barrier => SpanKind::SortReduce,
                Engine::BarrierLess { .. } => SpanKind::ShuffleReduce,
            };
            match &cfg.engine {
                Engine::Barrier => {
                    let absorbed = records.len() as u64;
                    let out = reduce_partition_barrier(app, records, &mut counters)?;
                    snapshots.push(barrier_snapshot(
                        cfg,
                        r,
                        absorbed,
                        started.elapsed().as_secs_f64(),
                        &out,
                        &mut counters,
                    ));
                    outputs.push(out);
                }
                Engine::BarrierLess { .. } => {
                    let (out, report, snaps) =
                        reduce_partition_barrierless_traced(app, cfg, r, records, &mut counters)?;
                    outputs.push(out);
                    reports.push(report);
                    snapshots.push(snaps);
                }
            }
            if tracing {
                let mut rec = TraceRecorder::new(
                    Scope::task(0, TaskKind::Reduce, r as u32, 0, NO_NODE),
                    true,
                );
                rec.span_wall(span_kind, t0, started.elapsed().as_secs_f64());
                for s in snapshots.last().into_iter().flatten() {
                    rec.snapshot_wall(s.at_secs, s.seq, s.records_absorbed, s.live_entries as u64);
                }
                rec.flush_into(&dispatcher);
            }
        }
        // Single-threaded path: every counter (map and reduce alike) is
        // already merged, so the whole total is one job-scope batch.
        if tracing {
            let mut rec = TraceRecorder::new(Scope::job(0), true);
            record_counter_totals(&mut rec, &counters);
            rec.flush_into(&dispatcher);
        }
        let trace = dispatcher.finish();
        let counters = if tracing {
            Counters::from_trace(&trace)
        } else {
            counters
        };
        Ok(JobOutput {
            partitions: outputs,
            counters,
            reports,
            snapshots,
            trace,
        })
    }

    fn run_barrier<A: Application, P: Partitioner<A::MapKey>>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
    ) -> MrResult<JobOutput<A>> {
        Ok(self
            .run_barrier_sinked(app, splits, cfg, partitioner, |_| Vec::new())?
            .into_job_output())
    }

    /// Barrier run with caller-chosen reduce-output sinks (one per
    /// partition). The sink is fed *inside* the reduce worker thread the
    /// moment the partition's grouped reduce finishes, so a streaming
    /// sink overlaps downstream work with the other partitions' reduces.
    pub(crate) fn run_barrier_sinked<A, P, S, F>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
        make_sink: F,
    ) -> MrResult<SinkedRun<A, S>>
    where
        A: Application,
        P: Partitioner<A::MapKey>,
        S: ReduceSink<A>,
        F: Fn(usize) -> S,
    {
        let started = Instant::now();
        let reducers = cfg.reducers;
        let n_splits = splits.len();
        let tracing = cfg.trace.is_enabled();
        let map_trace: Mutex<Vec<TraceBatch>> = Mutex::new(Vec::new());
        let combining = combining_active(app, cfg);
        let combine_budget = cfg.combiner.budget_bytes().unwrap_or(0) as usize;
        // Map phase: workers claim splits by index so per-split output
        // lands in a deterministic slot regardless of scheduling. With
        // combining, each split's output is pre-aggregated per reducer
        // before landing in its slot (combiners are per-split so slot
        // contents stay deterministic).
        type MapSlot<A> =
            Option<Vec<Vec<(<A as Application>::MapKey, <A as Application>::MapValue)>>>;
        let slots: Vec<Mutex<MapSlot<A>>> = (0..n_splits).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let map_counters = Mutex::new(Counters::new());

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..self.map_threads.min(n_splits.max(1)) {
                let splits = &splits;
                let slots = &slots;
                let next = &next;
                let map_counters = &map_counters;
                let map_trace = &map_trace;
                handles.push(scope.spawn(move || {
                    let mut local_counters = Counters::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_splits {
                            break;
                        }
                        let t0 = started.elapsed().as_secs_f64();
                        let mut parts: Vec<Vec<(A::MapKey, A::MapValue)>> =
                            (0..reducers).map(|_| Vec::new()).collect();
                        if combining {
                            let mut combs: Vec<CombinerBuffer<A>> = (0..reducers)
                                .map(|_| CombinerBuffer::new(app, combine_budget, cfg.store_index))
                                .collect();
                            {
                                let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                                    local_counters.incr(names::MAP_OUTPUT_RECORDS);
                                    let p = partitioner.partition(&k, reducers);
                                    let sink = &mut parts[p];
                                    combs[p].push(app, k, v, &mut |k2, v2| sink.push((k2, v2)));
                                });
                                for (k, v) in &splits[idx] {
                                    app.map(k, v, &mut emit);
                                }
                            }
                            for (p, comb) in combs.iter_mut().enumerate() {
                                let sink = &mut parts[p];
                                comb.drain(app, &mut |k, v| sink.push((k, v)));
                                local_counters.add(names::COMBINE_INPUT_RECORDS, comb.records_in());
                                local_counters
                                    .add(names::COMBINE_OUTPUT_RECORDS, comb.records_out());
                            }
                        } else {
                            let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                                local_counters.incr(names::MAP_OUTPUT_RECORDS);
                                let p = partitioner.partition(&k, reducers);
                                parts[p].push((k, v));
                            });
                            for (k, v) in &splits[idx] {
                                app.map(k, v, &mut emit);
                            }
                        }
                        *slots[idx].lock().unwrap() = Some(parts);
                        if tracing {
                            let mut rec = TraceRecorder::new(
                                Scope::task(0, TaskKind::Map, idx as u32, 0, NO_NODE),
                                true,
                            );
                            rec.span_wall(SpanKind::Map, t0, started.elapsed().as_secs_f64());
                            map_trace.lock().unwrap().push(rec.into_batch());
                        }
                    }
                    map_counters.lock().unwrap().merge(&local_counters);
                }));
            }
            for h in handles {
                h.join()
                    .map_err(|_| MrError::WorkerPanic("map worker panicked".to_string()))?;
            }
            Ok::<(), MrError>(())
        })?;

        // Concatenate per-split partitions in split order (determinism).
        let mut partitions: Vec<Vec<(A::MapKey, A::MapValue)>> =
            (0..reducers).map(|_| Vec::new()).collect();
        for slot in slots {
            let parts = slot.into_inner().unwrap().expect("every split was mapped");
            for (p, mut records) in parts.into_iter().enumerate() {
                partitions[p].append(&mut records);
            }
        }

        barrier_reduce_sinked(
            self.map_threads.min(reducers),
            app,
            cfg,
            partitions,
            started,
            map_counters.into_inner().unwrap(),
            map_trace.into_inner().unwrap(),
            make_sink,
        )
    }

    fn run_pipelined<A: Application, P: Partitioner<A::MapKey>>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
    ) -> MrResult<JobOutput<A>> {
        Ok(self
            .run_pipelined_sinked(app, splits, cfg, partitioner, |_| Vec::new())?
            .into_job_output())
    }

    /// Pipelined run with caller-chosen reduce-output sinks: mappers
    /// stream batches into bounded per-reducer channels while reducer
    /// threads absorb concurrently, and every record a reducer emits
    /// (absorb-time, finalize, shared flush) goes straight to its sink —
    /// the hook the chain driver uses to stream one job's output into
    /// the next job's map intake.
    pub(crate) fn run_pipelined_sinked<A, P, S, F>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
        make_sink: F,
    ) -> MrResult<SinkedRun<A, S>>
    where
        A: Application,
        P: Partitioner<A::MapKey>,
        S: ReduceSink<A>,
        F: Fn(usize) -> S,
    {
        let started = Instant::now();
        let reducers = cfg.reducers;
        let n_splits = splits.len();
        let tracing = cfg.trace.is_enabled();
        let dispatcher = TraceDispatcher::new(tracing);
        let mut senders: Vec<Sender<Batch<A>>> = Vec::with_capacity(reducers);
        let mut receivers: Vec<Receiver<Batch<A>>> = Vec::with_capacity(reducers);
        for _ in 0..reducers {
            let (tx, rx) = bounded(BATCH_CHANNEL_DEPTH);
            senders.push(tx);
            receivers.push(rx);
        }

        // Free-list of drained batch buffers: reducers hand emptied
        // `Vec`s (capacity intact) back, mappers pop them instead of
        // allocating a fresh buffer per batch. Capped at the channel
        // capacity — anything beyond that could never be in flight.
        let batch_pool: Mutex<Vec<Batch<A>>> = Mutex::new(Vec::new());
        let batch_pool_cap = reducers * BATCH_CHANNEL_DEPTH;
        let next = AtomicUsize::new(0);
        let map_counters = Mutex::new(Counters::new());
        type ReduceResult<A, S> = MrResult<(S, DriverReport, Counters, Vec<Snapshot<A>>)>;
        let reduce_slots: Vec<Mutex<Option<ReduceResult<A, S>>>> =
            (0..reducers).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|scope| {
            // Reducers first: they consume as mappers produce (pipelining).
            let mut reduce_handles = Vec::new();
            for (r, rx) in receivers.into_iter().enumerate() {
                let reduce_slots = &reduce_slots;
                let batch_pool = &batch_pool;
                let cfg_ref = cfg;
                let sink = make_sink(r);
                let dispatcher = &dispatcher;
                reduce_handles.push(scope.spawn(move || {
                    let t0 = started.elapsed().as_secs_f64();
                    let result = pipelined_reduce_task(
                        app,
                        cfg_ref,
                        r,
                        rx,
                        batch_pool,
                        batch_pool_cap,
                        started,
                        sink,
                    );
                    // On failure the receiver (and the sink) are dropped
                    // here, which disconnects the channel: blocked
                    // mappers get a send error instead of waiting on a
                    // consumer that's gone, and a streaming sink's
                    // downstream sees EOF.
                    if tracing {
                        if let Ok((_, _, task_counters, snaps)) = &result {
                            let mut rec = TraceRecorder::new(
                                Scope::task(0, TaskKind::Reduce, r as u32, 0, NO_NODE),
                                true,
                            );
                            rec.span_wall(
                                SpanKind::ShuffleReduce,
                                t0,
                                started.elapsed().as_secs_f64(),
                            );
                            for s in snaps {
                                rec.snapshot_wall(
                                    s.at_secs,
                                    s.seq,
                                    s.records_absorbed,
                                    s.live_entries as u64,
                                );
                            }
                            record_counter_totals(&mut rec, task_counters);
                            rec.flush_into(dispatcher);
                        }
                    }
                    *reduce_slots[r].lock().unwrap() = Some(result);
                }));
            }

            // Mappers fold records into per-reducer shuffle buffers and
            // hand full batches to the channels.
            let mut map_handles = Vec::new();
            for _ in 0..self.map_threads.min(n_splits.max(1)) {
                let splits = &splits;
                let senders = senders.clone();
                let next = &next;
                let map_counters = &map_counters;
                let batch_pool = &batch_pool;
                let dispatcher = &dispatcher;
                map_handles.push(scope.spawn(move || {
                    let mut emitter =
                        ShuffleEmitter::new(app, cfg, partitioner, senders, batch_pool);
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        if idx >= n_splits {
                            break;
                        }
                        let t0 = started.elapsed().as_secs_f64();
                        {
                            let emitter = &mut emitter;
                            let mut emit =
                                FnEmit(|k: A::MapKey, v: A::MapValue| emitter.push(k, v));
                            for (k, v) in &splits[idx] {
                                app.map(k, v, &mut emit);
                            }
                        }
                        if tracing {
                            let mut rec = TraceRecorder::new(
                                Scope::task(0, TaskKind::Map, idx as u32, 0, NO_NODE),
                                true,
                            );
                            rec.span_wall(SpanKind::Map, t0, started.elapsed().as_secs_f64());
                            rec.flush_into(dispatcher);
                        }
                        if emitter.is_dead() {
                            break;
                        }
                    }
                    // End of this worker's splits: flush every buffer.
                    emitter.flush();
                    map_counters.lock().unwrap().merge(&emitter.into_counters());
                }));
            }
            drop(senders); // reducers see EOF once all mappers finish

            for h in map_handles {
                h.join()
                    .map_err(|_| MrError::WorkerPanic("map worker panicked".to_string()))?;
            }
            for h in reduce_handles {
                h.join()
                    .map_err(|_| MrError::WorkerPanic("reduce worker panicked".to_string()))?;
            }
            Ok::<(), MrError>(())
        })?;

        let mut counters = map_counters.into_inner().unwrap();
        // Map counters are attributed to the job scope pre-merged: which
        // worker mapped which split is scheduling-dependent, and the
        // log's byte layout must not be.
        if tracing {
            let mut rec = TraceRecorder::new(Scope::job(0), true);
            record_counter_totals(&mut rec, &counters);
            rec.flush_into(&dispatcher);
        }
        let mut sinks = Vec::with_capacity(reducers);
        let mut reports = Vec::with_capacity(reducers);
        let mut snapshots = Vec::with_capacity(reducers);
        for slot in reduce_slots {
            let (sink, report, task_counters, snaps) =
                slot.into_inner().unwrap().expect("every reducer ran")?;
            counters.merge(&task_counters);
            sinks.push(sink);
            reports.push(report);
            snapshots.push(snaps);
        }
        let trace = dispatcher.finish();
        let counters = if tracing {
            Counters::from_trace(&trace)
        } else {
            counters
        };
        Ok(SinkedRun {
            sinks,
            counters,
            reports,
            snapshots,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryPolicy;
    use crate::testutil::{scratch_dir, GlobalSum, WordCountApp};
    use std::collections::BTreeMap;

    fn text_splits(n_splits: usize, lines_per_split: usize) -> Vec<Vec<(u64, String)>> {
        let vocab = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "barrier", "less",
        ];
        let mut splits = Vec::new();
        let mut counter = 0u64;
        for s in 0..n_splits {
            let mut split = Vec::new();
            for l in 0..lines_per_split {
                let a = vocab[(s * 7 + l) % vocab.len()];
                let b = vocab[(s + l * 3) % vocab.len()];
                let c = vocab[(s * 2 + l * 5) % vocab.len()];
                split.push((counter, format!("{a} {b} {c}")));
                counter += 1;
            }
            splits.push(split);
        }
        splits
    }

    fn expected_counts(splits: &[Vec<(u64, String)>]) -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        for split in splits {
            for (_, line) in split {
                for w in line.split_whitespace() {
                    *m.entry(w.to_string()).or_insert(0) += 1;
                }
            }
        }
        m
    }

    #[test]
    fn barrier_engine_counts_words() {
        let splits = text_splits(6, 40);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(4);
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(out.counters.get(names::MAP_OUTPUT_RECORDS), 6 * 40 * 3);
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pipelined_engine_matches_barrier_engine() {
        let splits = text_splits(8, 50);
        let expect = expected_counts(&splits);
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge {
                threshold_bytes: 512,
            },
            MemoryPolicy::KvStore { cache_bytes: 1024 },
        ] {
            let cfg = JobConfig::new(3)
                .engine(Engine::BarrierLess {
                    memory: policy.clone(),
                })
                .scratch_dir(scratch_dir("local-eq"));
            let out = LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &cfg)
                .unwrap();
            let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect, "policy {policy:?} diverged from barrier");
        }
    }

    #[test]
    fn unkeyed_app_runs_through_shared_state() {
        let splits: Vec<Vec<(u64, u64)>> = (0..4)
            .map(|s| (0..100).map(|i| (i, s * 100 + i)).collect())
            .collect();
        let total: u64 = (0..400u64).sum();
        let cfg = JobConfig::new(1).engine(Engine::barrierless());
        let out = LocalRunner::new(2).run(&GlobalSum, splits, &cfg).unwrap();
        assert_eq!(out.partitions[0], vec![(0u8, total)]);
        // No keyed state: the store never held entries.
        assert_eq!(out.reports[0].store.peak_entries, 0);
    }

    #[test]
    fn oom_propagates_from_reducer_to_job() {
        let splits = text_splits(4, 100);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .heap_cap(200)
            .scratch_dir(scratch_dir("local-oom"));
        let err = LocalRunner::new(4).run(&WordCountApp, splits, &cfg);
        assert!(
            matches!(err, Err(MrError::OutOfMemory { .. })),
            "expected OOM, got {:?}",
            err.err().map(|e| e.to_string())
        );
    }

    #[test]
    fn single_split_single_reducer() {
        let splits = vec![vec![(0u64, "a a b".to_string())]];
        let cfg = JobConfig::new(1).engine(Engine::barrierless());
        let out = LocalRunner::new(1)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(
            out.into_sorted_output(),
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let cfg = JobConfig::new(2);
        let out = LocalRunner::new(2)
            .run(&WordCountApp, Vec::new(), &cfg)
            .unwrap();
        assert_eq!(out.record_count(), 0);
        let cfg = JobConfig::new(2).engine(Engine::barrierless());
        let out = LocalRunner::new(2)
            .run(&WordCountApp, Vec::new(), &cfg)
            .unwrap();
        assert_eq!(out.record_count(), 0);
    }

    #[test]
    fn combiner_cuts_shuffle_records_without_changing_output() {
        let splits = text_splits(6, 50);
        let expect = expected_counts(&splits);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let plain_cfg = JobConfig::new(3).engine(engine.clone());
            let plain = LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &plain_cfg)
                .unwrap();
            let comb_cfg = JobConfig::new(3)
                .engine(engine.clone())
                .combiner(crate::config::CombinerPolicy::enabled());
            let combined = LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &comb_cfg)
                .unwrap();
            // Byte-exact output invariant.
            let got: BTreeMap<String, u64> =
                combined.partitions.iter().flatten().cloned().collect();
            assert_eq!(got, expect, "engine {engine:?} with combiner diverged");
            // The combiner really ran and really pre-aggregated: raw map
            // output (10-word vocab × many lines) collapses to ~vocab
            // records per map worker × reducer.
            assert_eq!(
                combined.counters.get(names::COMBINE_INPUT_RECORDS),
                plain.counters.get(names::MAP_OUTPUT_RECORDS)
            );
            assert!(
                combined.counters.get(names::COMBINE_OUTPUT_RECORDS)
                    < combined.counters.get(names::COMBINE_INPUT_RECORDS) / 2,
                "combining barely reduced records: {} -> {}",
                combined.counters.get(names::COMBINE_INPUT_RECORDS),
                combined.counters.get(names::COMBINE_OUTPUT_RECORDS)
            );
            if engine != Engine::Barrier {
                // Only combined records crossed the shuffle transport.
                assert_eq!(
                    combined.counters.get(names::SHUFFLE_RECORDS),
                    combined.counters.get(names::COMBINE_OUTPUT_RECORDS)
                );
            }
        }
    }

    #[test]
    fn one_record_batches_still_deliver_everything() {
        // Degenerate batch budget: every record flushes its own batch —
        // the transport must stay correct, just slower.
        let splits = text_splits(4, 30);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(3)
            .engine(Engine::barrierless())
            .shuffle_batch_bytes(1);
        let out = LocalRunner::new(3)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(
            out.counters.get(names::SHUFFLE_RECORDS),
            out.counters.get(names::MAP_OUTPUT_RECORDS)
        );
        assert_eq!(
            out.counters.get(names::SHUFFLE_BATCHES),
            out.counters.get(names::SHUFFLE_RECORDS)
        );
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn tiny_combiner_budget_spills_partials_and_stays_correct() {
        let splits = text_splits(5, 40);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .combiner(crate::config::CombinerPolicy::Enabled { budget_bytes: 64 });
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert!(out.counters.get(names::COMBINE_OUTPUT_RECORDS) > 0);
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pipelined_recycles_batch_buffers() {
        // One-record batches produce thousands of batches; drained
        // buffers must flow back from the reducers through the
        // free-list and get reused by the mappers.
        let splits = text_splits(8, 80);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .shuffle_batch_bytes(1);
        let out = LocalRunner::new(2)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        let batches = out.counters.get(names::SHUFFLE_BATCHES);
        let reused = out.counters.get(names::SHUFFLE_BATCH_REUSE);
        assert!(batches > 100);
        assert!(reused > 0, "free-list never reused a drained buffer");
        assert!(
            reused <= batches,
            "reuse {reused} exceeds batches {batches}"
        );
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn ordered_and_hashed_indexes_agree_under_every_policy() {
        use crate::config::StoreIndex;
        let splits = text_splits(6, 40);
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge {
                threshold_bytes: 512,
            },
            MemoryPolicy::KvStore { cache_bytes: 1024 },
        ] {
            let run = |index: StoreIndex| {
                let cfg = JobConfig::new(3)
                    .engine(Engine::BarrierLess {
                        memory: policy.clone(),
                    })
                    .store_index(index)
                    .combiner(crate::config::CombinerPolicy::enabled())
                    .scratch_dir(scratch_dir("local-ab"));
                LocalRunner::new(4)
                    .run(&WordCountApp, splits.clone(), &cfg)
                    .unwrap()
            };
            let ordered = run(StoreIndex::Ordered);
            let hashed = run(StoreIndex::Hashed);
            assert_eq!(
                ordered.partitions, hashed.partitions,
                "index flip changed output under {policy:?}"
            );
            // Spill behaviour must be identical too: byte accounting is
            // order-free, so both indexes trip the threshold at the
            // same absorb and write the same runs.
            assert_eq!(
                ordered.counters.get(names::SPILL_FILES),
                hashed.counters.get(names::SPILL_FILES),
                "index flip changed spill cadence under {policy:?}"
            );
            assert_eq!(
                ordered.counters.get(names::SPILL_BYTES),
                hashed.counters.get(names::SPILL_BYTES),
                "index flip changed spill bytes under {policy:?}"
            );
        }
    }

    #[test]
    fn invalid_config_is_an_err_not_a_worker_panic() {
        let splits = text_splits(2, 10);
        let mut cfg = JobConfig::new(2).engine(Engine::barrierless());
        cfg.shuffle_batch_bytes = 0;
        let err = LocalRunner::new(2).run(&WordCountApp, splits.clone(), &cfg);
        assert!(
            matches!(err, Err(MrError::InvalidConfig(_))),
            "zero batch bytes must fail fast, got {:?}",
            err.err().map(|e| e.to_string())
        );
        let mut cfg = JobConfig::new(2);
        cfg.reducers = 0;
        assert!(matches!(
            LocalRunner::new(2).run(&WordCountApp, splits, &cfg),
            Err(MrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pipelined_snapshots_estimate_early_and_end_exact() {
        use crate::config::SnapshotPolicy;
        let splits = text_splits(6, 40);
        let plain_cfg = JobConfig::new(2).engine(Engine::barrierless());
        let plain = LocalRunner::new(4)
            .run(&WordCountApp, splits.clone(), &plain_cfg)
            .unwrap();
        assert_eq!(plain.snapshot_count(), 0, "snapshots off by default");
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .snapshots(SnapshotPolicy::EveryRecords { records: 100 });
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        // Byte-exact final output, snapshots or not.
        assert_eq!(out.partitions, plain.partitions);
        assert!(out.snapshot_count() >= 2, "periodic snapshots published");
        assert_eq!(
            out.counters.get(names::SNAPSHOT_COUNT),
            out.snapshot_count() as u64
        );
        for (r, snaps) in out.snapshots.iter().enumerate() {
            // Monotone sequence and record progress per reducer.
            for pair in snaps.windows(2) {
                assert!(pair[0].seq < pair[1].seq);
                assert!(pair[0].records_absorbed <= pair[1].records_absorbed);
            }
            // The last snapshot is the reducer's exact final answer.
            let last = snaps.last().expect("final snapshot");
            assert_eq!(last.estimate, out.partitions[r]);
        }
    }

    #[test]
    fn barrier_engine_publishes_only_its_finished_output() {
        use crate::config::SnapshotPolicy;
        let splits = text_splits(4, 30);
        let cfg = JobConfig::new(3).snapshots(SnapshotPolicy::EveryRecords { records: 1 });
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(out.snapshots.len(), 3);
        for (r, snaps) in out.snapshots.iter().enumerate() {
            assert_eq!(snaps.len(), 1, "one snapshot per barrier reducer");
            assert_eq!(snaps[0].estimate, out.partitions[r]);
            assert_eq!(snaps[0].live_entries, 0, "no partial state at the barrier");
        }
        assert_eq!(out.counters.get(names::SNAPSHOT_COUNT), 3);
        assert_eq!(out.counters.get(names::SNAPSHOT_BYTES), 0);
    }

    #[test]
    fn many_reducers_more_than_keys() {
        let splits = vec![vec![(0u64, "only two".to_string())]];
        let cfg = JobConfig::new(16).engine(Engine::barrierless());
        let out = LocalRunner::new(2)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(out.record_count(), 2);
        assert_eq!(out.partitions.len(), 16);
    }
}
