//! The real multi-threaded local executor.
//!
//! Runs a job for real on OS threads — not a simulation. Since PR 8 the
//! executor is a **fixed-size worker pool** ([`pool`]): every mapper,
//! reducer, chain intake and handoff is a cooperative *task state
//! machine* driven from a ready queue by `JobConfig::pool_workers` OS
//! threads. A task blocked on a full or empty shuffle channel parks
//! (holding no thread) and is re-enqueued when the channel has room or
//! data, so hundreds of small concurrent jobs multiplex on N cores with
//! a bounded thread count — see [`LocalRunner::run_many`].
//!
//! Under the barrier engine, map tasks claim splits from a shared
//! cursor, per-split partitioned output lands in deterministic slots, an
//! assembly task concatenates them in split order behind a gate, and one
//! grouped sort-reduce task per partition runs after the barrier. Under
//! the barrier-less engine, map tasks stream records into bounded
//! per-reducer channels while reduce tasks absorb them concurrently —
//! genuine map/reduce pipelining, the local analogue of the paper's
//! overlapped shuffle.
//!
//! The shuffle transport is **batched**: each map task buffers records
//! per reducer under [`JobConfig::shuffle_batch_bytes`] and hands whole
//! batches to the channel, so the per-record cost of the hot path is one
//! `Vec` push instead of one channel rendezvous. Back-pressure is
//! preserved — the batch channels are bounded, and a full reducer parks
//! its mappers. Batch boundaries are decided **per split by byte
//! budget**, never by channel timing, so `shuffle.batches` and
//! `shuffle.records` are deterministic at any pool width.
//! `shuffle.batch_reuse` is likewise *modelled* from those deterministic
//! batch counts (every batch beyond a channel's depth must reuse a
//! drained buffer); the physical free-list that recycles buffers still
//! runs, it just no longer drives the counter. When the application opts
//! into map-side combining ([`Application::combine_enabled`]), the
//! per-reducer buffers become [`CombinerBuffer`]s: records are
//! pre-aggregated under the combiner byte budget and the shuffle carries
//! combined partials instead of raw records (combiners drain at each
//! split boundary, keeping their batch cuts deterministic too).
//!
//! With a [`SnapshotPolicy`](crate::SnapshotPolicy) enabled, pipelined
//! reduce tasks additionally publish consistent point-in-time snapshots
//! of their partial results — early estimates of the final answer —
//! between batches, over a frozen view of the store (absorb is never
//! stalled by a lock and final output is untouched). The barrier engine
//! has no partial state to observe, so its reducers publish exactly one
//! snapshot each: their finished output.

pub mod cache;
pub mod memo;
pub mod pool;
pub mod service;

use crate::combine::CombinerBuffer;
use crate::config::{Engine, JobConfig};
use crate::counters::{names, Counters};
use crate::engine::barrier::reduce_partition_barrier;
use crate::engine::pipeline::{reduce_partition_barrierless_traced, IncrementalDriver};
use crate::engine::DriverReport;
use crate::error::{MrError, MrResult};
use crate::output::JobOutput;
use crate::partition::{HashPartitioner, Partitioner};
use crate::size::SizeEstimate;
use crate::snapshot::Snapshot;
use crate::traits::{Application, Emit, FnEmit};
use cache::{SharedCache, SplitCachePlan, SplitParts};
use mr_cache::StableHash;
use mr_trace::{
    Scope, SpanKind, TaskKind, TraceDispatcher, TraceEvent, TraceLog, TraceRecorder, NO_NODE,
};
use pool::{Ctx, Gate, Pool, PoolReceiver, PoolSender, Step, TryRecv, TrySend};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Bounded shuffle-channel depth per reducer, in *batches*. With the
/// default 32 KiB batch budget this keeps roughly 2 MiB in flight per
/// reducer — deep enough to decouple bursts, shallow enough to exert
/// back-pressure like a real shuffle buffer.
pub(crate) const BATCH_CHANNEL_DEPTH: usize = 64;

/// Input records a map task processes per scheduler step: big enough to
/// amortize dispatch, small enough that one task cannot hog a worker.
const MAP_RECORDS_PER_STEP: usize = 512;

/// Shuffle batches a reduce (or intake) task absorbs per scheduler step.
const BATCHES_PER_STEP: usize = 16;

/// Whether this job should run the map-side combiner: policy says yes,
/// the application opted in, and it keeps per-key state to combine.
pub(crate) fn combining_active<A: Application>(app: &A, cfg: &JobConfig) -> bool {
    cfg.combiner.is_enabled() && app.combine_enabled() && app.uses_keyed_state()
}

/// The one snapshot a barrier reduce task can publish: its finished
/// output (there is no partial state to observe before the barrier).
/// Returns the singleton list when snapshots are enabled, empty
/// otherwise, and charges the snapshot counters.
pub(crate) fn barrier_snapshot<A: Application>(
    cfg: &JobConfig,
    reducer: usize,
    records_absorbed: u64,
    at_secs: f64,
    out: &[(A::OutKey, A::OutValue)],
    counters: &mut Counters,
) -> Vec<Snapshot<A>> {
    if !cfg.snapshots.is_enabled() {
        return Vec::new();
    }
    counters.incr(names::SNAPSHOT_COUNT);
    counters.add(names::SNAPSHOT_RECORDS, out.len() as u64);
    vec![Snapshot {
        reducer,
        seq: 0,
        records_absorbed,
        live_entries: 0,
        at_secs,
        estimate: out.to_vec(),
    }]
}

/// Emits one `Counter` trace event per entry of `counters` — zeros
/// included, bypassing [`TraceRecorder::counter`]'s zero-skip: these are
/// *totals*, and `Counters::from_trace` must reproduce the legacy merged
/// map exactly, keeping keys that were touched but never incremented.
pub(crate) fn record_counter_totals(rec: &mut TraceRecorder, counters: &Counters) {
    for (name, value) in counters.iter() {
        rec.record(TraceEvent::Counter {
            label: name.to_string().into(),
            delta: value,
        });
    }
}

/// A batch of shuffle records bound for one reducer.
pub(crate) type Batch<A> = Vec<(<A as Application>::MapKey, <A as Application>::MapValue)>;

/// One input split (or one handed-off chain batch): the record shape a
/// stage's map tasks consume.
pub(crate) type InputSplit<A> = Vec<(<A as Application>::InKey, <A as Application>::InValue)>;

/// Where a reduce task's emitted output goes.
///
/// Normal jobs sink into a plain `Vec` — the materialized partition
/// buffer `JobOutput` carries. The chain driver
/// ([`crate::chain::local`]) sinks into a handoff that streams records
/// to the next stage's map intake instead, so intermediate output is
/// never materialized. Every emission path of a reduce task goes
/// through the sink: absorb-time emissions, finalize, shared-state
/// flush.
///
/// Sinks are *non-blocking*: `emit` may buffer, and the owning pool task
/// calls [`pump`](ReduceSink::pump) each step to drain buffered output
/// downstream, parking when downstream is full.
pub(crate) trait ReduceSink<A: Application>: Emit<A::OutKey, A::OutValue> + Send {
    /// Absorbs a whole already-computed output batch (the barrier
    /// engine's reduce result).
    fn absorb_batch(&mut self, batch: Vec<(A::OutKey, A::OutValue)>) {
        for (k, v) in batch {
            self.emit(k, v);
        }
    }

    /// Records emitted so far (feeds `reduce.output.records`).
    fn emitted(&self) -> u64;

    /// Drains any buffered output toward downstream without blocking.
    /// Returns `false` if downstream is full — the registered task
    /// should park. A `Vec` sink has nothing to drain.
    fn pump(&mut self, cx: &Ctx) -> bool {
        let _ = cx;
        true
    }

    /// End of input: stage whatever remains buffered (no sends — the
    /// task keeps pumping until [`pump`](ReduceSink::pump) reports
    /// empty).
    fn seal(&mut self) {}

    /// Called once everything is pumped: release any downstream handle
    /// (EOF) and merge transport stats.
    fn close(&mut self) {}

    /// The materialized partition, if this sink keeps one (empty for
    /// streaming sinks — their records are downstream already).
    fn into_partition(self) -> Vec<(A::OutKey, A::OutValue)>
    where
        Self: Sized;
}

impl<A: Application> ReduceSink<A> for Vec<(A::OutKey, A::OutValue)> {
    fn absorb_batch(&mut self, mut batch: Vec<(A::OutKey, A::OutValue)>) {
        if self.is_empty() {
            *self = batch;
        } else {
            self.append(&mut batch);
        }
    }

    fn emitted(&self) -> u64 {
        self.len() as u64
    }

    fn into_partition(self) -> Vec<(A::OutKey, A::OutValue)> {
        self
    }
}

/// Per-map-task output fan-out for the pipelined shuffle: per-reducer
/// buffers (plain byte-budgeted batches, or combiners when map-side
/// combining is active), non-blocking sends into the pool's bounded
/// batch channels, and free-list buffer recycling. Shared by the
/// pipelined map tasks and the chain driver's downstream map intake, so
/// both transports batch, combine and recycle identically.
///
/// Sends never block: a full channel moves the batch to a local pending
/// queue that the owning task drains via [`pump`](ShuffleEmitter::pump),
/// parking until the reducer makes room. Batch *accounting* happens at
/// staging time — a pure function of split contents — so the shuffle
/// counters are schedule-independent.
pub(crate) struct ShuffleEmitter<'a, A: Application, P: Partitioner<A::MapKey>> {
    app: &'a A,
    partitioner: &'a P,
    reducers: usize,
    senders: Vec<PoolSender<Batch<A>>>,
    batch_pool: &'a Mutex<Vec<Batch<A>>>,
    /// Staged batches a full channel refused; drained front-first so
    /// per-reducer FIFO order is preserved.
    pending: VecDeque<(usize, Batch<A>)>,
    plain: Vec<Batch<A>>,
    plain_bytes: Vec<usize>,
    combs: Vec<CombinerBuffer<A>>,
    combining: bool,
    batch_bytes: usize,
    counters: Counters,
    batches_per_reducer: Vec<u64>,
    dead: bool,
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> ShuffleEmitter<'a, A, P> {
    pub(crate) fn new(
        app: &'a A,
        cfg: &JobConfig,
        partitioner: &'a P,
        senders: Vec<PoolSender<Batch<A>>>,
        batch_pool: &'a Mutex<Vec<Batch<A>>>,
    ) -> Self {
        let reducers = senders.len();
        let combining = combining_active(app, cfg);
        let combine_budget = cfg.combiner.budget_bytes().unwrap_or(0) as usize;
        ShuffleEmitter {
            app,
            partitioner,
            reducers,
            senders,
            batch_pool,
            pending: VecDeque::new(),
            plain: (0..reducers).map(|_| Vec::new()).collect(),
            plain_bytes: vec![0; reducers],
            combs: if combining {
                (0..reducers)
                    .map(|_| CombinerBuffer::new(app, combine_budget, cfg.store_index))
                    .collect()
            } else {
                Vec::new()
            },
            combining,
            batch_bytes: cfg.shuffle_batch_bytes,
            counters: Counters::new(),
            batches_per_reducer: vec![0; reducers],
            dead: false,
        }
    }

    /// One map-output record: count, partition, buffer (or combine), and
    /// stage a full batch for the transport. Returns the partition the
    /// record was routed to (cache-miss capture records it there), or
    /// `None` when the emitter is dead and the record was dropped —
    /// capture must record nothing then, lest a truncated, misrouted
    /// artifact be published for a healthy future run to hit.
    pub(crate) fn push(&mut self, key: A::MapKey, value: A::MapValue) -> Option<usize> {
        if self.dead {
            return None;
        }
        self.counters.incr(names::MAP_OUTPUT_RECORDS);
        let p = self.partitioner.partition(&key, self.reducers);
        self.route(p, key, value);
        Some(p)
    }

    /// Replays one record of a cached split artifact into partition `p`:
    /// the same combine-or-buffer routing and batch cuts as [`push`],
    /// minus the partition call (the artifact is already partitioned)
    /// and the `map.output.records` count (the map function never ran) —
    /// so a warm run's shuffle is byte-identical to the cold run's.
    ///
    /// [`push`]: ShuffleEmitter::push
    pub(crate) fn replay(&mut self, p: usize, key: A::MapKey, value: A::MapValue) {
        if self.dead {
            return;
        }
        self.route(p, key, value);
    }

    /// The shared routing tail of [`push`](ShuffleEmitter::push) and
    /// [`replay`](ShuffleEmitter::replay).
    fn route(&mut self, p: usize, key: A::MapKey, value: A::MapValue) {
        let batch = if self.combining {
            // Fold into the combiner; it drains a combined batch when
            // over budget. The buffer for a drain comes from the
            // free-list, grabbed lazily on the drain's first record so
            // under-budget pushes touch no lock.
            let app = self.app;
            let pool = self.batch_pool;
            let mut drained: Batch<A> = Vec::new();
            self.combs[p].push(app, key, value, &mut |k2, v2| {
                if drained.capacity() == 0 {
                    if let Some(buf) = pool.lock().unwrap().pop() {
                        drained = buf;
                    }
                }
                drained.push((k2, v2));
            });
            if drained.is_empty() {
                None
            } else {
                Some(drained)
            }
        } else {
            self.plain_bytes[p] += key.estimated_bytes() + value.estimated_bytes();
            self.plain[p].push((key, value));
            if self.plain_bytes[p] >= self.batch_bytes {
                self.plain_bytes[p] = 0;
                let fresh = self.batch_pool.lock().unwrap().pop().unwrap_or_default();
                Some(std::mem::replace(&mut self.plain[p], fresh))
            } else {
                None
            }
        };
        if let Some(batch) = batch {
            self.stage(p, batch);
        }
    }

    /// Accounts a finished batch and hands it to the transport if there
    /// is room, queueing it locally otherwise. The global FIFO of the
    /// pending queue preserves per-reducer send order.
    fn stage(&mut self, p: usize, batch: Batch<A>) {
        self.counters.incr(names::SHUFFLE_BATCHES);
        self.counters
            .add(names::SHUFFLE_RECORDS, batch.len() as u64);
        self.batches_per_reducer[p] += 1;
        if !self.pending.is_empty() {
            self.pending.push_back((p, batch));
            return;
        }
        match self.senders[p].try_send_now(batch) {
            Ok(()) => {}
            Err(TrySend::Full(batch)) => self.pending.push_back((p, batch)),
            Err(TrySend::Disconnected(_)) => {
                // The reducer died (e.g. OOM): the job is failing, stop
                // producing.
                self.dead = true;
                self.pending.clear();
            }
        }
    }

    /// Drains the pending queue toward the channels. Returns `false` if
    /// a channel is still full (the task was registered for wakeup and
    /// should park); `true` when nothing is pending.
    pub(crate) fn pump(&mut self, cx: &Ctx) -> bool {
        while let Some((p, batch)) = self.pending.pop_front() {
            match self.senders[p].try_send(cx, batch) {
                Ok(()) => {}
                Err(TrySend::Full(batch)) => {
                    self.pending.push_front((p, batch));
                    return false;
                }
                Err(TrySend::Disconnected(_)) => {
                    self.dead = true;
                    self.pending.clear();
                    return true;
                }
            }
        }
        true
    }

    /// Whether a downstream reducer disappeared (the job is failing);
    /// callers stop feeding records.
    pub(crate) fn is_dead(&self) -> bool {
        self.dead
    }

    /// A split boundary: stage every partial buffer and drain the
    /// combiners. Cutting batches here — not at end-of-worker — makes
    /// batch boundaries a pure function of split contents, so the
    /// shuffle counters do not depend on which task mapped which split.
    pub(crate) fn end_split(&mut self) {
        if self.dead {
            return;
        }
        let app = self.app;
        for p in 0..self.reducers {
            let mut batch: Batch<A> = std::mem::take(&mut self.plain[p]);
            self.plain_bytes[p] = 0;
            if self.combining && self.combs[p].entries() > 0 {
                if batch.capacity() == 0 {
                    if let Some(buf) = self.batch_pool.lock().unwrap().pop() {
                        batch = buf;
                    }
                }
                let sink = &mut batch;
                self.combs[p].drain(app, &mut |k, v| sink.push((k, v)));
            }
            if !batch.is_empty() {
                self.stage(p, batch);
            }
        }
    }

    /// End of this task's input: settle the (monotonic) combiner totals
    /// and surrender the accumulated counters plus per-reducer batch
    /// counts. Dropping the emitter drops its senders — EOF for the
    /// reducers once every map task finished.
    pub(crate) fn finish(mut self) -> (Counters, Vec<u64>) {
        for comb in &self.combs {
            self.counters
                .add(names::COMBINE_INPUT_RECORDS, comb.records_in());
            self.counters
                .add(names::COMBINE_OUTPUT_RECORDS, comb.records_out());
        }
        (self.counters, self.batches_per_reducer)
    }
}

/// Map-side totals a stage accumulates: merged counters from every map
/// task plus deterministic per-reducer batch counts (the input to the
/// modelled `shuffle.batch_reuse`).
pub(crate) struct MapTotals {
    counters: Counters,
    batches_per_reducer: Vec<u64>,
}

/// Per-split partitioned map output, parked in a deterministic slot.
pub(crate) type MapSlot<A> =
    Option<Vec<Vec<(<A as Application>::MapKey, <A as Application>::MapValue)>>>;

/// What one finished reduce task leaves behind: its sink, the driver
/// report (pipelined engine only), task counters and snapshots.
pub(crate) type ReduceDone<A, S> = MrResult<(S, Option<DriverReport>, Counters, Vec<Snapshot<A>>)>;

/// The shared state of one job stage running on the pool: deterministic
/// result slots for every task, the trace dispatcher, and the shuffle
/// free-list. Lives on the caller's stack for the pool's borrowed tasks
/// to reference; [`collect_stage`] consumes it after [`Pool::run`].
pub(crate) struct StageState<A: Application, S> {
    tracing: bool,
    dispatcher: TraceDispatcher,
    totals: Mutex<MapTotals>,
    batch_pool: Mutex<Vec<Batch<A>>>,
    reduce_slots: Vec<Mutex<Option<ReduceDone<A, S>>>>,
    map_slots: Vec<Mutex<MapSlot<A>>>,
    partition_slots: Vec<Mutex<Option<Batch<A>>>>,
    next: AtomicUsize,
    finished: Mutex<f64>,
    started: Instant,
}

impl<A: Application, S> StageState<A, S> {
    /// `n_map_slots` is the number of deterministic map-output slots the
    /// barrier engine needs: one per split (or one per intake for
    /// streamed chain stages). The pipelined engine leaves them unused.
    pub(crate) fn new(cfg: &JobConfig, n_map_slots: usize) -> Self {
        let tracing = cfg.trace.is_enabled();
        StageState {
            tracing,
            dispatcher: TraceDispatcher::new(tracing),
            totals: Mutex::new(MapTotals {
                counters: Counters::new(),
                batches_per_reducer: vec![0; cfg.reducers],
            }),
            batch_pool: Mutex::new(Vec::new()),
            reduce_slots: (0..cfg.reducers).map(|_| Mutex::new(None)).collect(),
            map_slots: (0..n_map_slots).map(|_| Mutex::new(None)).collect(),
            partition_slots: (0..cfg.reducers).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            finished: Mutex::new(0.0),
            started: Instant::now(),
        }
    }
}

/// Where a stage's map tasks read their input from.
pub(crate) enum StageInput<'a, A: Application> {
    /// Materialized splits — a normal job, claimed by index.
    Splits(&'a [InputSplit<A>]),
    /// Streaming intakes — a chain stage fed by the previous stage's
    /// reducers, one channel per upstream reducer.
    Intakes(Vec<PoolReceiver<InputSplit<A>>>),
}

// ---------------------------------------------------------------------
// Pipelined-engine task state machines
// ---------------------------------------------------------------------

/// A pipelined map task: claims splits from the shared cursor, runs the
/// map function in bounded slices, and streams batches through its
/// emitter — parking when a reducer's channel is full.
struct SplitMapTask<'a, A: Application, P: Partitioner<A::MapKey>> {
    app: &'a A,
    splits: &'a [Vec<(A::InKey, A::InValue)>],
    next: &'a AtomicUsize,
    emitter: Option<ShuffleEmitter<'a, A, P>>,
    totals: &'a Mutex<MapTotals>,
    dispatcher: &'a TraceDispatcher,
    tracing: bool,
    started: Instant,
    /// Shared-cache consultation plan; `None` runs uncached.
    cache: Option<&'a SplitCachePlan<A>>,
    /// Raw partitioned output of the in-flight cache-miss split,
    /// captured alongside the emitter for publication at end-of-split.
    capture: Option<SplitParts<A>>,
    /// (split index, record cursor, span start).
    cur: Option<(usize, usize, f64)>,
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> SplitMapTask<'a, A, P> {
    fn finish(&mut self) -> Step {
        if let Some(emitter) = self.emitter.take() {
            let (counters, per_reducer) = emitter.finish();
            let mut totals = self.totals.lock().unwrap();
            totals.counters.merge(&counters);
            for (p, n) in per_reducer.iter().enumerate() {
                totals.batches_per_reducer[p] += n;
            }
        }
        Step::Done
    }
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> pool::PoolTask for SplitMapTask<'a, A, P> {
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if !self.emitter.as_mut().unwrap().pump(cx) {
            return Step::Park;
        }
        if self.emitter.as_ref().unwrap().is_dead() {
            // The job is failing downstream; stop mapping.
            return self.finish();
        }
        if self.cur.is_none() {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.splits.len() {
                // Pending is empty (pump said so), so nothing is left
                // in flight: surrender counters and drop the senders.
                return self.finish();
            }
            let t0 = self.started.elapsed().as_secs_f64();
            if let Some(plan) = self.cache {
                if let Some((cached, bytes)) = plan.lookup(idx) {
                    // Hit: replay the artifact through the normal shuffle
                    // routing — the map function is the only thing skipped.
                    let emitter = self.emitter.as_mut().unwrap();
                    emitter.counters.incr(names::CACHE_HITS);
                    emitter.counters.add(names::CACHE_HIT_BYTES, bytes);
                    for (p, records) in cached.iter().enumerate() {
                        for (k, v) in records {
                            emitter.replay(p, k.clone(), v.clone());
                        }
                    }
                    emitter.end_split();
                    if self.tracing {
                        let mut rec = TraceRecorder::new(
                            Scope::task(0, TaskKind::Map, idx as u32, 0, NO_NODE),
                            true,
                        );
                        rec.span_wall(SpanKind::Map, t0, self.started.elapsed().as_secs_f64());
                        rec.flush_into(self.dispatcher);
                    }
                    return Step::Yield;
                }
                let emitter = self.emitter.as_mut().unwrap();
                emitter.counters.incr(names::CACHE_MISSES);
                self.capture = Some((0..emitter.reducers).map(|_| Vec::new()).collect());
            }
            self.cur = Some((idx, 0, t0));
        }
        let (idx, cursor, t0) = self.cur.unwrap();
        let app = self.app;
        let split = &self.splits[idx];
        let end = (cursor + MAP_RECORDS_PER_STEP).min(split.len());
        {
            let emitter = self.emitter.as_mut().unwrap();
            let mut capture = self.capture.as_mut();
            let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                if let Some(cap) = capture.as_deref_mut() {
                    if let Some(p) = emitter.push(k.clone(), v.clone()) {
                        cap[p].push((k, v));
                    }
                } else {
                    emitter.push(k, v);
                }
            });
            for (k, v) in &split[cursor..end] {
                app.map(k, v, &mut emit);
            }
        }
        if end == split.len() {
            let emitter = self.emitter.as_mut().unwrap();
            emitter.end_split();
            // A dead emitter means the job is failing and the capture is
            // truncated: publishing it would poison the shared cache for
            // every future warm run of this input.
            if let (Some(plan), Some(raw)) = (self.cache, self.capture.take()) {
                if !emitter.is_dead() {
                    plan.insert(idx, raw).charge(&mut emitter.counters);
                }
            }
            if self.tracing {
                let mut rec =
                    TraceRecorder::new(Scope::task(0, TaskKind::Map, idx as u32, 0, NO_NODE), true);
                rec.span_wall(SpanKind::Map, t0, self.started.elapsed().as_secs_f64());
                rec.flush_into(self.dispatcher);
            }
            self.cur = None;
        } else {
            self.cur = Some((idx, end, t0));
        }
        Step::Yield
    }
}

/// A chain-stage map intake: drains batches of upstream reduce output
/// from its channel, maps them, and streams the result into this
/// stage's shuffle. The whole intake is one logical split — its batch
/// cuts happen at EOF, deterministic because the upstream reducer's
/// output order is.
struct IntakeMapTask<'a, A: Application, P: Partitioner<A::MapKey>> {
    app: &'a A,
    rx: Option<PoolReceiver<InputSplit<A>>>,
    idx: usize,
    emitter: Option<ShuffleEmitter<'a, A, P>>,
    totals: &'a Mutex<MapTotals>,
    dispatcher: &'a TraceDispatcher,
    tracing: bool,
    started: Instant,
    cur: Option<(InputSplit<A>, usize)>,
    t0: Option<f64>,
    input_done: bool,
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> IntakeMapTask<'a, A, P> {
    fn finish(&mut self) -> Step {
        self.rx = None;
        if let Some(emitter) = self.emitter.take() {
            let (counters, per_reducer) = emitter.finish();
            let mut totals = self.totals.lock().unwrap();
            totals.counters.merge(&counters);
            for (p, n) in per_reducer.iter().enumerate() {
                totals.batches_per_reducer[p] += n;
            }
        }
        Step::Done
    }
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> pool::PoolTask for IntakeMapTask<'a, A, P> {
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if self.t0.is_none() {
            self.t0 = Some(self.started.elapsed().as_secs_f64());
        }
        if !self.emitter.as_mut().unwrap().pump(cx) {
            return Step::Park;
        }
        if self.input_done {
            // end_split's staged batches are pumped (pump said empty).
            return self.finish();
        }
        if self.emitter.as_ref().unwrap().is_dead() {
            // Downstream is failing: keep draining the intake so the
            // upstream stage can unwind instead of parking forever.
            self.cur = None;
            loop {
                match self.rx.as_ref().unwrap().try_recv(cx) {
                    Ok(_) => {}
                    Err(TryRecv::Empty) => return Step::Park,
                    Err(TryRecv::Disconnected) => return self.finish(),
                }
            }
        }
        if self.cur.is_none() {
            match self.rx.as_ref().unwrap().try_recv(cx) {
                Ok(batch) => self.cur = Some((batch, 0)),
                Err(TryRecv::Empty) => return Step::Park,
                Err(TryRecv::Disconnected) => {
                    // EOF: the intake's whole stream was one split.
                    self.emitter.as_mut().unwrap().end_split();
                    if self.tracing {
                        let now = self.started.elapsed().as_secs_f64();
                        let mut rec = TraceRecorder::new(
                            Scope::task(0, TaskKind::Map, self.idx as u32, 0, NO_NODE),
                            true,
                        );
                        rec.span_wall(SpanKind::Map, self.t0.unwrap_or(now), now);
                        rec.flush_into(self.dispatcher);
                    }
                    self.input_done = true;
                    return Step::Yield;
                }
            }
        }
        let app = self.app;
        let mut batch_done = false;
        if let Some((batch, cursor)) = self.cur.as_mut() {
            let end = (*cursor + MAP_RECORDS_PER_STEP).min(batch.len());
            {
                let emitter = self.emitter.as_mut().unwrap();
                let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                    emitter.push(k, v);
                });
                for (k, v) in &batch[*cursor..end] {
                    app.map(k, v, &mut emit);
                }
            }
            batch_done = end == batch.len();
            *cursor = end;
        }
        if batch_done {
            self.cur = None;
        }
        Step::Yield
    }
}

/// A pipelined reduce task: absorbs shuffle batches in arrival order
/// through an [`IncrementalDriver`], recycles drained buffers, publishes
/// snapshots per policy, finalizes at EOF, then pumps its sink dry and
/// parks its result in the stage slot.
struct PipelinedReduceTask<'a, A: Application, S: ReduceSink<A>> {
    app: &'a A,
    cfg: &'a JobConfig,
    r: usize,
    started: Instant,
    t0: Option<f64>,
    rx: Option<PoolReceiver<Batch<A>>>,
    batch_pool: &'a Mutex<Vec<Batch<A>>>,
    pool_cap: usize,
    driver: Option<IncrementalDriver<A>>,
    sink: Option<S>,
    counters: Counters,
    snapshots: Vec<Snapshot<A>>,
    report: Option<DriverReport>,
    slot: &'a Mutex<Option<ReduceDone<A, S>>>,
    finished: &'a Mutex<f64>,
    dispatcher: &'a TraceDispatcher,
    tracing: bool,
    drained: bool,
}

impl<'a, A: Application, S: ReduceSink<A>> PipelinedReduceTask<'a, A, S> {
    fn try_absorb(&mut self, cx: &Ctx) -> MrResult<Step> {
        let app = self.app;
        let snapping = self.cfg.snapshots.is_enabled();
        let timed = self.cfg.snapshots.secs_interval().is_some();
        for _ in 0..BATCHES_PER_STEP {
            match self.rx.as_ref().unwrap().try_recv(cx) {
                Ok(mut batch) => {
                    let driver = self.driver.as_mut().unwrap();
                    if snapping {
                        // Stamp wall time so record-driven snapshots
                        // carry a meaningful clock.
                        driver.set_now_secs(self.started.elapsed().as_secs_f64());
                    }
                    let sink = self.sink.as_mut().unwrap();
                    for (k, v) in batch.drain(..) {
                        driver.push(app, k, v, sink)?;
                    }
                    // Return the drained buffer to the mappers.
                    {
                        let mut pool = self.batch_pool.lock().unwrap();
                        if pool.len() < self.pool_cap {
                            pool.push(batch);
                        }
                    }
                    if timed {
                        driver.maybe_time_snapshot(app, self.started.elapsed().as_secs_f64())?;
                    }
                }
                Err(TryRecv::Empty) => return Ok(Step::Park),
                Err(TryRecv::Disconnected) => {
                    self.finalize()?;
                    return Ok(Step::Yield);
                }
            }
        }
        Ok(Step::Yield)
    }

    /// EOF: final snapshot per policy, drain the driver's store through
    /// the sink, seal it. The task then pumps until the sink is empty.
    fn finalize(&mut self) -> MrResult<()> {
        let app = self.app;
        if self.cfg.snapshots.is_periodic() {
            // End-of-input snapshot: the last estimate a periodic
            // observer sees equals the final answer.
            let driver = self.driver.as_mut().unwrap();
            driver.set_now_secs(self.started.elapsed().as_secs_f64());
            driver.snapshot_now(app)?;
        }
        let mut driver = self.driver.take().unwrap();
        self.snapshots = driver.take_snapshots();
        let sink = self.sink.as_mut().unwrap();
        let report = driver.finish(app, &mut self.counters, sink)?;
        self.counters
            .add(names::REDUCE_OUTPUT_RECORDS, sink.emitted());
        sink.seal();
        self.report = Some(report);
        self.rx = None;
        self.drained = true;
        Ok(())
    }

    fn complete(&mut self) -> Step {
        let now = self.started.elapsed().as_secs_f64();
        let mut sink = self.sink.take().unwrap();
        sink.close();
        if self.tracing {
            let mut rec = TraceRecorder::new(
                Scope::task(0, TaskKind::Reduce, self.r as u32, 0, NO_NODE),
                true,
            );
            rec.span_wall(SpanKind::ShuffleReduce, self.t0.unwrap_or(now), now);
            for s in &self.snapshots {
                rec.snapshot_wall(s.at_secs, s.seq, s.records_absorbed, s.live_entries as u64);
            }
            record_counter_totals(&mut rec, &self.counters);
            rec.flush_into(self.dispatcher);
        }
        {
            let mut f = self.finished.lock().unwrap();
            *f = f.max(now);
        }
        *self.slot.lock().unwrap() = Some(Ok((
            sink,
            self.report.take(),
            std::mem::replace(&mut self.counters, Counters::new()),
            std::mem::take(&mut self.snapshots),
        )));
        Step::Done
    }

    fn fail(&mut self, e: MrError) -> Step {
        // Dropping the receiver disconnects the channel: blocked mappers
        // get a send error instead of waiting on a consumer that's gone,
        // and dropping a streaming sink lets its downstream see EOF.
        self.rx = None;
        self.driver = None;
        self.sink = None;
        *self.slot.lock().unwrap() = Some(Err(e));
        Step::Done
    }
}

impl<'a, A: Application, S: ReduceSink<A>> pool::PoolTask for PipelinedReduceTask<'a, A, S> {
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if self.t0.is_none() {
            self.t0 = Some(self.started.elapsed().as_secs_f64());
        }
        if !self.sink.as_mut().unwrap().pump(cx) {
            return Step::Park;
        }
        if self.drained {
            return self.complete();
        }
        match self.try_absorb(cx) {
            Ok(step) => step,
            Err(e) => self.fail(e),
        }
    }
}

// ---------------------------------------------------------------------
// Barrier-engine task state machines
// ---------------------------------------------------------------------

/// In-flight state of one barrier map split.
struct BarrierCur<A: Application> {
    idx: usize,
    cursor: usize,
    t0: f64,
    parts: Vec<Vec<(A::MapKey, A::MapValue)>>,
    combs: Vec<CombinerBuffer<A>>,
    /// Raw pre-combine partitioned output, captured on a cache miss for
    /// publication at end-of-split (`None` when running uncached).
    raw: Option<SplitParts<A>>,
}

/// A barrier map task: claims splits from the shared cursor and buffers
/// per-split partitioned (optionally combined) output into deterministic
/// slots. Never parks — there is no back-pressure before the barrier.
struct BarrierSplitMapTask<'a, A: Application, P: Partitioner<A::MapKey>> {
    app: &'a A,
    cfg: &'a JobConfig,
    partitioner: &'a P,
    splits: &'a [Vec<(A::InKey, A::InValue)>],
    next: &'a AtomicUsize,
    reducers: usize,
    combining: bool,
    combine_budget: usize,
    slots: &'a [Mutex<MapSlot<A>>],
    totals: &'a Mutex<MapTotals>,
    maps_done: Gate,
    dispatcher: &'a TraceDispatcher,
    tracing: bool,
    started: Instant,
    counters: Counters,
    /// Shared-cache consultation plan; `None` runs uncached.
    cache: Option<&'a SplitCachePlan<A>>,
    cur: Option<BarrierCur<A>>,
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> pool::PoolTask
    for BarrierSplitMapTask<'a, A, P>
{
    fn step(&mut self, _cx: &mut Ctx) -> Step {
        let app = self.app;
        if self.cur.is_none() {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.splits.len() {
                self.totals.lock().unwrap().counters.merge(&self.counters);
                self.maps_done.arrive();
                return Step::Done;
            }
            let t0 = self.started.elapsed().as_secs_f64();
            if let Some(plan) = self.cache {
                if let Some((cached, bytes)) = plan.lookup(idx) {
                    // Hit: rebuild the slot from the raw artifact through
                    // the same per-split combiner path a cold run takes;
                    // only the map function is skipped.
                    self.counters.incr(names::CACHE_HITS);
                    self.counters.add(names::CACHE_HIT_BYTES, bytes);
                    let mut parts: Vec<Vec<(A::MapKey, A::MapValue)>> =
                        (0..self.reducers).map(|_| Vec::new()).collect();
                    if self.combining {
                        for (p, records) in cached.iter().enumerate() {
                            let mut comb: CombinerBuffer<A> =
                                CombinerBuffer::new(app, self.combine_budget, self.cfg.store_index);
                            let sink = &mut parts[p];
                            for (k, v) in records {
                                comb.push(app, k.clone(), v.clone(), &mut |k2, v2| {
                                    sink.push((k2, v2))
                                });
                            }
                            comb.drain(app, &mut |k, v| sink.push((k, v)));
                            self.counters
                                .add(names::COMBINE_INPUT_RECORDS, comb.records_in());
                            self.counters
                                .add(names::COMBINE_OUTPUT_RECORDS, comb.records_out());
                        }
                    } else {
                        for (p, records) in cached.iter().enumerate() {
                            parts[p].extend(records.iter().cloned());
                        }
                    }
                    *self.slots[idx].lock().unwrap() = Some(parts);
                    if self.tracing {
                        let mut rec = TraceRecorder::new(
                            Scope::task(0, TaskKind::Map, idx as u32, 0, NO_NODE),
                            true,
                        );
                        rec.span_wall(SpanKind::Map, t0, self.started.elapsed().as_secs_f64());
                        rec.flush_into(self.dispatcher);
                    }
                    return Step::Yield;
                }
                self.counters.incr(names::CACHE_MISSES);
            }
            self.cur = Some(BarrierCur {
                idx,
                cursor: 0,
                t0,
                parts: (0..self.reducers).map(|_| Vec::new()).collect(),
                // Combiners are per-split so slot contents stay
                // deterministic.
                combs: if self.combining {
                    (0..self.reducers)
                        .map(|_| {
                            CombinerBuffer::new(app, self.combine_budget, self.cfg.store_index)
                        })
                        .collect()
                } else {
                    Vec::new()
                },
                raw: self
                    .cache
                    .map(|_| (0..self.reducers).map(|_| Vec::new()).collect()),
            });
        }
        let partitioner = self.partitioner;
        let reducers = self.reducers;
        let combining = self.combining;
        let counters = &mut self.counters;
        let mut split_done = false;
        if let Some(cur) = self.cur.as_mut() {
            let split = &self.splits[cur.idx];
            let end = (cur.cursor + MAP_RECORDS_PER_STEP).min(split.len());
            let BarrierCur {
                idx,
                cursor,
                t0,
                parts,
                combs,
                raw,
            } = cur;
            {
                let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                    counters.incr(names::MAP_OUTPUT_RECORDS);
                    let p = partitioner.partition(&k, reducers);
                    if let Some(raw) = raw.as_mut() {
                        raw[p].push((k.clone(), v.clone()));
                    }
                    if combining {
                        let sink = &mut parts[p];
                        combs[p].push(app, k, v, &mut |k2, v2| sink.push((k2, v2)));
                    } else {
                        parts[p].push((k, v));
                    }
                });
                for (k, v) in &split[*cursor..end] {
                    app.map(k, v, &mut emit);
                }
            }
            if end == split.len() {
                if combining {
                    for (p, comb) in combs.iter_mut().enumerate() {
                        let sink = &mut parts[p];
                        comb.drain(app, &mut |k, v| sink.push((k, v)));
                        counters.add(names::COMBINE_INPUT_RECORDS, comb.records_in());
                        counters.add(names::COMBINE_OUTPUT_RECORDS, comb.records_out());
                    }
                }
                if let (Some(plan), Some(raw_parts)) = (self.cache, raw.take()) {
                    plan.insert(*idx, raw_parts).charge(counters);
                }
                *self.slots[*idx].lock().unwrap() = Some(std::mem::take(parts));
                if self.tracing {
                    let mut rec = TraceRecorder::new(
                        Scope::task(0, TaskKind::Map, *idx as u32, 0, NO_NODE),
                        true,
                    );
                    rec.span_wall(SpanKind::Map, *t0, self.started.elapsed().as_secs_f64());
                    rec.flush_into(self.dispatcher);
                }
                split_done = true;
            } else {
                *cursor = end;
            }
        }
        if split_done {
            self.cur = None;
        }
        Step::Yield
    }
}

/// A barrier chain intake: drains its upstream channel into per-intake
/// partitioned buffers (with per-intake combiners, drained at EOF), then
/// parks the result in its deterministic slot and arrives at the gate.
struct BarrierIntakeTask<'a, A: Application, P: Partitioner<A::MapKey>> {
    app: &'a A,
    partitioner: &'a P,
    reducers: usize,
    combining: bool,
    rx: Option<PoolReceiver<InputSplit<A>>>,
    idx: usize,
    parts: Vec<Batch<A>>,
    combs: Vec<CombinerBuffer<A>>,
    counters: Counters,
    slot: &'a Mutex<MapSlot<A>>,
    totals: &'a Mutex<MapTotals>,
    maps_done: Gate,
    dispatcher: &'a TraceDispatcher,
    tracing: bool,
    started: Instant,
    t0: Option<f64>,
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> BarrierIntakeTask<'a, A, P> {
    fn finish(&mut self) -> Step {
        let app = self.app;
        if self.combining {
            for (p, comb) in self.combs.iter_mut().enumerate() {
                let sink = &mut self.parts[p];
                comb.drain(app, &mut |k, v| sink.push((k, v)));
                self.counters
                    .add(names::COMBINE_INPUT_RECORDS, comb.records_in());
                self.counters
                    .add(names::COMBINE_OUTPUT_RECORDS, comb.records_out());
            }
        }
        *self.slot.lock().unwrap() = Some(std::mem::take(&mut self.parts));
        if self.tracing {
            let now = self.started.elapsed().as_secs_f64();
            let mut rec = TraceRecorder::new(
                Scope::task(0, TaskKind::Map, self.idx as u32, 0, NO_NODE),
                true,
            );
            rec.span_wall(SpanKind::Map, self.t0.unwrap_or(now), now);
            rec.flush_into(self.dispatcher);
        }
        self.totals.lock().unwrap().counters.merge(&self.counters);
        self.rx = None;
        self.maps_done.arrive();
        Step::Done
    }
}

impl<'a, A: Application, P: Partitioner<A::MapKey>> pool::PoolTask for BarrierIntakeTask<'a, A, P> {
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if self.t0.is_none() {
            self.t0 = Some(self.started.elapsed().as_secs_f64());
        }
        let app = self.app;
        let partitioner = self.partitioner;
        let reducers = self.reducers;
        let combining = self.combining;
        for _ in 0..BATCHES_PER_STEP {
            let got = self.rx.as_ref().unwrap().try_recv(cx);
            match got {
                Ok(batch) => {
                    let counters = &mut self.counters;
                    let parts = &mut self.parts;
                    let combs = &mut self.combs;
                    let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                        counters.incr(names::MAP_OUTPUT_RECORDS);
                        let p = partitioner.partition(&k, reducers);
                        if combining {
                            let sink = &mut parts[p];
                            combs[p].push(app, k, v, &mut |k2, v2| sink.push((k2, v2)));
                        } else {
                            parts[p].push((k, v));
                        }
                    });
                    for (k, v) in &batch {
                        app.map(k, v, &mut emit);
                    }
                }
                Err(TryRecv::Empty) => return Step::Park,
                Err(TryRecv::Disconnected) => return self.finish(),
            }
        }
        Step::Yield
    }
}

/// The stage-barrier join: waits (parked) for every map task, then
/// concatenates per-split partitions in split order — determinism — and
/// releases the reduce tasks.
struct AssembleTask<'a, A: Application> {
    maps_done: Gate,
    assembled: Gate,
    map_slots: &'a [Mutex<MapSlot<A>>],
    partition_slots: &'a [Mutex<Option<Batch<A>>>],
}

impl<'a, A: Application> pool::PoolTask for AssembleTask<'a, A> {
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if !self.maps_done.open(cx) {
            return Step::Park;
        }
        let reducers = self.partition_slots.len();
        let mut partitions: Vec<Vec<(A::MapKey, A::MapValue)>> =
            (0..reducers).map(|_| Vec::new()).collect();
        for slot in self.map_slots {
            let parts = slot.lock().unwrap().take().expect("every split was mapped");
            for (p, mut records) in parts.into_iter().enumerate() {
                partitions[p].append(&mut records);
            }
        }
        for (p, records) in partitions.into_iter().enumerate() {
            *self.partition_slots[p].lock().unwrap() = Some(records);
        }
        self.assembled.arrive();
        Step::Done
    }
}

/// A barrier reduce task: parks until assembly, runs the grouped
/// sort-reduce over its partition, then pumps its sink dry.
struct BarrierReduceTask<'a, A: Application, S: ReduceSink<A>> {
    app: &'a A,
    cfg: &'a JobConfig,
    r: usize,
    assembled: Gate,
    partition: &'a Mutex<Option<Batch<A>>>,
    sink: Option<S>,
    counters: Counters,
    snapshots: Vec<Snapshot<A>>,
    slot: &'a Mutex<Option<ReduceDone<A, S>>>,
    finished: &'a Mutex<f64>,
    dispatcher: &'a TraceDispatcher,
    tracing: bool,
    started: Instant,
    t0: f64,
    reduced: bool,
}

impl<'a, A: Application, S: ReduceSink<A>> pool::PoolTask for BarrierReduceTask<'a, A, S> {
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if !self.reduced {
            if !self.assembled.open(cx) {
                return Step::Park;
            }
            let records = self.partition.lock().unwrap().take().expect("one taker");
            let absorbed = records.len() as u64;
            self.t0 = self.started.elapsed().as_secs_f64();
            let out = match reduce_partition_barrier(self.app, records, &mut self.counters) {
                Ok(out) => out,
                Err(e) => {
                    self.sink = None;
                    *self.slot.lock().unwrap() = Some(Err(e));
                    return Step::Done;
                }
            };
            self.snapshots = barrier_snapshot::<A>(
                self.cfg,
                self.r,
                absorbed,
                self.started.elapsed().as_secs_f64(),
                &out,
                &mut self.counters,
            );
            let sink = self.sink.as_mut().unwrap();
            sink.absorb_batch(out);
            sink.seal();
            self.reduced = true;
            return Step::Yield;
        }
        if !self.sink.as_mut().unwrap().pump(cx) {
            return Step::Park;
        }
        let now = self.started.elapsed().as_secs_f64();
        let mut sink = self.sink.take().unwrap();
        sink.close();
        if self.tracing {
            let mut rec = TraceRecorder::new(
                Scope::task(0, TaskKind::Reduce, self.r as u32, 0, NO_NODE),
                true,
            );
            rec.span_wall(SpanKind::SortReduce, self.t0, now);
            for s in &self.snapshots {
                rec.snapshot_wall(s.at_secs, s.seq, s.records_absorbed, s.live_entries as u64);
            }
            record_counter_totals(&mut rec, &self.counters);
            rec.flush_into(self.dispatcher);
        }
        {
            let mut f = self.finished.lock().unwrap();
            *f = f.max(now);
        }
        *self.slot.lock().unwrap() = Some(Ok((
            sink,
            None,
            std::mem::replace(&mut self.counters, Counters::new()),
            std::mem::take(&mut self.snapshots),
        )));
        Step::Done
    }
}

// ---------------------------------------------------------------------
// Stage builder + collector
// ---------------------------------------------------------------------

/// Spawns one job stage's full task graph onto `pool` — reduce tasks
/// first (they consume as mappers produce), then map (or intake) tasks —
/// for whichever engine `cfg` selects. `map_tasks` bounds concurrent map
/// *tasks* (the legacy `LocalRunner::map_threads` meaning, preserving
/// trace/counter shape); OS threads are bounded separately by
/// `JobConfig::pool_workers` at [`Pool::run`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_stage<'a, A, P, S, F>(
    pool: &mut Pool<'a>,
    state: &'a StageState<A, S>,
    app: &'a A,
    cfg: &'a JobConfig,
    partitioner: &'a P,
    input: StageInput<'a, A>,
    map_tasks: usize,
    cache: Option<&'a SplitCachePlan<A>>,
    make_sink: F,
) -> MrResult<()>
where
    A: Application,
    P: Partitioner<A::MapKey> + Sync,
    S: ReduceSink<A> + 'a,
    F: Fn(usize) -> S,
{
    let reducers = cfg.reducers;
    match &cfg.engine {
        Engine::BarrierLess { .. } => {
            let mut txs: Vec<PoolSender<Batch<A>>> = Vec::with_capacity(reducers);
            let mut rxs: Vec<PoolReceiver<Batch<A>>> = Vec::with_capacity(reducers);
            for _ in 0..reducers {
                let (tx, rx) = pool.channel::<Batch<A>>(BATCH_CHANNEL_DEPTH);
                txs.push(tx);
                rxs.push(rx);
            }
            for (r, rx) in rxs.into_iter().enumerate() {
                // Config errors surface here, before the pool runs.
                let driver = IncrementalDriver::new(app, cfg, r)?;
                pool.spawn(PipelinedReduceTask {
                    app,
                    cfg,
                    r,
                    started: state.started,
                    t0: None,
                    rx: Some(rx),
                    batch_pool: &state.batch_pool,
                    pool_cap: reducers * BATCH_CHANNEL_DEPTH,
                    driver: Some(driver),
                    sink: Some(make_sink(r)),
                    counters: Counters::new(),
                    snapshots: Vec::new(),
                    report: None,
                    slot: &state.reduce_slots[r],
                    finished: &state.finished,
                    dispatcher: &state.dispatcher,
                    tracing: state.tracing,
                    drained: false,
                });
            }
            match input {
                StageInput::Splits(splits) => {
                    let n = map_tasks.max(1).min(splits.len().max(1));
                    for _ in 0..n {
                        pool.spawn(SplitMapTask {
                            app,
                            splits,
                            next: &state.next,
                            emitter: Some(ShuffleEmitter::new(
                                app,
                                cfg,
                                partitioner,
                                txs.clone(),
                                &state.batch_pool,
                            )),
                            totals: &state.totals,
                            dispatcher: &state.dispatcher,
                            tracing: state.tracing,
                            started: state.started,
                            cur: None,
                            cache,
                            capture: None,
                        });
                    }
                }
                StageInput::Intakes(intakes) => {
                    for (i, rx) in intakes.into_iter().enumerate() {
                        pool.spawn(IntakeMapTask {
                            app,
                            rx: Some(rx),
                            idx: i,
                            emitter: Some(ShuffleEmitter::new(
                                app,
                                cfg,
                                partitioner,
                                txs.clone(),
                                &state.batch_pool,
                            )),
                            totals: &state.totals,
                            dispatcher: &state.dispatcher,
                            tracing: state.tracing,
                            started: state.started,
                            cur: None,
                            t0: None,
                            input_done: false,
                        });
                    }
                }
            }
        }
        Engine::Barrier => {
            let combining = combining_active(app, cfg);
            let combine_budget = cfg.combiner.budget_bytes().unwrap_or(0) as usize;
            let assembled = pool.gate(1);
            let maps_done;
            match input {
                StageInput::Splits(splits) => {
                    let n = map_tasks.max(1).min(splits.len().max(1));
                    maps_done = pool.gate(n);
                    for _ in 0..n {
                        pool.spawn(BarrierSplitMapTask {
                            app,
                            cfg,
                            partitioner,
                            splits,
                            next: &state.next,
                            reducers,
                            combining,
                            combine_budget,
                            slots: &state.map_slots,
                            totals: &state.totals,
                            maps_done: maps_done.clone(),
                            dispatcher: &state.dispatcher,
                            tracing: state.tracing,
                            started: state.started,
                            counters: Counters::new(),
                            cur: None,
                            cache,
                        });
                    }
                }
                StageInput::Intakes(intakes) => {
                    maps_done = pool.gate(intakes.len());
                    for (i, rx) in intakes.into_iter().enumerate() {
                        pool.spawn(BarrierIntakeTask {
                            app,
                            partitioner,
                            reducers,
                            combining,
                            rx: Some(rx),
                            idx: i,
                            parts: (0..reducers).map(|_| Vec::new()).collect(),
                            combs: if combining {
                                (0..reducers)
                                    .map(|_| {
                                        CombinerBuffer::new(app, combine_budget, cfg.store_index)
                                    })
                                    .collect()
                            } else {
                                Vec::new()
                            },
                            counters: Counters::new(),
                            slot: &state.map_slots[i],
                            totals: &state.totals,
                            maps_done: maps_done.clone(),
                            dispatcher: &state.dispatcher,
                            tracing: state.tracing,
                            started: state.started,
                            t0: None,
                        });
                    }
                }
            }
            pool.spawn(AssembleTask::<A> {
                maps_done,
                assembled: assembled.clone(),
                map_slots: &state.map_slots,
                partition_slots: &state.partition_slots,
            });
            for r in 0..reducers {
                pool.spawn(BarrierReduceTask {
                    app,
                    cfg,
                    r,
                    assembled: assembled.clone(),
                    partition: &state.partition_slots[r],
                    sink: Some(make_sink(r)),
                    counters: Counters::new(),
                    snapshots: Vec::new(),
                    slot: &state.reduce_slots[r],
                    finished: &state.finished,
                    dispatcher: &state.dispatcher,
                    tracing: state.tracing,
                    started: state.started,
                    t0: 0.0,
                    reduced: false,
                });
            }
        }
    }
    Ok(())
}

/// Consumes a run stage's state after the pool finished: merges task
/// counters (map totals to the job scope, reduce totals per task —
/// preserving the legacy trace layout), models `shuffle.batch_reuse`
/// from the deterministic batch counts, and assembles the [`SinkedRun`].
pub(crate) fn collect_stage<A, S>(state: StageState<A, S>) -> MrResult<SinkedRun<A, S>>
where
    A: Application,
    S: ReduceSink<A>,
{
    let tracing = state.tracing;
    let totals = state.totals.into_inner().unwrap();
    let mut counters = totals.counters;
    // Modelled buffer reuse: a channel holds at most `BATCH_CHANNEL_DEPTH`
    // batches, so every batch a reducer received beyond that depth must
    // have ridden a recycled buffer in the steady state. Derived from
    // deterministic batch counts — unlike observed free-list pops, it
    // does not depend on thread timing.
    let reuse: u64 = totals
        .batches_per_reducer
        .iter()
        .map(|&b| b.saturating_sub(BATCH_CHANNEL_DEPTH as u64))
        .sum();
    if reuse > 0 {
        counters.add(names::SHUFFLE_BATCH_REUSE, reuse);
    }
    // The non-reduce counters (map phase or chain intake) are attributed
    // to the job scope as one pre-merged batch: per-task attribution
    // would depend on which task claimed which split, and the log's
    // byte layout must not.
    if tracing {
        let mut rec = TraceRecorder::new(Scope::job(0), true);
        record_counter_totals(&mut rec, &counters);
        rec.flush_into(&state.dispatcher);
    }
    let mut sinks = Vec::with_capacity(state.reduce_slots.len());
    let mut reports = Vec::new();
    let mut snapshots = Vec::with_capacity(state.reduce_slots.len());
    for slot in state.reduce_slots {
        let (sink, report, task_counters, snaps) =
            slot.into_inner().unwrap().expect("every reducer ran")?;
        counters.merge(&task_counters);
        if let Some(report) = report {
            reports.push(report);
        }
        snapshots.push(snaps);
        sinks.push(sink);
    }
    let trace = state.dispatcher.finish();
    // Eat our own dogfood: with tracing on, the counters the caller sees
    // are *derived from the log* (equal to the direct merge by
    // construction — the trace carries every task's totals).
    let counters = if tracing {
        Counters::from_trace(&trace)
    } else {
        counters
    };
    let finished_secs = *state.finished.lock().unwrap();
    Ok(SinkedRun {
        sinks,
        counters,
        reports,
        snapshots,
        trace,
        finished_secs,
    })
}

/// A finished run whose reduce output went to caller-chosen sinks.
pub(crate) struct SinkedRun<A: Application, S> {
    /// One finished sink per reduce partition.
    pub sinks: Vec<S>,
    /// Merged counters from every task.
    pub counters: Counters,
    /// Per-reducer driver reports (pipelined engine only).
    pub reports: Vec<DriverReport>,
    /// Per-reducer published snapshots.
    pub snapshots: Vec<Vec<Snapshot<A>>>,
    /// The run's structured trace (empty when tracing is disabled).
    pub trace: TraceLog,
    /// When the last reduce task of this stage finished, seconds since
    /// the stage started — chain drivers use it for stage marks.
    pub finished_secs: f64,
}

impl<A: Application, S: ReduceSink<A>> SinkedRun<A, S> {
    pub(crate) fn into_job_output(self) -> JobOutput<A> {
        JobOutput {
            partitions: self
                .sinks
                .into_iter()
                .map(ReduceSink::into_partition)
                .collect(),
            counters: self.counters,
            reports: self.reports,
            snapshots: self.snapshots,
            trace: self.trace,
        }
    }
}

/// Worker-pool evidence for one [`LocalRunner::run_many`] call.
#[derive(Debug, Clone, Copy)]
pub struct PoolStats {
    /// Worker threads the pool ran.
    pub workers: usize,
    /// Peak concurrently-live pool threads — at most `workers`.
    pub peak_threads: usize,
}

/// Every job of a [`LocalRunner::run_many`] batch, with per-job results
/// (a failing job does not poison its neighbours) and the shared pool's
/// thread evidence.
pub struct ManyJobsOutput<A: Application> {
    /// Per-job outcome, in submission order.
    pub jobs: Vec<MrResult<JobOutput<A>>>,
    /// The shared pool's thread accounting.
    pub pool: PoolStats,
}

/// Executes jobs on local OS threads.
#[derive(Debug, Clone)]
pub struct LocalRunner {
    /// Concurrent map *tasks* per job (the reduce side always runs one
    /// task per partition). OS threads are a separate, global knob:
    /// [`JobConfig::pool_workers`].
    pub map_threads: usize,
}

impl LocalRunner {
    /// A runner with `map_threads` concurrent map tasks. Reduce-side
    /// parallelism equals the partition count; both multiplex onto the
    /// `JobConfig::pool_workers` pool threads.
    pub fn new(map_threads: usize) -> Self {
        assert!(map_threads >= 1);
        LocalRunner { map_threads }
    }

    /// Runs `app` over `splits` with the default hash partitioner.
    pub fn run<A: Application>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
    ) -> MrResult<JobOutput<A>> {
        self.run_with_partitioner(app, splits, cfg, &HashPartitioner)
    }

    /// Runs `app` over `splits` with a custom partitioner.
    pub fn run_with_partitioner<A: Application, P: Partitioner<A::MapKey> + Sync>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
    ) -> MrResult<JobOutput<A>> {
        cfg.validate()?;
        Ok(self
            .run_sinked(app, splits, cfg, partitioner, None, |_| Vec::new())?
            .into_job_output())
    }

    /// Runs `app` over `splits` through the shared content-addressed
    /// result cache: each split's partitioned map output is looked up by
    /// a stable hash of its input bytes plus the app identity — type
    /// *and* instance parameters, per
    /// [`Application::cache_identity`](crate::traits::Application::cache_identity)
    /// — and the output-shaping config knobs, and whole-job results are
    /// memoized the same way. Warm runs replay cached artifacts through
    /// the normal shuffle routing, so their output is byte-identical to
    /// a cold run at any pool width — only the `cache.*` counters
    /// differ.
    ///
    /// Three situations degrade gracefully instead of caching wrongly:
    ///
    /// * `cfg.cache` is [`CacheBudget::Disabled`] — the cache is
    ///   bypassed entirely, exactly like
    ///   [`LocalRunner::run_with_partitioner`].
    /// * The app cannot vouch for a complete instance identity (a
    ///   parameterized app without a `cache_identity` override) — same
    ///   bypass, counted as `cache.bypass.count`.
    /// * `cfg.snapshots` is enabled — split artifacts still cache, but
    ///   the *whole-job* artifact is skipped: a whole-job hit performs
    ///   no run and so cannot reproduce the snapshot stream (or the
    ///   per-reducer driver reports) a cold run publishes.
    ///
    /// A whole-job hit returns the sealed partitions with empty
    /// `reports`/`snapshots` and only `cache.*` counters — it describes
    /// a run that never happened.
    ///
    /// [`CacheBudget::Disabled`]: crate::config::CacheBudget::Disabled
    pub fn run_cached<A, P>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
        cache: &SharedCache,
    ) -> MrResult<JobOutput<A>>
    where
        A: Application,
        P: Partitioner<A::MapKey> + Sync,
        A::InKey: StableHash,
        A::InValue: StableHash,
        A::MapKey: Sync,
        A::MapValue: Sync,
        A::OutKey: Sync + SizeEstimate,
        A::OutValue: Sync + SizeEstimate,
    {
        cfg.validate()?;
        if !cfg.cache.is_enabled() {
            return self.run_with_partitioner(app, splits, cfg, partitioner);
        }
        let partitioner_id = std::any::type_name::<P>();
        let Some(plan) = SplitCachePlan::new(cache, app, cfg, partitioner_id, &splits) else {
            // The app cannot vouch for its instance identity: caching
            // under an incomplete key would let differently-configured
            // instances serve each other's results. Run uncached and
            // surface the bypass as a typed counter.
            let mut out = self.run_with_partitioner(app, splits, cfg, partitioner)?;
            let mut extra = Counters::new();
            extra.incr(names::CACHE_BYPASS);
            if cfg.trace.is_enabled() {
                let mut rec = TraceRecorder::new(Scope::job(0), true);
                record_counter_totals(&mut rec, &extra);
                let dispatcher = TraceDispatcher::new(true);
                rec.flush_into(&dispatcher);
                out.trace.entries.extend(dispatcher.finish().entries);
            }
            for (name, delta) in extra.iter() {
                out.counters.add(name.to_string(), delta);
            }
            return Ok(out);
        };
        // The whole-job artifact is only sound when a hit's fabricated
        // output (sealed partitions, nothing else) matches what a cold
        // run would publish — an enabled snapshot policy breaks that.
        let job_key = if cfg.snapshots.is_enabled() {
            None
        } else {
            cache::job_key(app, cfg, partitioner_id, &splits)
        };
        if let Some(key) = job_key {
            if let Some((parts, bytes)) = cache.get_job::<A>(key) {
                let mut counters = Counters::new();
                counters.incr(names::CACHE_HITS);
                counters.add(names::CACHE_HIT_BYTES, bytes);
                let tracing = cfg.trace.is_enabled();
                let trace = if tracing {
                    let dispatcher = TraceDispatcher::new(true);
                    let mut rec = TraceRecorder::new(Scope::job(0), true);
                    record_counter_totals(&mut rec, &counters);
                    rec.cache_mark_wall(0.0, 1, 0, bytes);
                    rec.flush_into(&dispatcher);
                    dispatcher.finish()
                } else {
                    TraceLog::default()
                };
                return Ok(JobOutput {
                    partitions: (*parts).clone(),
                    counters,
                    reports: Vec::new(),
                    snapshots: Vec::new(),
                    trace,
                });
            }
        }
        let mut out = self
            .run_sinked(app, splits, cfg, partitioner, Some(&plan), |_| Vec::new())?
            .into_job_output();
        let mut extra = Counters::new();
        if let Some(key) = job_key {
            let outcome = cache.put_job::<A>(key, out.partitions.clone());
            extra.incr(names::CACHE_MISSES);
            outcome.charge(&mut extra);
        }
        let (hits, misses) = (
            out.counters.get(names::CACHE_HITS) + extra.get(names::CACHE_HITS),
            out.counters.get(names::CACHE_MISSES) + extra.get(names::CACHE_MISSES),
        );
        for (name, delta) in extra.iter() {
            out.counters.add(name.to_string(), delta);
        }
        if cfg.trace.is_enabled() {
            // Keep `Counters::from_trace(&out.trace)` consistent with
            // `out.counters`: the post-run cache charges land in the
            // trace too, as one more job-scope batch.
            let mut rec = TraceRecorder::new(Scope::job(0), true);
            record_counter_totals(&mut rec, &extra);
            rec.cache_mark_wall(0.0, hits, misses, cache.used_bytes());
            let dispatcher = TraceDispatcher::new(true);
            rec.flush_into(&dispatcher);
            out.trace.entries.extend(dispatcher.finish().entries);
        }
        Ok(out)
    }

    /// Runs many independent jobs of the same application on **one**
    /// shared worker pool: every job's task graph is spawned up front
    /// and `cfg.pool_workers` OS threads drive them all concurrently —
    /// the multi-tenant shape from the ROADMAP, with thread count
    /// bounded by the pool instead of growing with the job count.
    ///
    /// Jobs fail independently: one job's OOM surfaces as its own `Err`
    /// entry while the others complete (only a task *panic* poisons the
    /// whole pool).
    #[allow(clippy::type_complexity)]
    pub fn run_many<A, P>(
        &self,
        app: &A,
        jobs: Vec<Vec<Vec<(A::InKey, A::InValue)>>>,
        cfg: &JobConfig,
        partitioner: &P,
    ) -> MrResult<ManyJobsOutput<A>>
    where
        A: Application,
        P: Partitioner<A::MapKey> + Sync,
    {
        cfg.validate()?;
        let states: Vec<StageState<A, Vec<(A::OutKey, A::OutValue)>>> = jobs
            .iter()
            .map(|splits| StageState::new(cfg, splits.len()))
            .collect();
        let mut pool = Pool::new();
        for (state, splits) in states.iter().zip(jobs.iter()) {
            build_stage(
                &mut pool,
                state,
                app,
                cfg,
                partitioner,
                StageInput::Splits(splits),
                self.map_threads,
                None,
                |_| Vec::new(),
            )?;
        }
        let report = pool.run(cfg.pool_workers)?;
        let outs = states
            .into_iter()
            .map(|state| collect_stage(state).map(SinkedRun::into_job_output))
            .collect();
        Ok(ManyJobsOutput {
            jobs: outs,
            pool: PoolStats {
                workers: report.workers,
                peak_threads: report.peak_threads,
            },
        })
    }

    /// One job with caller-chosen reduce-output sinks: builds the stage
    /// graph on a fresh pool and drives it with `cfg.pool_workers`
    /// threads. The hook the chain driver builds on.
    pub(crate) fn run_sinked<A, P, S, F>(
        &self,
        app: &A,
        splits: Vec<Vec<(A::InKey, A::InValue)>>,
        cfg: &JobConfig,
        partitioner: &P,
        cache: Option<&SplitCachePlan<A>>,
        make_sink: F,
    ) -> MrResult<SinkedRun<A, S>>
    where
        A: Application,
        P: Partitioner<A::MapKey> + Sync,
        S: ReduceSink<A>,
        F: Fn(usize) -> S,
    {
        let state = StageState::new(cfg, splits.len());
        let mut pool = Pool::new();
        build_stage(
            &mut pool,
            &state,
            app,
            cfg,
            partitioner,
            StageInput::Splits(&splits),
            self.map_threads,
            cache,
            make_sink,
        )?;
        pool.run(cfg.pool_workers)?;
        collect_stage(state)
    }

    /// Runs `app` with DryadInc-style map-output memoization (§8 of the
    /// paper): splits whose [`memo::Fingerprint`] is already cached skip
    /// the map function entirely. Pass the same `cache` across runs of an
    /// iterative job; clear it when the map function changes.
    ///
    /// The reduce side runs the configured engine as usual (the cached
    /// map output feeds it all at once, so this path favours iterative
    /// re-runs over first-run pipelining).
    #[allow(clippy::type_complexity)]
    pub fn run_memoized<A, P>(
        &self,
        app: &A,
        splits: Vec<(memo::Fingerprint, Vec<(A::InKey, A::InValue)>)>,
        cfg: &JobConfig,
        partitioner: &P,
        cache: &mut memo::MemoCache<A>,
    ) -> MrResult<JobOutput<A>>
    where
        A: Application,
        P: Partitioner<A::MapKey>,
        A::MapKey: Sync,
        A::MapValue: Sync,
    {
        cfg.validate()?;
        let started = Instant::now();
        let reducers = cfg.reducers;
        let tracing = cfg.trace.is_enabled();
        let dispatcher = TraceDispatcher::new(tracing);
        let mut counters = Counters::new();
        let mut partitions: Vec<Vec<(A::MapKey, A::MapValue)>> =
            (0..reducers).map(|_| Vec::new()).collect();
        for (fp, split) in &splits {
            if let Some(cached) = cache.lookup(*fp, reducers) {
                counters.incr(names::CACHE_HITS);
                for (p, records) in cached.iter().enumerate() {
                    partitions[p].extend(records.iter().cloned());
                }
                continue;
            }
            counters.incr(names::CACHE_MISSES);
            let mut parts: Vec<Vec<(A::MapKey, A::MapValue)>> =
                (0..reducers).map(|_| Vec::new()).collect();
            {
                let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                    counters.incr(names::MAP_OUTPUT_RECORDS);
                    let p = partitioner.partition(&k, reducers);
                    parts[p].push((k, v));
                });
                for (k, v) in split {
                    app.map(k, v, &mut emit);
                }
            }
            for (p, records) in parts.iter().enumerate() {
                partitions[p].extend(records.iter().cloned());
            }
            cache.insert(*fp, reducers, parts);
        }

        let mut outputs = Vec::with_capacity(reducers);
        let mut reports = Vec::new();
        let mut snapshots: Vec<Vec<Snapshot<A>>> = Vec::with_capacity(reducers);
        for (r, records) in partitions.into_iter().enumerate() {
            let t0 = started.elapsed().as_secs_f64();
            let span_kind = match &cfg.engine {
                Engine::Barrier => SpanKind::SortReduce,
                Engine::BarrierLess { .. } => SpanKind::ShuffleReduce,
            };
            match &cfg.engine {
                Engine::Barrier => {
                    let absorbed = records.len() as u64;
                    let out = reduce_partition_barrier(app, records, &mut counters)?;
                    snapshots.push(barrier_snapshot(
                        cfg,
                        r,
                        absorbed,
                        started.elapsed().as_secs_f64(),
                        &out,
                        &mut counters,
                    ));
                    outputs.push(out);
                }
                Engine::BarrierLess { .. } => {
                    let (out, report, snaps) =
                        reduce_partition_barrierless_traced(app, cfg, r, records, &mut counters)?;
                    outputs.push(out);
                    reports.push(report);
                    snapshots.push(snaps);
                }
            }
            if tracing {
                let mut rec = TraceRecorder::new(
                    Scope::task(0, TaskKind::Reduce, r as u32, 0, NO_NODE),
                    true,
                );
                rec.span_wall(span_kind, t0, started.elapsed().as_secs_f64());
                for s in snapshots.last().into_iter().flatten() {
                    rec.snapshot_wall(s.at_secs, s.seq, s.records_absorbed, s.live_entries as u64);
                }
                rec.flush_into(&dispatcher);
            }
        }
        // Single-threaded path: every counter (map and reduce alike) is
        // already merged, so the whole total is one job-scope batch.
        if tracing {
            let mut rec = TraceRecorder::new(Scope::job(0), true);
            record_counter_totals(&mut rec, &counters);
            rec.flush_into(&dispatcher);
        }
        let trace = dispatcher.finish();
        let counters = if tracing {
            Counters::from_trace(&trace)
        } else {
            counters
        };
        Ok(JobOutput {
            partitions: outputs,
            counters,
            reports,
            snapshots,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryPolicy;
    use crate::testutil::{scratch_dir, GlobalSum, WordCountApp};
    use std::collections::BTreeMap;

    fn text_splits(n_splits: usize, lines_per_split: usize) -> Vec<Vec<(u64, String)>> {
        let vocab = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "barrier", "less",
        ];
        let mut splits = Vec::new();
        let mut counter = 0u64;
        for s in 0..n_splits {
            let mut split = Vec::new();
            for l in 0..lines_per_split {
                let a = vocab[(s * 7 + l) % vocab.len()];
                let b = vocab[(s + l * 3) % vocab.len()];
                let c = vocab[(s * 2 + l * 5) % vocab.len()];
                split.push((counter, format!("{a} {b} {c}")));
                counter += 1;
            }
            splits.push(split);
        }
        splits
    }

    fn expected_counts(splits: &[Vec<(u64, String)>]) -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        for split in splits {
            for (_, line) in split {
                for w in line.split_whitespace() {
                    *m.entry(w.to_string()).or_insert(0) += 1;
                }
            }
        }
        m
    }

    #[test]
    fn barrier_engine_counts_words() {
        let splits = text_splits(6, 40);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(4);
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(out.counters.get(names::MAP_OUTPUT_RECORDS), 6 * 40 * 3);
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pipelined_engine_matches_barrier_engine() {
        let splits = text_splits(8, 50);
        let expect = expected_counts(&splits);
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge {
                threshold_bytes: 512,
            },
            MemoryPolicy::KvStore { cache_bytes: 1024 },
        ] {
            let cfg = JobConfig::new(3)
                .engine(Engine::BarrierLess {
                    memory: policy.clone(),
                })
                .scratch_dir(scratch_dir("local-eq"));
            let out = LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &cfg)
                .unwrap();
            let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
            assert_eq!(got, expect, "policy {policy:?} diverged from barrier");
        }
    }

    #[test]
    fn unkeyed_app_runs_through_shared_state() {
        let splits: Vec<Vec<(u64, u64)>> = (0..4)
            .map(|s| (0..100).map(|i| (i, s * 100 + i)).collect())
            .collect();
        let total: u64 = (0..400u64).sum();
        let cfg = JobConfig::new(1).engine(Engine::barrierless());
        let out = LocalRunner::new(2).run(&GlobalSum, splits, &cfg).unwrap();
        assert_eq!(out.partitions[0], vec![(0u8, total)]);
        // No keyed state: the store never held entries.
        assert_eq!(out.reports[0].store.peak_entries, 0);
    }

    #[test]
    fn oom_propagates_from_reducer_to_job() {
        let splits = text_splits(4, 100);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .heap_cap(200)
            .scratch_dir(scratch_dir("local-oom"));
        let err = LocalRunner::new(4).run(&WordCountApp, splits, &cfg);
        assert!(
            matches!(err, Err(MrError::OutOfMemory { .. })),
            "expected OOM, got {:?}",
            err.err().map(|e| e.to_string())
        );
    }

    #[test]
    fn oom_never_hangs_at_any_pool_width() {
        // The failing reducer drops its channel; mappers must unwind via
        // send errors at every pool width, including the degenerate
        // 1-byte batch budget where every record is its own batch.
        for pool_workers in [1, 2, 4] {
            let splits = text_splits(4, 100);
            let cfg = JobConfig::new(2)
                .engine(Engine::barrierless())
                .heap_cap(200)
                .shuffle_batch_bytes(1)
                .pool_workers(pool_workers)
                .scratch_dir(scratch_dir("local-oom-pool"));
            let err = LocalRunner::new(4).run(&WordCountApp, splits, &cfg);
            assert!(
                matches!(err, Err(MrError::OutOfMemory { .. })),
                "workers {pool_workers}: expected OOM, got {:?}",
                err.err().map(|e| e.to_string())
            );
        }
    }

    #[test]
    fn single_split_single_reducer() {
        let splits = vec![vec![(0u64, "a a b".to_string())]];
        let cfg = JobConfig::new(1).engine(Engine::barrierless());
        let out = LocalRunner::new(1)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(
            out.into_sorted_output(),
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let cfg = JobConfig::new(2);
        let out = LocalRunner::new(2)
            .run(&WordCountApp, Vec::new(), &cfg)
            .unwrap();
        assert_eq!(out.record_count(), 0);
        let cfg = JobConfig::new(2).engine(Engine::barrierless());
        let out = LocalRunner::new(2)
            .run(&WordCountApp, Vec::new(), &cfg)
            .unwrap();
        assert_eq!(out.record_count(), 0);
    }

    #[test]
    fn combiner_cuts_shuffle_records_without_changing_output() {
        let splits = text_splits(6, 50);
        let expect = expected_counts(&splits);
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let plain_cfg = JobConfig::new(3).engine(engine.clone());
            let plain = LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &plain_cfg)
                .unwrap();
            let comb_cfg = JobConfig::new(3)
                .engine(engine.clone())
                .combiner(crate::config::CombinerPolicy::enabled());
            let combined = LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &comb_cfg)
                .unwrap();
            // Byte-exact output invariant.
            let got: BTreeMap<String, u64> =
                combined.partitions.iter().flatten().cloned().collect();
            assert_eq!(got, expect, "engine {engine:?} with combiner diverged");
            // The combiner really ran and really pre-aggregated: raw map
            // output (10-word vocab × many lines) collapses to ~vocab
            // records per split × reducer.
            assert_eq!(
                combined.counters.get(names::COMBINE_INPUT_RECORDS),
                plain.counters.get(names::MAP_OUTPUT_RECORDS)
            );
            assert!(
                combined.counters.get(names::COMBINE_OUTPUT_RECORDS)
                    < combined.counters.get(names::COMBINE_INPUT_RECORDS) / 2,
                "combining barely reduced records: {} -> {}",
                combined.counters.get(names::COMBINE_INPUT_RECORDS),
                combined.counters.get(names::COMBINE_OUTPUT_RECORDS)
            );
            if engine != Engine::Barrier {
                // Only combined records crossed the shuffle transport.
                assert_eq!(
                    combined.counters.get(names::SHUFFLE_RECORDS),
                    combined.counters.get(names::COMBINE_OUTPUT_RECORDS)
                );
            }
        }
    }

    #[test]
    fn one_record_batches_still_deliver_everything() {
        // Degenerate batch budget: every record flushes its own batch —
        // the transport must stay correct, just slower.
        let splits = text_splits(4, 30);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(3)
            .engine(Engine::barrierless())
            .shuffle_batch_bytes(1);
        let out = LocalRunner::new(3)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(
            out.counters.get(names::SHUFFLE_RECORDS),
            out.counters.get(names::MAP_OUTPUT_RECORDS)
        );
        assert_eq!(
            out.counters.get(names::SHUFFLE_BATCHES),
            out.counters.get(names::SHUFFLE_RECORDS)
        );
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn tiny_combiner_budget_spills_partials_and_stays_correct() {
        let splits = text_splits(5, 40);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .combiner(crate::config::CombinerPolicy::Enabled { budget_bytes: 64 });
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert!(out.counters.get(names::COMBINE_OUTPUT_RECORDS) > 0);
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn pipelined_recycles_batch_buffers() {
        // One-record batches produce thousands of batches; every batch
        // beyond the channel depth must ride a recycled buffer, which is
        // exactly what the modelled reuse counter accounts.
        let splits = text_splits(8, 80);
        let expect = expected_counts(&splits);
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .shuffle_batch_bytes(1);
        let out = LocalRunner::new(2)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        let batches = out.counters.get(names::SHUFFLE_BATCHES);
        let reused = out.counters.get(names::SHUFFLE_BATCH_REUSE);
        assert!(batches > 100);
        assert!(reused > 0, "reuse model never charged a buffer round trip");
        assert!(
            reused <= batches,
            "reuse {reused} exceeds batches {batches}"
        );
        let got: BTreeMap<String, u64> = out.into_sorted_output().into_iter().collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn shuffle_counters_are_schedule_independent() {
        // Batch boundaries are cut per split by byte budget, so the
        // shuffle accounting must be byte-identical at every pool width
        // — including the reuse counter, which is modelled from batch
        // counts rather than observed free-list traffic.
        let splits = text_splits(6, 40);
        let run = |pool_workers: usize, combine: bool| {
            let mut cfg = JobConfig::new(3)
                .engine(Engine::barrierless())
                .pool_workers(pool_workers);
            if combine {
                cfg = cfg.combiner(crate::config::CombinerPolicy::enabled());
            }
            LocalRunner::new(4)
                .run(&WordCountApp, splits.clone(), &cfg)
                .unwrap()
        };
        for combine in [false, true] {
            let base = run(1, combine);
            for workers in [2, 4] {
                let other = run(workers, combine);
                assert_eq!(
                    base.partitions, other.partitions,
                    "combine {combine}: output changed at {workers} workers"
                );
                let m = |c: &Counters| -> BTreeMap<String, u64> {
                    c.iter().map(|(k, v)| (k.to_string(), v)).collect()
                };
                assert_eq!(
                    m(&base.counters),
                    m(&other.counters),
                    "combine {combine}: counters changed at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn many_jobs_share_a_bounded_pool() {
        // The ROADMAP bar: hundreds of small concurrent jobs on a
        // fixed-size pool, outputs byte-identical to one-job-at-a-time
        // runs, thread count bounded by the pool — not the job count.
        let n_jobs = 256;
        let jobs: Vec<Vec<Vec<(u64, String)>>> = (0..n_jobs)
            .map(|j| {
                let mut split = text_splits(1, 6).remove(0);
                for (id, line) in &mut split {
                    *id += j as u64 * 1000;
                    line.push_str(if j % 2 == 0 { " even" } else { " odd" });
                }
                vec![split]
            })
            .collect();
        for engine in [Engine::Barrier, Engine::barrierless()] {
            let cfg = JobConfig::new(2).engine(engine.clone()).pool_workers(4);
            let many = LocalRunner::new(2)
                .run_many(&WordCountApp, jobs.clone(), &cfg, &HashPartitioner)
                .unwrap();
            assert_eq!(many.pool.workers, 4);
            assert!(
                many.pool.peak_threads <= 4,
                "{engine:?}: {} threads for a 4-worker pool",
                many.pool.peak_threads
            );
            assert_eq!(many.jobs.len(), n_jobs);
            for (j, (result, splits)) in many.jobs.into_iter().zip(jobs.iter()).enumerate() {
                let got = result.unwrap_or_else(|e| panic!("{engine:?}: job {j} failed: {e}"));
                let solo = LocalRunner::new(2)
                    .run(&WordCountApp, splits.clone(), &cfg)
                    .unwrap();
                assert_eq!(
                    got.partitions, solo.partitions,
                    "{engine:?}: job {j} diverged from its solo run"
                );
            }
        }
    }

    #[test]
    fn many_jobs_survive_one_byte_batches_on_a_tiny_pool() {
        // Worst-case interleaving pressure: every record is its own
        // batch, channels fill constantly, dozens of jobs share two
        // workers — and nothing hangs or drops a record.
        let jobs: Vec<Vec<Vec<(u64, String)>>> = (0..32).map(|_| text_splits(2, 8)).collect();
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .shuffle_batch_bytes(1)
            .pool_workers(2);
        let many = LocalRunner::new(2)
            .run_many(&WordCountApp, jobs.clone(), &cfg, &HashPartitioner)
            .unwrap();
        let expect = expected_counts(&jobs[0]);
        for result in many.jobs {
            let got: BTreeMap<String, u64> =
                result.unwrap().into_sorted_output().into_iter().collect();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn many_jobs_isolate_a_failing_job() {
        // Job 1 OOMs; its neighbours still finish with correct output.
        // The neighbours' keyed state is bounded by the tiny shared
        // vocabulary; job 1's all-unique words blow through the cap.
        let mut jobs: Vec<Vec<Vec<(u64, String)>>> = (0..4).map(|_| text_splits(1, 10)).collect();
        jobs[1] = vec![(0..400u64).map(|i| (i, format!("uniq{i:04}"))).collect()];
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .heap_cap(2000)
            .pool_workers(2)
            .scratch_dir(scratch_dir("many-oom"));
        let many = LocalRunner::new(2)
            .run_many(&WordCountApp, jobs.clone(), &cfg, &HashPartitioner)
            .unwrap();
        assert!(
            matches!(many.jobs[1], Err(MrError::OutOfMemory { .. })),
            "job 1 should OOM, got {:?}",
            many.jobs[1].as_ref().err().map(|e| e.to_string())
        );
        let expect = expected_counts(&jobs[0]);
        for (j, result) in many.jobs.into_iter().enumerate() {
            if j == 1 {
                continue;
            }
            let got: BTreeMap<String, u64> = result
                .unwrap_or_else(|e| panic!("job {j} should survive, got {e}"))
                .into_sorted_output()
                .into_iter()
                .collect();
            assert_eq!(got, expect, "job {j} output corrupted by job 1's OOM");
        }
    }

    #[test]
    fn ordered_and_hashed_indexes_agree_under_every_policy() {
        use crate::config::StoreIndex;
        let splits = text_splits(6, 40);
        for policy in [
            MemoryPolicy::InMemory,
            MemoryPolicy::SpillMerge {
                threshold_bytes: 512,
            },
            MemoryPolicy::KvStore { cache_bytes: 1024 },
        ] {
            let run = |index: StoreIndex| {
                let cfg = JobConfig::new(3)
                    .engine(Engine::BarrierLess {
                        memory: policy.clone(),
                    })
                    .store_index(index)
                    .combiner(crate::config::CombinerPolicy::enabled())
                    .scratch_dir(scratch_dir("local-ab"));
                LocalRunner::new(4)
                    .run(&WordCountApp, splits.clone(), &cfg)
                    .unwrap()
            };
            let ordered = run(StoreIndex::Ordered);
            let hashed = run(StoreIndex::Hashed);
            assert_eq!(
                ordered.partitions, hashed.partitions,
                "index flip changed output under {policy:?}"
            );
            // Spill behaviour must be identical too: byte accounting is
            // order-free, so both indexes trip the threshold at the
            // same absorb and write the same runs.
            assert_eq!(
                ordered.counters.get(names::SPILL_FILES),
                hashed.counters.get(names::SPILL_FILES),
                "index flip changed spill cadence under {policy:?}"
            );
            assert_eq!(
                ordered.counters.get(names::SPILL_BYTES),
                hashed.counters.get(names::SPILL_BYTES),
                "index flip changed spill bytes under {policy:?}"
            );
        }
    }

    #[test]
    fn invalid_config_is_an_err_not_a_worker_panic() {
        let splits = text_splits(2, 10);
        let mut cfg = JobConfig::new(2).engine(Engine::barrierless());
        cfg.shuffle_batch_bytes = 0;
        let err = LocalRunner::new(2).run(&WordCountApp, splits.clone(), &cfg);
        assert!(
            matches!(err, Err(MrError::InvalidConfig(_))),
            "zero batch bytes must fail fast, got {:?}",
            err.err().map(|e| e.to_string())
        );
        let mut cfg = JobConfig::new(2);
        cfg.reducers = 0;
        assert!(matches!(
            LocalRunner::new(2).run(&WordCountApp, splits.clone(), &cfg),
            Err(MrError::InvalidConfig(_))
        ));
        let mut cfg = JobConfig::new(2);
        cfg.pool_workers = 0;
        assert!(matches!(
            LocalRunner::new(2).run(&WordCountApp, splits, &cfg),
            Err(MrError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pipelined_snapshots_estimate_early_and_end_exact() {
        use crate::config::SnapshotPolicy;
        let splits = text_splits(6, 40);
        let plain_cfg = JobConfig::new(2).engine(Engine::barrierless());
        let plain = LocalRunner::new(4)
            .run(&WordCountApp, splits.clone(), &plain_cfg)
            .unwrap();
        assert_eq!(plain.snapshot_count(), 0, "snapshots off by default");
        let cfg = JobConfig::new(2)
            .engine(Engine::barrierless())
            .snapshots(SnapshotPolicy::EveryRecords { records: 100 });
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        // Byte-exact final output, snapshots or not.
        assert_eq!(out.partitions, plain.partitions);
        assert!(out.snapshot_count() >= 2, "periodic snapshots published");
        assert_eq!(
            out.counters.get(names::SNAPSHOT_COUNT),
            out.snapshot_count() as u64
        );
        for (r, snaps) in out.snapshots.iter().enumerate() {
            // Monotone sequence and record progress per reducer.
            for pair in snaps.windows(2) {
                assert!(pair[0].seq < pair[1].seq);
                assert!(pair[0].records_absorbed <= pair[1].records_absorbed);
            }
            // The last snapshot is the reducer's exact final answer.
            let last = snaps.last().expect("final snapshot");
            assert_eq!(last.estimate, out.partitions[r]);
        }
    }

    #[test]
    fn barrier_engine_publishes_only_its_finished_output() {
        use crate::config::SnapshotPolicy;
        let splits = text_splits(4, 30);
        let cfg = JobConfig::new(3).snapshots(SnapshotPolicy::EveryRecords { records: 1 });
        let out = LocalRunner::new(4)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(out.snapshots.len(), 3);
        for (r, snaps) in out.snapshots.iter().enumerate() {
            assert_eq!(snaps.len(), 1, "one snapshot per barrier reducer");
            assert_eq!(snaps[0].estimate, out.partitions[r]);
            assert_eq!(snaps[0].live_entries, 0, "no partial state at the barrier");
        }
        assert_eq!(out.counters.get(names::SNAPSHOT_COUNT), 3);
        assert_eq!(out.counters.get(names::SNAPSHOT_BYTES), 0);
    }

    #[test]
    fn many_reducers_more_than_keys() {
        let splits = vec![vec![(0u64, "only two".to_string())]];
        let cfg = JobConfig::new(16).engine(Engine::barrierless());
        let out = LocalRunner::new(2)
            .run(&WordCountApp, splits, &cfg)
            .unwrap();
        assert_eq!(out.record_count(), 2);
        assert_eq!(out.partitions.len(), 16);
    }
}
