//! Map-output memoization — the paper's §8 future-work item:
//! "Memoization, an optimization similar to DryadInc, becomes feasible in
//! the barrier-less model."
//!
//! Iterative jobs (the genetic algorithm's generations, incremental log
//! processing) re-run maps over mostly unchanged input. A [`MemoCache`]
//! remembers each split's partitioned map output keyed by a caller-
//! supplied fingerprint; on the next run, fingerprint hits skip the map
//! function entirely and feed the cached partitions straight into the
//! (pipelined or barrier) reduce side.
//!
//! Since the shared result cache landed, `MemoCache` is a thin typed
//! adapter over the same byte-budgeted [`ResultCache`] store: entries
//! are LRU-evicted under a byte budget instead of accumulating without
//! bound, hits are zero-copy [`Arc`] shares, and hit/miss statistics
//! come from the store itself. The fingerprint API is unchanged; the
//! cache is keyed by `(fingerprint, reducers)` because partitioning
//! depends on the reducer count.

use crate::local::cache::{parts_bytes, SplitParts};
use crate::traits::Application;
use mr_cache::{CacheKey, KeyBuilder, Payload, ResultCache};
use std::marker::PhantomData;
use std::sync::Arc;

/// Default byte budget for a standalone memo cache: roomy enough that
/// iterative jobs of the test/bench scale never evict, small enough to
/// bound a long-lived driver process.
const DEFAULT_MEMO_BUDGET: u64 = 256 << 20;

/// Caller-supplied identity of one input split's *contents*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

/// Cached, partitioned map output for reuse across runs, bounded by a
/// byte budget with LRU eviction.
pub struct MemoCache<A: Application> {
    store: ResultCache,
    _app: PhantomData<fn() -> A>,
}

fn memo_key(fp: Fingerprint, reducers: usize) -> CacheKey {
    let mut k = KeyBuilder::new();
    k.write_str("mr.memo.v1");
    k.write_u64(fp.0);
    k.write_u64(reducers as u64);
    k.finish()
}

impl<A: Application> MemoCache<A> {
    /// An empty cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_budget(DEFAULT_MEMO_BUDGET)
    }

    /// An empty cache bounded at `budget_bytes` of accounted payload.
    pub fn with_budget(budget_bytes: u64) -> Self {
        MemoCache {
            store: ResultCache::new(budget_bytes),
            _app: PhantomData,
        }
    }

    /// Looks up a split's cached partitions, counting hit/miss. Hits are
    /// zero-copy shares of the stored artifact.
    #[allow(clippy::type_complexity)]
    pub fn lookup(&self, fp: Fingerprint, reducers: usize) -> Option<Arc<SplitParts<A>>>
    where
        A::MapKey: Sync,
        A::MapValue: Sync,
    {
        let (payload, _) = self.store.get(memo_key(fp, reducers))?;
        payload.downcast::<SplitParts<A>>().ok()
    }

    /// Stores a freshly computed split result, evicting least-recently
    /// used entries if the budget demands it. An artifact larger than
    /// the whole budget is rejected (and counted in
    /// [`stats`](MemoCache::stats) as oversize).
    pub fn insert(&self, fp: Fingerprint, reducers: usize, parts: SplitParts<A>)
    where
        A::MapKey: Sync,
        A::MapValue: Sync,
    {
        let bytes = parts_bytes(&parts);
        let _ = self
            .store
            .insert(memo_key(fp, reducers), Arc::new(parts) as Payload, bytes);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.store.stats().hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.store.stats().misses
    }

    /// Lifetime store statistics (inserts, evictions, oversize rejects).
    pub fn stats(&self) -> mr_cache::CacheStats {
        self.store.stats()
    }

    /// Number of cached splits.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Drops everything (e.g. when the map function itself changes).
    pub fn clear(&self) {
        self.store.clear()
    }
}

impl<A: Application> Default for MemoCache<A> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WordCountApp;

    #[test]
    fn lookup_miss_then_hit() {
        let cache: MemoCache<WordCountApp> = MemoCache::new();
        let fp = Fingerprint(42);
        assert!(cache.lookup(fp, 2).is_none());
        cache.insert(fp, 2, vec![vec![("a".into(), 1)], vec![]]);
        assert_eq!(cache.lookup(fp, 2).unwrap()[0].len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reducer_count_is_part_of_the_key() {
        let cache: MemoCache<WordCountApp> = MemoCache::new();
        let fp = Fingerprint(7);
        cache.insert(fp, 2, vec![vec![], vec![]]);
        assert!(cache.lookup(fp, 3).is_none(), "different partitioning");
        assert!(cache.lookup(fp, 2).is_some());
    }

    #[test]
    fn clear_empties() {
        let cache: MemoCache<WordCountApp> = MemoCache::new();
        cache.insert(Fingerprint(1), 1, vec![vec![]]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn budget_evicts_least_recent() {
        let cache: MemoCache<WordCountApp> = MemoCache::with_budget(400);
        let big = || vec![vec![("x".repeat(32), 1u64); 4]];
        cache.insert(Fingerprint(1), 1, big());
        cache.insert(Fingerprint(2), 1, big());
        assert!(cache.len() < 2, "budget forced an eviction");
        assert!(cache.lookup(Fingerprint(2), 1).is_some(), "newest survives");
    }
}
