//! Map-output memoization — the paper's §8 future-work item:
//! "Memoization, an optimization similar to DryadInc, becomes feasible in
//! the barrier-less model."
//!
//! Iterative jobs (the genetic algorithm's generations, incremental log
//! processing) re-run maps over mostly unchanged input. A [`MemoCache`]
//! remembers each split's partitioned map output keyed by a caller-
//! supplied fingerprint; on the next run, fingerprint hits skip the map
//! function entirely and feed the cached partitions straight into the
//! (pipelined or barrier) reduce side.
//!
//! The cache is keyed by `(fingerprint, reducers)` because partitioning
//! depends on the reducer count.

use crate::traits::Application;
use std::collections::HashMap;

/// Caller-supplied identity of one input split's *contents*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u64);

/// Cached, partitioned map output for reuse across runs.
pub struct MemoCache<A: Application> {
    #[allow(clippy::type_complexity)]
    entries: HashMap<(Fingerprint, usize), Vec<Vec<(A::MapKey, A::MapValue)>>>,
    hits: u64,
    misses: u64,
}

impl<A: Application> MemoCache<A> {
    /// An empty cache.
    pub fn new() -> Self {
        MemoCache {
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up a split's cached partitions, counting hit/miss.
    #[allow(clippy::type_complexity)]
    pub fn lookup(
        &mut self,
        fp: Fingerprint,
        reducers: usize,
    ) -> Option<&Vec<Vec<(A::MapKey, A::MapValue)>>> {
        if self.entries.contains_key(&(fp, reducers)) {
            self.hits += 1;
            self.entries.get(&(fp, reducers))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Stores a freshly computed split result.
    pub fn insert(
        &mut self,
        fp: Fingerprint,
        reducers: usize,
        parts: Vec<Vec<(A::MapKey, A::MapValue)>>,
    ) {
        self.entries.insert((fp, reducers), parts);
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached splits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything (e.g. when the map function itself changes).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<A: Application> Default for MemoCache<A> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WordCountApp;

    #[test]
    fn lookup_miss_then_hit() {
        let mut cache: MemoCache<WordCountApp> = MemoCache::new();
        let fp = Fingerprint(42);
        assert!(cache.lookup(fp, 2).is_none());
        cache.insert(fp, 2, vec![vec![("a".into(), 1)], vec![]]);
        assert_eq!(cache.lookup(fp, 2).unwrap()[0].len(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn reducer_count_is_part_of_the_key() {
        let mut cache: MemoCache<WordCountApp> = MemoCache::new();
        let fp = Fingerprint(7);
        cache.insert(fp, 2, vec![vec![], vec![]]);
        assert!(cache.lookup(fp, 3).is_none(), "different partitioning");
        assert!(cache.lookup(fp, 2).is_some());
    }

    #[test]
    fn clear_empties() {
        let mut cache: MemoCache<WordCountApp> = MemoCache::new();
        cache.insert(Fingerprint(1), 1, vec![vec![]]);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.len(), 0);
    }
}
