//! Multi-tenant job service over one long-lived worker pool.
//!
//! [`serve`] stands up a [`JobService`]: a bounded admission queue in
//! front of `pool_workers` persistent **runner tasks** on a single
//! `Pool` in service mode. Tenants submit jobs continuously; each
//! admitted job occupies exactly one runner (= one slot) for its whole
//! run and is computed in bounded slices (one split mapped, or one
//! partition reduced, per scheduler step), so many tenants multiplex on
//! a fixed thread count with no per-job pool setup or teardown — the
//! long-lived-pool follow-on to `LocalRunner::run_many`.
//!
//! **Admission** is synchronous and typed: a submission past the global
//! queue bound or the tenant's queued-job quota returns
//! [`SubmitError::Rejected`] immediately (never blocks, never panics a
//! worker); a nonsense per-job config returns the usual
//! [`MrError::InvalidConfig`]. **Scheduling** is deficit-style weighted
//! fair: when a runner frees up it serves, among the tenants with queued
//! work and spare concurrent-slot quota, first the highest priority
//! class, then the tenant whose served-jobs/weight ratio is lowest —
//! every eligible tenant's ratio grows only while it is being served, so
//! no tenant starves and long-run slot shares converge to the weights.
//! **Isolation**: a job's failure (OOM, app panic) is its own
//! [`JobHandle`] result; the pool and every other tenant's jobs are
//! untouched.
//!
//! Every trace scope a service job records is stamped with its tenant
//! ([`Scope::with_tenant`]), so `TraceQuery::per_tenant_secs` can break
//! the service's activity down by tenant. Outputs are byte-identical to
//! running the same job alone: the per-job computation is the same
//! deterministic map → partition → reduce the engines use, and jobs
//! share nothing but the slot scheduler.

use super::cache::{self, SharedCache};
use super::pool::{panic_message, Ctx, Pool, PoolTask, Step, Waker};
use super::{barrier_snapshot, record_counter_totals, InputSplit, PoolStats};
use crate::config::{Engine, JobConfig, ServiceConfig, TenantSpec};
use crate::counters::{names, Counters};
use crate::engine::barrier::reduce_partition_barrier;
use crate::engine::pipeline::reduce_partition_barrierless_traced;
use crate::engine::DriverReport;
use crate::error::{MrError, MrResult};
use crate::output::JobOutput;
use crate::partition::Partitioner;
use crate::size::SizeEstimate;
use crate::snapshot::Snapshot;
use crate::traits::{Application, FnEmit};
use mr_cache::{CacheKey, StableHash};
use mr_trace::{Scope, SpanKind, TaskKind, TraceDispatcher, TraceRecorder, NO_NODE};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a submission was turned away at admission. Every variant is a
/// transient overload signal: the submission itself was well-formed and
/// may succeed later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant index is not in the service's tenant table.
    UnknownTenant {
        /// The index the submission named.
        tenant: usize,
        /// How many tenants the service has.
        tenants: usize,
    },
    /// The global admission queue is at its bound.
    QueueFull {
        /// The configured bound.
        cap: usize,
    },
    /// The tenant is at its queued-jobs quota.
    TenantQueueFull {
        /// The quota-exhausted tenant.
        tenant: usize,
        /// The tenant's quota.
        cap: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::UnknownTenant { tenant, tenants } => {
                write!(f, "unknown tenant {tenant} (service has {tenants})")
            }
            RejectReason::QueueFull { cap } => {
                write!(f, "admission queue full ({cap} jobs waiting)")
            }
            RejectReason::TenantQueueFull { tenant, cap } => {
                write!(f, "tenant {tenant} at its queued-jobs quota ({cap})")
            }
        }
    }
}

/// Why [`JobService::submit`] did not admit a job.
#[derive(Debug)]
pub enum SubmitError {
    /// Graceful overload rejection — the backpressure signal under
    /// quota exhaustion or a full admission queue.
    Rejected {
        /// What was exhausted.
        reason: RejectReason,
    },
    /// The job's own [`JobConfig`] failed validation
    /// ([`MrError::InvalidConfig`]); resubmitting unchanged cannot
    /// succeed.
    InvalidConfig(MrError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { reason } => write!(f, "submission rejected: {reason}"),
            SubmitError::InvalidConfig(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What one finished [`serve`] session reports.
#[derive(Debug, Clone, Copy)]
pub struct ServiceReport {
    /// The long-lived pool's thread evidence.
    pub pool: PoolStats,
    /// Jobs admitted into the queue.
    pub admitted: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Jobs driven to a result (success or per-job failure).
    pub completed: u64,
}

/// One admitted job's result slot; the runner publishes, the holder of
/// the [`JobHandle`] waits.
struct JobCell<A: Application> {
    slot: Mutex<Option<MrResult<JobOutput<A>>>>,
    done: Condvar,
}

/// The caller's side of one admitted job.
pub struct JobHandle<A: Application> {
    /// Service-wide job id, in admission order.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: usize,
    cell: Arc<JobCell<A>>,
}

impl<A: Application> JobHandle<A> {
    /// Blocks until the job finishes and returns its result. Jobs fail
    /// independently: an `Err` here says nothing about other jobs.
    pub fn wait(self) -> MrResult<JobOutput<A>> {
        let mut slot = self.cell.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cell.done.wait(slot).unwrap();
        }
    }

    /// Whether the job already has a result (non-blocking).
    pub fn is_done(&self) -> bool {
        self.cell.slot.lock().unwrap().is_some()
    }
}

/// One job waiting in (or dispatched from) the admission queue.
struct Queued<A: Application> {
    id: u64,
    tenant: usize,
    cfg: JobConfig,
    splits: Vec<InputSplit<A>>,
    cell: Arc<JobCell<A>>,
}

/// The admission queue and fair-share accounting, one lock.
struct Core<A: Application> {
    /// Per-tenant FIFO of admitted, not-yet-running jobs.
    queues: Vec<VecDeque<Queued<A>>>,
    /// Jobs dispatched per tenant — the deficit accounting the fair pick
    /// compares against the weights.
    served: Vec<u64>,
    /// Jobs currently occupying a runner, per tenant.
    running: Vec<usize>,
    queued_total: usize,
    /// Runner task ids parked on an empty/ineligible queue.
    parked: Vec<usize>,
    closed: bool,
    next_id: u64,
    admitted: u64,
    rejected: u64,
    completed: u64,
}

impl<A: Application> Core<A> {
    fn new(tenants: usize) -> Self {
        Core {
            queues: (0..tenants).map(|_| VecDeque::new()).collect(),
            served: vec![0; tenants],
            running: vec![0; tenants],
            queued_total: 0,
            parked: Vec::new(),
            closed: false,
            next_id: 0,
            admitted: 0,
            rejected: 0,
            completed: 0,
        }
    }

    /// The deficit-style weighted-fair pick: among tenants with queued
    /// work and spare concurrent-slot quota, the highest priority class
    /// wins; within it, the tenant with the lowest served/weight ratio
    /// (compared exactly, by cross-multiplication). Ties go to the lower
    /// tenant index, so the pick is deterministic given the queue state.
    fn pick(&mut self, tenants: &[TenantSpec]) -> Option<Queued<A>> {
        let mut best: Option<usize> = None;
        for t in 0..self.queues.len() {
            if self.queues[t].is_empty() || self.running[t] >= tenants[t].max_concurrent_slots {
                continue;
            }
            best = Some(match best {
                None => t,
                Some(b) => {
                    let higher_class = tenants[t].priority > tenants[b].priority;
                    let same_class = tenants[t].priority == tenants[b].priority;
                    let fairer = (self.served[t] as u128) * (tenants[b].weight as u128)
                        < (self.served[b] as u128) * (tenants[t].weight as u128);
                    if higher_class || (same_class && fairer) {
                        t
                    } else {
                        b
                    }
                }
            });
        }
        let t = best?;
        self.served[t] += 1;
        self.running[t] += 1;
        self.queued_total -= 1;
        self.queues[t].pop_front()
    }
}

/// State shared by the service handle and every runner task.
struct Shared<A: Application> {
    core: Mutex<Core<A>>,
    tenants: Vec<TenantSpec>,
    queue_cap: usize,
    waker: Arc<Waker>,
    started: Instant,
    /// The service-owned result cache every tenant's jobs share, when
    /// [`ServiceConfig::cache`] enables one. Content-addressed keys are
    /// the isolation story: a tenant can only hit artifacts it would
    /// have computed bit-for-bit itself, so sharing leaks nothing.
    cache: Option<SharedCache>,
}

/// The submission interface handed to [`serve`]'s body closure.
pub struct JobService<A: Application> {
    shared: Arc<Shared<A>>,
}

impl<A: Application> JobService<A> {
    /// Submits one job for `tenant`: `splits` of input under the per-job
    /// `cfg` (engine, reducers, heap policy — the service ignores
    /// `cfg.pool_workers`; parallelism comes from the service's own
    /// slots). Returns immediately: a [`JobHandle`] on admission, a
    /// typed [`SubmitError`] otherwise. Never blocks.
    pub fn submit(
        &self,
        tenant: usize,
        splits: Vec<InputSplit<A>>,
        cfg: &JobConfig,
    ) -> Result<JobHandle<A>, SubmitError> {
        cfg.validate().map_err(SubmitError::InvalidConfig)?;
        let s = &self.shared;
        if tenant >= s.tenants.len() {
            // Not counted: there is no tenant to charge the rejection to.
            return Err(SubmitError::Rejected {
                reason: RejectReason::UnknownTenant {
                    tenant,
                    tenants: s.tenants.len(),
                },
            });
        }
        let (handle, woken) = {
            let mut core = s.core.lock().unwrap();
            if core.queued_total >= s.queue_cap {
                core.rejected += 1;
                return Err(SubmitError::Rejected {
                    reason: RejectReason::QueueFull { cap: s.queue_cap },
                });
            }
            let quota = s.tenants[tenant].max_queued_jobs;
            if core.queues[tenant].len() >= quota {
                core.rejected += 1;
                return Err(SubmitError::Rejected {
                    reason: RejectReason::TenantQueueFull { tenant, cap: quota },
                });
            }
            let id = core.next_id;
            core.next_id += 1;
            core.admitted += 1;
            core.queued_total += 1;
            let cell = Arc::new(JobCell {
                slot: Mutex::new(None),
                done: Condvar::new(),
            });
            core.queues[tenant].push_back(Queued {
                id,
                tenant,
                cfg: cfg.clone(),
                splits,
                cell: Arc::clone(&cell),
            });
            (
                JobHandle { id, tenant, cell },
                std::mem::take(&mut core.parked),
            )
        };
        s.waker.wake_all_of(woken);
        Ok(handle)
    }
}

/// Which part of its current job a runner is slicing through.
enum Phase<A: Application> {
    /// Mapping splits, one per step.
    Map {
        next_split: usize,
        partitions: Vec<Vec<(A::MapKey, A::MapValue)>>,
        counters: Counters,
    },
    /// Reducing partitions, one per step.
    Reduce {
        partitions: Vec<Vec<(A::MapKey, A::MapValue)>>,
        next: usize,
        outputs: Vec<Vec<(A::OutKey, A::OutValue)>>,
        reports: Vec<DriverReport>,
        snapshots: Vec<Vec<Snapshot<A>>>,
        counters: Counters,
    },
}

/// A dispatched job mid-run on one runner.
struct Active<A: Application> {
    job: Queued<A>,
    tracing: bool,
    dispatcher: TraceDispatcher,
    phase: Phase<A>,
    /// Whether this job consults the shared cache at all: the service
    /// has a cache, the job's own `cfg.cache` opts in, *and* the app
    /// vouches for a complete instance identity.
    cached: bool,
    /// The job's sealed-artifact cache key — `Some` iff `cached` and
    /// the job's snapshot policy is disabled (a whole-job hit performs
    /// no run, so it cannot reproduce a cold run's snapshot stream;
    /// such jobs use only the per-split artifacts).
    cache_key: Option<CacheKey>,
}

/// One persistent slot of the service: grabs the fair pick's next job,
/// computes it in bounded slices, publishes the result, repeats; parks
/// when no job is eligible and exits once the service closed and the
/// queue drained.
struct RunnerTask<'e, A: Application, P: Partitioner<A::MapKey>> {
    app: &'e A,
    partitioner: &'e P,
    shared: Arc<Shared<A>>,
    cur: Option<Active<A>>,
}

impl<A, P> RunnerTask<'_, A, P>
where
    A: Application,
    P: Partitioner<A::MapKey>,
    A::InKey: StableHash,
    A::InValue: StableHash,
    A::MapKey: Sync,
    A::MapValue: Sync,
    A::OutKey: Sync + SizeEstimate,
    A::OutValue: Sync + SizeEstimate,
{
    /// Runs one bounded slice of the active job. `Ok(None)` = more
    /// slices left; `Ok(Some(out))` = job finished.
    fn slice(&mut self) -> MrResult<Option<JobOutput<A>>> {
        let active = self.cur.as_mut().expect("slice with an active job");
        let shared_cache = self.shared.cache.as_ref();
        let job = &active.job;
        let tenant = job.tenant as u32;
        let reducers = job.cfg.reducers;
        let app = self.app;
        let started = self.shared.started;
        match &mut active.phase {
            Phase::Map {
                next_split,
                partitions,
                counters,
            } => {
                // Before any split runs, consult the sealed-job
                // artifact: a whole-job hit skips map and reduce alike.
                if *next_split == 0 {
                    if shared_cache.is_some() && job.cfg.cache.is_enabled() && !active.cached {
                        // The app's instance identity is incomplete:
                        // the job wanted caching but runs uncached.
                        counters.incr(names::CACHE_BYPASS);
                    }
                    if let (Some(key), Some(c)) = (active.cache_key, shared_cache) {
                        if let Some((parts, bytes)) = c.get_job::<A>(key) {
                            let mut hit = Counters::new();
                            hit.incr(names::CACHE_HITS);
                            hit.add(names::CACHE_HIT_BYTES, bytes);
                            let trace = if active.tracing {
                                let mut rec = TraceRecorder::new(
                                    Scope::job(job.id as u32).with_tenant(tenant),
                                    true,
                                );
                                record_counter_totals(&mut rec, &hit);
                                rec.cache_mark_wall(started.elapsed().as_secs_f64(), 1, 0, bytes);
                                rec.flush_into(&active.dispatcher);
                                std::mem::replace(
                                    &mut active.dispatcher,
                                    TraceDispatcher::new(false),
                                )
                                .finish()
                            } else {
                                Default::default()
                            };
                            let counters = if active.tracing {
                                Counters::from_trace(&trace)
                            } else {
                                hit
                            };
                            return Ok(Some(JobOutput {
                                partitions: (*parts).clone(),
                                counters,
                                reports: Vec::new(),
                                snapshots: Vec::new(),
                                trace,
                            }));
                        }
                        counters.incr(names::CACHE_MISSES);
                    }
                }
                if *next_split < job.splits.len() {
                    let idx = *next_split;
                    let t0 = started.elapsed().as_secs_f64();
                    let split_key = if active.cached {
                        cache::split_key(
                            app,
                            &job.cfg,
                            std::any::type_name::<P>(),
                            &job.splits[idx],
                        )
                    } else {
                        None
                    };
                    let cached = split_key
                        .zip(shared_cache)
                        .and_then(|(k, c)| c.get_split::<A>(k));
                    if let Some((parts, bytes)) = cached {
                        // Split artifact hit: the map function is
                        // skipped and the cached raw records take the
                        // same partition route the emitter would have.
                        counters.incr(names::CACHE_HITS);
                        counters.add(names::CACHE_HIT_BYTES, bytes);
                        for (p, records) in parts.iter().enumerate() {
                            partitions[p].extend(records.iter().cloned());
                        }
                    } else {
                        let mut raw: Option<cache::SplitParts<A>> = split_key.map(|_| {
                            counters.incr(names::CACHE_MISSES);
                            (0..reducers).map(|_| Vec::new()).collect()
                        });
                        let partitioner = self.partitioner;
                        let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
                            counters.incr(names::MAP_OUTPUT_RECORDS);
                            let p = partitioner.partition(&k, reducers);
                            if let Some(raw) = raw.as_mut() {
                                raw[p].push((k.clone(), v.clone()));
                            }
                            partitions[p].push((k, v));
                        });
                        for (k, v) in &job.splits[idx] {
                            app.map(k, v, &mut emit);
                        }
                        // `emit`'s borrow of `raw` ends here (NLL), freeing it
                        // for publication.
                        if let (Some(k), Some(c), Some(raw)) = (split_key, shared_cache, raw) {
                            c.put_split::<A>(k, raw).charge(counters);
                        }
                    }
                    if active.tracing {
                        let mut rec = TraceRecorder::new(
                            Scope::task(job.id as u32, TaskKind::Map, idx as u32, 0, NO_NODE)
                                .with_tenant(tenant),
                            true,
                        );
                        rec.span_wall(SpanKind::Map, t0, started.elapsed().as_secs_f64());
                        rec.flush_into(&active.dispatcher);
                    }
                    *next_split += 1;
                    return Ok(None);
                }
                active.phase = Phase::Reduce {
                    partitions: std::mem::take(partitions),
                    next: 0,
                    outputs: Vec::with_capacity(reducers),
                    reports: Vec::new(),
                    snapshots: Vec::with_capacity(reducers),
                    counters: std::mem::take(counters),
                };
                Ok(None)
            }
            Phase::Reduce {
                partitions,
                next,
                outputs,
                reports,
                snapshots,
                counters,
            } => {
                if *next < reducers {
                    let r = *next;
                    let records = std::mem::take(&mut partitions[r]);
                    let t0 = started.elapsed().as_secs_f64();
                    let span_kind = match &job.cfg.engine {
                        Engine::Barrier => SpanKind::SortReduce,
                        Engine::BarrierLess { .. } => SpanKind::ShuffleReduce,
                    };
                    match &job.cfg.engine {
                        Engine::Barrier => {
                            let absorbed = records.len() as u64;
                            let out = reduce_partition_barrier(app, records, counters)?;
                            snapshots.push(barrier_snapshot(
                                &job.cfg,
                                r,
                                absorbed,
                                started.elapsed().as_secs_f64(),
                                &out,
                                counters,
                            ));
                            outputs.push(out);
                        }
                        Engine::BarrierLess { .. } => {
                            let (out, report, snaps) = reduce_partition_barrierless_traced(
                                app, &job.cfg, r, records, counters,
                            )?;
                            outputs.push(out);
                            reports.push(report);
                            snapshots.push(snaps);
                        }
                    }
                    if active.tracing {
                        let mut rec = TraceRecorder::new(
                            Scope::task(job.id as u32, TaskKind::Reduce, r as u32, 0, NO_NODE)
                                .with_tenant(tenant),
                            true,
                        );
                        rec.span_wall(span_kind, t0, started.elapsed().as_secs_f64());
                        for s in snapshots.last().into_iter().flatten() {
                            rec.snapshot_wall(
                                s.at_secs,
                                s.seq,
                                s.records_absorbed,
                                s.live_entries as u64,
                            );
                        }
                        rec.flush_into(&active.dispatcher);
                    }
                    *next += 1;
                    return Ok(None);
                }
                // Finalize: publish the sealed artifact (charged into
                // the job's counters, so the totals below include it),
                // then totals to the job scope, then the output.
                if let (Some(key), Some(c)) = (active.cache_key, shared_cache) {
                    c.put_job::<A>(key, outputs.clone()).charge(counters);
                }
                if active.tracing {
                    let mut rec =
                        TraceRecorder::new(Scope::job(job.id as u32).with_tenant(tenant), true);
                    record_counter_totals(&mut rec, counters);
                    if let Some(c) = shared_cache.filter(|_| active.cached) {
                        rec.cache_mark_wall(
                            started.elapsed().as_secs_f64(),
                            counters.get(names::CACHE_HITS),
                            counters.get(names::CACHE_MISSES),
                            c.used_bytes(),
                        );
                    }
                    rec.flush_into(&active.dispatcher);
                }
                let trace =
                    std::mem::replace(&mut active.dispatcher, TraceDispatcher::new(false)).finish();
                let counters = if active.tracing {
                    Counters::from_trace(&trace)
                } else {
                    std::mem::take(counters)
                };
                Ok(Some(JobOutput {
                    partitions: std::mem::take(outputs),
                    counters,
                    reports: std::mem::take(reports),
                    snapshots: std::mem::take(snapshots),
                    trace,
                }))
            }
        }
    }

    /// Publishes the active job's result and releases its slot, waking
    /// parked runners whose tenant-quota eligibility may have changed.
    fn finish(&mut self, result: MrResult<JobOutput<A>>) {
        let active = self.cur.take().expect("finish with an active job");
        {
            let mut slot = active.job.cell.slot.lock().unwrap();
            *slot = Some(result);
        }
        active.job.cell.done.notify_all();
        let woken = {
            let mut core = self.shared.core.lock().unwrap();
            core.running[active.job.tenant] -= 1;
            core.completed += 1;
            std::mem::take(&mut core.parked)
        };
        self.shared.waker.wake_all_of(woken);
    }
}

impl<A, P> PoolTask for RunnerTask<'_, A, P>
where
    A: Application,
    P: Partitioner<A::MapKey>,
    A::InKey: StableHash,
    A::InValue: StableHash,
    A::MapKey: Sync,
    A::MapValue: Sync,
    A::OutKey: Sync + SizeEstimate,
    A::OutValue: Sync + SizeEstimate,
{
    fn step(&mut self, cx: &mut Ctx) -> Step {
        if self.cur.is_none() {
            let mut core = self.shared.core.lock().unwrap();
            match core.pick(&self.shared.tenants) {
                Some(job) => {
                    drop(core);
                    let tracing = job.cfg.trace.is_enabled();
                    let cached = self.shared.cache.is_some()
                        && job.cfg.cache.is_enabled()
                        && cache::identity_complete(self.app);
                    // No job-level artifact for snapshot jobs: a
                    // whole-job hit cannot replay the snapshot stream.
                    let cache_key = if cached && !job.cfg.snapshots.is_enabled() {
                        cache::job_key(
                            self.app,
                            &job.cfg,
                            std::any::type_name::<P>(),
                            &job.splits,
                        )
                    } else {
                        None
                    };
                    self.cur = Some(Active {
                        job,
                        tracing,
                        dispatcher: TraceDispatcher::new(tracing),
                        phase: Phase::Map {
                            next_split: 0,
                            partitions: Vec::new(),
                            counters: Counters::new(),
                        },
                        cached,
                        cache_key,
                    });
                    // Partition buffers need the job's reducer count.
                    let active = self.cur.as_mut().unwrap();
                    let reducers = active.job.cfg.reducers;
                    if let Phase::Map { partitions, .. } = &mut active.phase {
                        *partitions = (0..reducers).map(|_| Vec::new()).collect();
                    }
                    return Step::Yield;
                }
                None => {
                    if core.closed && core.queued_total == 0 {
                        return Step::Done;
                    }
                    // Registered under the core lock, same critical
                    // section that observed "nothing eligible": the
                    // submit/completion wake cannot be lost.
                    if !core.parked.contains(&cx.task) {
                        core.parked.push(cx.task);
                    }
                    return Step::Park;
                }
            }
        }
        // One bounded slice; an app panic fails only this job.
        match catch_unwind(AssertUnwindSafe(|| self.slice())) {
            Err(payload) => {
                self.finish(Err(MrError::WorkerPanic(panic_message(payload.as_ref()))));
            }
            Ok(Err(e)) => self.finish(Err(e)),
            Ok(Ok(Some(out))) => self.finish(Ok(out)),
            Ok(Ok(None)) => {}
        }
        Step::Yield
    }
}

/// Runs a multi-tenant job service for the duration of `body`: one
/// long-lived pool of `cfg.pool_workers` threads (= job slots), a
/// bounded admission queue, and deficit-weighted-fair scheduling across
/// `cfg.tenants`. Jobs still queued when `body` returns are drained
/// before `serve` returns — admission was a promise.
///
/// Returns `body`'s result plus the session's [`ServiceReport`];
/// [`MrError::InvalidConfig`] if the service config is nonsense (zero
/// weight, zero-slot tenant, zero queue), before any thread starts.
pub fn serve<A, P, R, F>(
    app: &A,
    partitioner: &P,
    cfg: &ServiceConfig,
    body: F,
) -> MrResult<(R, ServiceReport)>
where
    A: Application,
    P: Partitioner<A::MapKey> + Sync,
    F: FnOnce(&JobService<A>) -> R,
    A::InKey: StableHash,
    A::InValue: StableHash,
    A::MapKey: Sync,
    A::MapValue: Sync,
    A::OutKey: Sync + SizeEstimate,
    A::OutValue: Sync + SizeEstimate,
{
    cfg.validate()?;
    let mut pool = Pool::new();
    let shared = Arc::new(Shared {
        core: Mutex::new(Core::new(cfg.tenants.len())),
        tenants: cfg.tenants.clone(),
        queue_cap: cfg.queue_cap,
        waker: pool.waker(),
        started: Instant::now(),
        cache: SharedCache::from_budget(&cfg.cache),
    });
    for _ in 0..cfg.pool_workers {
        pool.spawn(RunnerTask {
            app,
            partitioner,
            shared: Arc::clone(&shared),
            cur: None,
        });
    }
    let svc = JobService {
        shared: Arc::clone(&shared),
    };
    let (out, pool_report) = pool.run_service(cfg.pool_workers, || {
        // A panicking body must still close the service — skipping the
        // close would leave parked runners waiting forever (a hang
        // where the caller expects an unwind). Capture, close, re-raise
        // below once the pool has drained.
        let out = catch_unwind(AssertUnwindSafe(|| body(&svc)));
        // Service-level close *before* the pool's own close: every
        // parked runner is woken so it observes the flag and drains the
        // remaining queue instead of tripping the stall detector.
        let woken = {
            let mut core = shared.core.lock().unwrap();
            core.closed = true;
            std::mem::take(&mut core.parked)
        };
        shared.waker.wake_all_of(woken);
        out
    })?;
    let out = match out {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    };
    let core = shared.core.lock().unwrap();
    Ok((
        out,
        ServiceReport {
            pool: PoolStats {
                workers: pool_report.workers,
                peak_threads: pool_report.peak_threads,
            },
            admitted: core.admitted,
            rejected: core.rejected,
            completed: core.completed,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TracePolicy;
    use crate::local::LocalRunner;
    use crate::partition::HashPartitioner;
    use crate::testutil::WordCountApp;
    use crate::traits::Emit;
    use mr_trace::TraceQuery;

    fn text_splits(tag: usize, n_splits: usize, lines: usize) -> Vec<Vec<(u64, String)>> {
        let vocab = [
            "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "stage", "barrier",
        ];
        (0..n_splits)
            .map(|s| {
                (0..lines)
                    .map(|l| {
                        let a = vocab[(tag * 3 + s * 7 + l) % vocab.len()];
                        let b = vocab[(tag + s + l * 5) % vocab.len()];
                        ((s * lines + l) as u64, format!("{a} {b}"))
                    })
                    .collect()
            })
            .collect()
    }

    fn dummy_cell() -> Arc<JobCell<WordCountApp>> {
        Arc::new(JobCell {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn queued(tenant: usize) -> Queued<WordCountApp> {
        Queued {
            id: 0,
            tenant,
            cfg: JobConfig::new(2),
            splits: Vec::new(),
            cell: dummy_cell(),
        }
    }

    /// The deficit pick converges to the weights: with weights 1:3 on a
    /// single slot, twelve dispatches serve the tenants 3:9.
    #[test]
    fn pick_converges_to_weights() {
        let tenants = vec![
            TenantSpec::default().weight(1),
            TenantSpec::default().weight(3),
        ];
        let mut core = Core::<WordCountApp>::new(2);
        for t in 0..2 {
            for _ in 0..16 {
                core.queues[t].push_back(queued(t));
                core.queued_total += 1;
            }
        }
        for _ in 0..12 {
            let job = core.pick(&tenants).expect("work queued");
            core.running[job.tenant] -= 1; // single slot: completes at once
        }
        assert_eq!(core.served, vec![3, 9]);
    }

    /// A higher priority class owns the slot while it has eligible work,
    /// regardless of weights; quota exhaustion hands the slot down.
    #[test]
    fn pick_prefers_priority_until_quota() {
        let tenants = vec![
            TenantSpec::default().weight(100),
            TenantSpec::default().priority(5).max_concurrent_slots(2),
        ];
        let mut core = Core::<WordCountApp>::new(2);
        for t in 0..2 {
            for _ in 0..4 {
                core.queues[t].push_back(queued(t));
                core.queued_total += 1;
            }
        }
        // Slots stay occupied: the priority tenant wins twice, then its
        // concurrency quota forces the pick down to the heavy tenant.
        let order: Vec<usize> = (0..4)
            .map(|_| core.pick(&tenants).expect("work queued").tenant)
            .collect();
        assert_eq!(order, vec![1, 1, 0, 0]);
    }

    /// Every admitted job's output is byte-identical to running it alone
    /// with `LocalRunner::run`, whatever the submission interleaving.
    #[test]
    fn service_outputs_match_solo_runs() {
        let app = WordCountApp;
        let part = HashPartitioner;
        let cfg = ServiceConfig::new(2)
            .tenant(0, TenantSpec::default().weight(2))
            .pool_workers(3);
        type Submission = (usize, JobConfig, Vec<Vec<(u64, String)>>);
        let jobs: Vec<Submission> = (0..8)
            .map(|i| {
                let jc = if i % 2 == 0 {
                    JobConfig::new(3)
                } else {
                    JobConfig::new(2).engine(Engine::barrierless())
                };
                (i % 2, jc, text_splits(i, 3, 12))
            })
            .collect();
        let (outs, report) = serve(&app, &part, &cfg, |svc| {
            let handles: Vec<JobHandle<WordCountApp>> = jobs
                .iter()
                .map(|(t, jc, splits)| svc.submit(*t, splits.clone(), jc).expect("admitted"))
                .collect();
            handles
                .into_iter()
                .map(|h| h.wait().expect("job succeeds"))
                .collect::<Vec<_>>()
        })
        .expect("service runs");
        assert_eq!(report.admitted, 8);
        assert_eq!(report.completed, 8);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.pool.workers, 3);
        for (out, (_, jc, splits)) in outs.iter().zip(&jobs) {
            let solo = LocalRunner::new(2)
                .run(&WordCountApp, splits.clone(), jc)
                .expect("solo run");
            assert_eq!(out.partitions, solo.partitions);
            assert_eq!(
                out.counters.get(names::MAP_OUTPUT_RECORDS),
                solo.counters.get(names::MAP_OUTPUT_RECORDS)
            );
        }
    }

    /// Service-job trace scopes carry the tenant, so `TraceQuery` can
    /// attribute activity per tenant.
    #[test]
    fn trace_scopes_are_tenant_stamped() {
        let cfg = ServiceConfig::new(2).pool_workers(2);
        let (out, _) = serve(&WordCountApp, &HashPartitioner, &cfg, |svc| {
            svc.submit(
                1,
                text_splits(9, 2, 8),
                &JobConfig::new(2).trace(TracePolicy::Enabled),
            )
            .expect("admitted")
            .wait()
            .expect("job succeeds")
        })
        .expect("service runs");
        let q = TraceQuery::new(&out.trace);
        assert_eq!(q.tenants(), vec![1]);
        let per = q.per_tenant_secs();
        assert!(per.contains_key(&1), "tenant 1 missing from {per:?}");
    }

    /// An application that blocks inside `map` until released, so tests
    /// can fill queues deterministically while the only runner is busy.
    struct BlockingApp {
        gate: Arc<(Mutex<(usize, bool)>, Condvar)>,
    }

    impl BlockingApp {
        fn new() -> Self {
            BlockingApp {
                gate: Arc::new((Mutex::new((0, false)), Condvar::new())),
            }
        }

        fn await_entered(&self, n: usize) {
            let (lock, cv) = &*self.gate;
            let mut g = lock.lock().unwrap();
            while g.0 < n {
                g = cv.wait(g).unwrap();
            }
        }

        fn release(&self) {
            let (lock, cv) = &*self.gate;
            lock.lock().unwrap().1 = true;
            cv.notify_all();
        }
    }

    impl Application for BlockingApp {
        type InKey = u64;
        type InValue = u64;
        type MapKey = u64;
        type MapValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        type State = u64;
        type Shared = ();

        fn map(&self, key: &u64, value: &u64, out: &mut dyn Emit<u64, u64>) {
            let (lock, cv) = &*self.gate;
            let mut g = lock.lock().unwrap();
            g.0 += 1;
            cv.notify_all();
            while !g.1 {
                g = cv.wait(g).unwrap();
            }
            drop(g);
            out.emit(*key, *value);
        }

        fn new_shared(&self) {}

        fn reduce_grouped(
            &self,
            key: &u64,
            values: Vec<u64>,
            _: &mut (),
            out: &mut dyn Emit<u64, u64>,
        ) {
            out.emit(*key, values.iter().sum());
        }

        fn init(&self, _: &u64) -> u64 {
            0
        }

        fn absorb(&self, _: &u64, state: &mut u64, v: u64, _: &mut (), _: &mut dyn Emit<u64, u64>) {
            *state += v;
        }

        fn merge(&self, _: &u64, a: u64, b: u64) -> u64 {
            a + b
        }

        fn finalize(&self, key: u64, state: u64, _: &mut (), out: &mut dyn Emit<u64, u64>) {
            out.emit(key, state);
        }
    }

    /// Overload produces typed rejections, never a hang or a worker
    /// panic: tenant quota, global queue bound, unknown tenant, and a
    /// nonsense per-job config each get their own error while the single
    /// runner is busy — and every admitted job still completes.
    #[test]
    fn overload_rejections_are_typed_and_graceful() {
        let app = BlockingApp::new();
        let cfg = ServiceConfig::new(2)
            .tenant(0, TenantSpec::default().max_queued_jobs(2))
            .queue_cap(3)
            .pool_workers(1);
        let input = || vec![vec![(1u64, 10u64)]];
        let jc = JobConfig::new(1);
        let ((), report) = serve(&app, &HashPartitioner, &cfg, |svc| {
            let running = svc.submit(0, input(), &jc).expect("admitted");
            app.await_entered(1); // the only runner is now mid-map
            let queued_b = svc.submit(0, input(), &jc).expect("queued");
            let queued_c = svc.submit(0, input(), &jc).expect("queued");
            match svc.submit(0, input(), &jc) {
                Err(SubmitError::Rejected {
                    reason: RejectReason::TenantQueueFull { tenant: 0, cap: 2 },
                }) => {}
                Ok(_) => panic!("expected tenant quota rejection, got admission"),
                Err(e) => panic!("expected tenant quota rejection, got {e}"),
            }
            let queued_e = svc.submit(1, input(), &jc).expect("queued");
            match svc.submit(1, input(), &jc) {
                Err(SubmitError::Rejected {
                    reason: RejectReason::QueueFull { cap: 3 },
                }) => {}
                Ok(_) => panic!("expected queue-full rejection, got admission"),
                Err(e) => panic!("expected queue-full rejection, got {e}"),
            }
            match svc.submit(7, input(), &jc) {
                Err(SubmitError::Rejected {
                    reason:
                        RejectReason::UnknownTenant {
                            tenant: 7,
                            tenants: 2,
                        },
                }) => {}
                Ok(_) => panic!("expected unknown-tenant rejection, got admission"),
                Err(e) => panic!("expected unknown-tenant rejection, got {e}"),
            }
            match svc.submit(0, input(), &JobConfig::new(0)) {
                Err(SubmitError::InvalidConfig(MrError::InvalidConfig(_))) => {}
                Ok(_) => panic!("expected invalid-config error, got admission"),
                Err(e) => panic!("expected invalid-config error, got {e}"),
            }
            app.release();
            for h in [running, queued_b, queued_c, queued_e] {
                let out = h.wait().expect("admitted job completes");
                assert_eq!(out.partitions.concat(), vec![(1, 10)]);
            }
        })
        .expect("service survives overload");
        assert_eq!(report.admitted, 4);
        assert_eq!(report.rejected, 2); // quota + queue bound (unknown tenant has no ledger)
        assert_eq!(report.completed, 4);
    }

    /// Nonsense service configs fail up front with `InvalidConfig`
    /// before any worker thread starts.
    #[test]
    fn invalid_service_configs_rejected_up_front() {
        let cases = [
            ServiceConfig::new(0), // no tenants
            ServiceConfig::new(1).queue_cap(0),
            ServiceConfig::new(1).pool_workers(0),
            ServiceConfig::new(1).tenant(0, TenantSpec::default().weight(0)),
            ServiceConfig::new(1).tenant(0, TenantSpec::default().max_concurrent_slots(0)),
            ServiceConfig::new(1).tenant(0, TenantSpec::default().max_queued_jobs(0)),
        ];
        for cfg in cases {
            let res = serve(&WordCountApp, &HashPartitioner, &cfg, |_| ());
            assert!(
                matches!(res, Err(MrError::InvalidConfig(_))),
                "config {cfg:?} should be rejected"
            );
        }
    }

    /// An application panic fails only its own job; the pool and the
    /// other tenants' jobs are untouched.
    struct PoisonApp;

    impl Application for PoisonApp {
        type InKey = u64;
        type InValue = u64;
        type MapKey = u64;
        type MapValue = u64;
        type OutKey = u64;
        type OutValue = u64;
        type State = u64;
        type Shared = ();

        fn map(&self, key: &u64, value: &u64, out: &mut dyn Emit<u64, u64>) {
            assert!(*value != 666, "poison record");
            out.emit(*key, *value);
        }

        fn new_shared(&self) {}

        fn reduce_grouped(
            &self,
            key: &u64,
            values: Vec<u64>,
            _: &mut (),
            out: &mut dyn Emit<u64, u64>,
        ) {
            out.emit(*key, values.iter().sum());
        }

        fn init(&self, _: &u64) -> u64 {
            0
        }

        fn absorb(&self, _: &u64, state: &mut u64, v: u64, _: &mut (), _: &mut dyn Emit<u64, u64>) {
            *state += v;
        }

        fn merge(&self, _: &u64, a: u64, b: u64) -> u64 {
            a + b
        }

        fn finalize(&self, key: u64, state: u64, _: &mut (), out: &mut dyn Emit<u64, u64>) {
            out.emit(key, state);
        }
    }

    #[test]
    fn app_panic_fails_only_that_job() {
        let cfg = ServiceConfig::new(2).pool_workers(2);
        let jc = JobConfig::new(1);
        let ((), report) = serve(&PoisonApp, &HashPartitioner, &cfg, |svc| {
            let bad = svc
                .submit(0, vec![vec![(1u64, 666u64)]], &jc)
                .expect("admitted");
            let good: Vec<JobHandle<PoisonApp>> = (0..3)
                .map(|i| {
                    svc.submit(1, vec![vec![(i as u64, i as u64 + 1)]], &jc)
                        .expect("admitted")
                })
                .collect();
            match bad.wait() {
                Err(MrError::WorkerPanic(msg)) => {
                    assert!(msg.contains("poison"), "unexpected panic message: {msg}")
                }
                Ok(_) => panic!("poisoned job should fail, not succeed"),
                Err(e) => panic!("poisoned job should fail with WorkerPanic, got {e}"),
            }
            for (i, h) in good.into_iter().enumerate() {
                let out = h.wait().expect("healthy job unaffected");
                assert_eq!(out.partitions.concat(), vec![(i as u64, i as u64 + 1)]);
            }
        })
        .expect("pool survives an app panic");
        assert_eq!(report.completed, 4);
    }

    /// A panic in the *body* closure (not in a job) must unwind out of
    /// `serve`, not hang: the close protocol runs on the unwind path,
    /// so runners drain the already-admitted queue and the pool winds
    /// down before the panic is re-raised to the caller.
    #[test]
    fn body_panic_unwinds_instead_of_hanging() {
        let app = WordCountApp;
        let part = HashPartitioner;
        let cfg = ServiceConfig::new(1).pool_workers(2);
        let jc = JobConfig::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            serve(&app, &part, &cfg, |svc| {
                for tag in 0..4 {
                    svc.submit(0, text_splits(tag, 2, 6), &jc)
                        .expect("admitted");
                }
                panic!("body gave up mid-session");
            })
        }))
        .expect_err("the body panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("(non-str payload)");
        assert!(msg.contains("gave up"), "wrong panic surfaced: {msg}");
    }
}
