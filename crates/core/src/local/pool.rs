//! Fixed-size worker-pool runtime for the local executor.
//!
//! Instead of one OS thread per mapper/reducer, a `Pool` drives **task
//! state machines** from a ready queue on a fixed set of worker threads.
//! A task's `PoolTask::step` runs a bounded slice of work and
//! returns `Step::Yield` (more work, requeue me), `Step::Park` (I am
//! blocked on a channel or gate; requeue me when woken) or
//! `Step::Done`. Blocked tasks hold no thread: a full shuffle channel
//! parks the producing map task and the worker moves on to whichever
//! task is ready, so hundreds of small concurrent jobs multiplex on N
//! cores with a bounded thread count.
//!
//! Wakeups cannot be lost: a channel registers the parking task's id
//! *under the channel lock* in the same critical section that observed
//! Full/Empty, and a wake that arrives while the task is still running
//! marks it `Notified` so the scheduler requeues it instead of parking.
//! With one worker the scheduler is a deterministic FIFO, which is what
//! the single-worker determinism sweeps rely on.
//!
//! A panicking task poisons the pool: the task's box is dropped (its
//! channel handles close, so peers see EOF/disconnect instead of
//! hanging), every worker drains out, and `Pool::run` reports
//! [`MrError::WorkerPanic`]. A pool where every remaining task is parked
//! and no worker holds one can never make progress; the scheduler
//! detects that and fails the run instead of hanging.

use crate::error::{MrError, MrResult};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What one `step` slice of a task tells the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Step {
    /// More work immediately available: requeue at the back (fairness).
    Yield,
    /// Blocked on a channel or gate this step registered with; requeue
    /// on wake. If a wake raced the step, the task requeues immediately.
    Park,
    /// Finished; the task is dropped (releasing its channel handles).
    Done,
}

/// The stepping task's identity, handed to every `step` call; channel
/// and gate operations use it to register the task for wakeup.
pub(crate) struct Ctx {
    pub(crate) task: usize,
}

/// A cooperative task multiplexed on the pool. `step` must do a bounded
/// slice of work and never block the OS thread.
pub(crate) trait PoolTask: Send {
    fn step(&mut self, cx: &mut Ctx) -> Step;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Ready,
    Running,
    /// Woken while running: requeue instead of parking.
    RunningNotified,
    Parked,
    Done,
}

struct Sched {
    ready: VecDeque<usize>,
    state: Vec<TaskState>,
    /// Tasks not yet `Done`.
    live: usize,
    idle_workers: usize,
    workers: usize,
    panicked: Option<String>,
    deadlocked: bool,
    /// Service mode ([`Pool::run_service`]): while true, idle workers
    /// wait for external wakeups instead of exiting or declaring a
    /// stall — parked tasks may be woken by threads *outside* the pool
    /// (a job-service submission). [`Pool::close`] clears it, arming the
    /// normal drain-out and deadlock detection.
    accepting: bool,
}

/// The shared scheduler handle: channels and gates hold an `Arc<Waker>`
/// so wakeups need no lifetime ties to the pool's borrowed tasks.
pub(crate) struct Waker {
    sched: Mutex<Sched>,
    cv: Condvar,
}

impl Waker {
    fn new() -> Arc<Self> {
        Arc::new(Waker {
            sched: Mutex::new(Sched {
                ready: VecDeque::new(),
                state: Vec::new(),
                live: 0,
                idle_workers: 0,
                workers: 0,
                panicked: None,
                deadlocked: false,
                accepting: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Marks task `id` runnable. Parked tasks requeue; a task currently
    /// running is flagged so it requeues instead of parking (the
    /// notified-while-running race). Ready/queued/done tasks ignore it,
    /// so spurious wakes are harmless.
    pub(crate) fn wake(&self, id: usize) {
        let mut s = self.sched.lock().unwrap();
        match s.state[id] {
            TaskState::Parked => {
                s.state[id] = TaskState::Ready;
                s.ready.push_back(id);
                drop(s);
                self.cv.notify_one();
            }
            TaskState::Running => s.state[id] = TaskState::RunningNotified,
            _ => {}
        }
    }

    /// Wakes every task in `ids` (drained waiter lists).
    pub(crate) fn wake_all_of(&self, ids: Vec<usize>) {
        for id in ids {
            self.wake(id);
        }
    }
}

/// Process-wide pool-thread accounting, for the many-jobs evidence that
/// thread count stays bounded: `live` pool workers right now, and the
/// high-water mark since process start.
static LIVE_POOL_THREADS: AtomicUsize = AtomicUsize::new(0);
static PEAK_POOL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide peak number of concurrently live pool worker
/// threads since start. Note this sums across concurrently running
/// pools (e.g. parallel tests); per-run evidence is in
/// [`PoolReport::peak_threads`].
pub fn pool_thread_high_water() -> usize {
    PEAK_POOL_THREADS.load(Ordering::SeqCst)
}

/// What one finished `Pool::run` reports.
#[derive(Debug, Clone, Copy)]
pub struct PoolReport {
    /// Worker threads the pool spawned.
    pub workers: usize,
    /// Peak concurrently-live worker threads *of this pool* — by
    /// construction at most `workers`, recorded as the direct evidence
    /// that N tasks multiplexed on a bounded thread count.
    pub peak_threads: usize,
    /// Tasks the pool drove to completion.
    pub tasks: usize,
}

/// A fixed-size worker pool over borrowed task state machines. Build the
/// whole task graph first ([`spawn`](Pool::spawn), [`channel`](Pool::channel),
/// [`gate`](Pool::gate)), then [`run`](Pool::run) it to completion.
pub(crate) struct Pool<'a> {
    waker: Arc<Waker>,
    slots: Vec<Mutex<Option<Box<dyn PoolTask + 'a>>>>,
}

impl<'a> Pool<'a> {
    pub(crate) fn new() -> Self {
        Pool {
            waker: Waker::new(),
            slots: Vec::new(),
        }
    }

    /// Adds a task to the graph; it starts ready. Only valid before
    /// [`run`](Pool::run).
    pub(crate) fn spawn(&mut self, task: impl PoolTask + 'a) -> usize {
        let id = self.slots.len();
        self.slots.push(Mutex::new(Some(Box::new(task))));
        let mut s = self.waker.sched.lock().unwrap();
        s.state.push(TaskState::Ready);
        s.ready.push_back(id);
        id
    }

    /// A bounded channel whose send/receive sides park pool tasks
    /// instead of blocking threads.
    pub(crate) fn channel<T>(&self, cap: usize) -> (PoolSender<T>, PoolReceiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                rx_alive: true,
                send_waiters: Vec::new(),
                recv_waiters: Vec::new(),
            }),
            waker: Arc::clone(&self.waker),
        });
        (
            PoolSender {
                chan: Arc::clone(&chan),
            },
            PoolReceiver { chan },
        )
    }

    /// The scheduler handle, for code outside the pool (a job service's
    /// submit path) that needs to wake parked tasks.
    pub(crate) fn waker(&self) -> Arc<Waker> {
        Arc::clone(&self.waker)
    }

    /// A countdown latch: tasks [`arrive`](Gate::arrive) to count it
    /// down and [`open`](Gate::open) to wait (parked) until it hits
    /// zero. The local analogue of a phase barrier.
    pub(crate) fn gate(&self, count: usize) -> Gate {
        Gate {
            inner: Arc::new(GateInner {
                state: Mutex::new(GateState {
                    remaining: count,
                    waiters: Vec::new(),
                }),
                waker: Arc::clone(&self.waker),
            }),
        }
    }

    /// Drives every task to completion on `workers` OS threads.
    ///
    /// Fails with [`MrError::WorkerPanic`] if any task panicked (its box
    /// is dropped first, so peers unwind via channel EOF rather than
    /// hanging) or if the scheduler proves the graph can no longer make
    /// progress (every live task parked, no worker holding one).
    pub(crate) fn run(self, workers: usize) -> MrResult<PoolReport> {
        let tasks = self.slots.len();
        let workers = workers.max(1);
        {
            let mut s = self.waker.sched.lock().unwrap();
            s.live = tasks;
            s.workers = workers;
        }
        let report = PoolReport {
            workers,
            peak_threads: 0,
            tasks,
        };
        if tasks == 0 {
            return Ok(report);
        }
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    let global = LIVE_POOL_THREADS.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK_POOL_THREADS.fetch_max(global, Ordering::SeqCst);
                    self.worker_loop();
                    live.fetch_sub(1, Ordering::SeqCst);
                    LIVE_POOL_THREADS.fetch_sub(1, Ordering::SeqCst);
                });
            }
        });
        let s = self.waker.sched.lock().unwrap();
        if let Some(what) = &s.panicked {
            return Err(MrError::WorkerPanic(what.clone()));
        }
        if s.deadlocked {
            return Err(MrError::WorkerPanic(
                "worker pool stalled: every live task parked with no wake pending".to_string(),
            ));
        }
        Ok(PoolReport {
            peak_threads: peak.load(Ordering::SeqCst),
            ..report
        })
    }

    /// Runs the pool in **service mode**: `body` executes on the calling
    /// thread while `workers` threads drive the task graph, and idle
    /// workers wait for external wakeups (a submission thread waking a
    /// parked task through [`Pool::waker`]) instead of declaring a
    /// stall. When `body` returns the pool is [`close`](Pool::close)d:
    /// remaining live tasks drain out under the normal rules (including
    /// deadlock detection, re-armed by the close) and the workers exit.
    ///
    /// `body` must wake any task it expects to observe the shutdown
    /// *before* returning — a task still parked at close time with no
    /// wake pending is exactly the stall the detector exists to catch.
    pub(crate) fn run_service<R>(
        self,
        workers: usize,
        body: impl FnOnce() -> R,
    ) -> MrResult<(R, PoolReport)> {
        let tasks = self.slots.len();
        let workers = workers.max(1);
        {
            let mut s = self.waker.sched.lock().unwrap();
            s.live = tasks;
            s.workers = workers;
            s.accepting = true;
        }
        let live = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let out = std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    let global = LIVE_POOL_THREADS.fetch_add(1, Ordering::SeqCst) + 1;
                    PEAK_POOL_THREADS.fetch_max(global, Ordering::SeqCst);
                    self.worker_loop();
                    live.fetch_sub(1, Ordering::SeqCst);
                    LIVE_POOL_THREADS.fetch_sub(1, Ordering::SeqCst);
                });
            }
            let out = body();
            self.close();
            out
        });
        let s = self.waker.sched.lock().unwrap();
        if let Some(what) = &s.panicked {
            return Err(MrError::WorkerPanic(what.clone()));
        }
        if s.deadlocked {
            return Err(MrError::WorkerPanic(
                "worker pool stalled: every live task parked with no wake pending".to_string(),
            ));
        }
        Ok((
            out,
            PoolReport {
                workers,
                peak_threads: peak.load(Ordering::SeqCst),
                tasks,
            },
        ))
    }

    /// Ends service mode: workers stop waiting for new work and drain
    /// the remaining live tasks, then exit.
    pub(crate) fn close(&self) {
        let mut s = self.waker.sched.lock().unwrap();
        s.accepting = false;
        drop(s);
        self.waker.cv.notify_all();
    }

    fn worker_loop(&self) {
        loop {
            let id = {
                let mut s = self.waker.sched.lock().unwrap();
                loop {
                    if s.panicked.is_some() || s.deadlocked || (s.live == 0 && !s.accepting) {
                        drop(s);
                        self.waker.cv.notify_all();
                        return;
                    }
                    if let Some(id) = s.ready.pop_front() {
                        s.state[id] = TaskState::Running;
                        break id;
                    }
                    if !s.accepting && s.idle_workers + 1 == s.workers {
                        // Nothing ready, nothing running anywhere, and no
                        // external submitter left who could wake a parked
                        // task: the remaining tasks are parked forever.
                        // Fail loudly instead of hanging.
                        s.deadlocked = true;
                        drop(s);
                        self.waker.cv.notify_all();
                        return;
                    }
                    s.idle_workers += 1;
                    s = self.waker.cv.wait(s).unwrap();
                    s.idle_workers -= 1;
                }
            };
            let mut task = self.slots[id].lock().unwrap().take().expect("task in slot");
            let mut cx = Ctx { task: id };
            match catch_unwind(AssertUnwindSafe(|| task.step(&mut cx))) {
                Err(payload) => {
                    // Drop the task first: its channel handles close, so
                    // every peer unwinds via EOF/disconnect.
                    drop(task);
                    let what = panic_message(payload.as_ref());
                    let mut s = self.waker.sched.lock().unwrap();
                    s.state[id] = TaskState::Done;
                    s.live -= 1;
                    if s.panicked.is_none() {
                        s.panicked = Some(what);
                    }
                    drop(s);
                    self.waker.cv.notify_all();
                    return;
                }
                Ok(Step::Done) => {
                    drop(task);
                    let mut s = self.waker.sched.lock().unwrap();
                    s.state[id] = TaskState::Done;
                    s.live -= 1;
                    if s.live == 0 {
                        drop(s);
                        self.waker.cv.notify_all();
                    }
                }
                Ok(Step::Yield) => {
                    *self.slots[id].lock().unwrap() = Some(task);
                    let mut s = self.waker.sched.lock().unwrap();
                    s.state[id] = TaskState::Ready;
                    s.ready.push_back(id);
                    drop(s);
                    self.waker.cv.notify_one();
                }
                Ok(Step::Park) => {
                    // The box goes back before the state flips: nothing
                    // can pop the id until it is enqueued, and a wake
                    // that raced the step flipped us to Notified.
                    *self.slots[id].lock().unwrap() = Some(task);
                    let mut s = self.waker.sched.lock().unwrap();
                    if s.state[id] == TaskState::RunningNotified {
                        s.state[id] = TaskState::Ready;
                        s.ready.push_back(id);
                        drop(s);
                        self.waker.cv.notify_one();
                    } else {
                        s.state[id] = TaskState::Parked;
                    }
                }
            }
        }
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "pool task panicked".to_string()
    }
}

// ---------------------------------------------------------------------
// Pool channels
// ---------------------------------------------------------------------

/// Why a non-blocking send did not enqueue; the value comes back.
pub(crate) enum TrySend<T> {
    /// Channel at capacity. With a `Ctx` the task was registered for
    /// wakeup and should `Park`.
    Full(T),
    /// Receiver dropped; no one will ever consume.
    Disconnected(T),
}

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TryRecv {
    /// Nothing queued (yet); the task was registered for wakeup.
    Empty,
    /// Every sender dropped and the queue is drained: EOF.
    Disconnected,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    cap: usize,
    senders: usize,
    rx_alive: bool,
    send_waiters: Vec<usize>,
    recv_waiters: Vec<usize>,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    waker: Arc<Waker>,
}

/// The sending half of a pool channel; clones share the capacity.
/// Dropping the last sender is EOF for the receiver.
pub(crate) struct PoolSender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; dropping it disconnects every sender.
pub(crate) struct PoolReceiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> PoolSender<T> {
    /// Non-blocking send that registers `cx`'s task for wakeup when the
    /// channel is full — the registration happens in the same critical
    /// section that observed Full, so the wakeup cannot be lost.
    pub(crate) fn try_send(&self, cx: &Ctx, value: T) -> Result<(), TrySend<T>> {
        let mut s = self.chan.state.lock().unwrap();
        if !s.rx_alive {
            return Err(TrySend::Disconnected(value));
        }
        if s.queue.len() >= s.cap {
            if !s.send_waiters.contains(&cx.task) {
                s.send_waiters.push(cx.task);
            }
            return Err(TrySend::Full(value));
        }
        s.queue.push_back(value);
        let woken = std::mem::take(&mut s.recv_waiters);
        drop(s);
        self.chan.waker.wake_all_of(woken);
        Ok(())
    }

    /// Opportunistic send from code with no task context (e.g. deep in a
    /// map callback): on Full the value just comes back, unregistered —
    /// the caller queues it locally and pumps later with a `Ctx`.
    pub(crate) fn try_send_now(&self, value: T) -> Result<(), TrySend<T>> {
        let mut s = self.chan.state.lock().unwrap();
        if !s.rx_alive {
            return Err(TrySend::Disconnected(value));
        }
        if s.queue.len() >= s.cap {
            return Err(TrySend::Full(value));
        }
        s.queue.push_back(value);
        let woken = std::mem::take(&mut s.recv_waiters);
        drop(s);
        self.chan.waker.wake_all_of(woken);
        Ok(())
    }
}

impl<T> Clone for PoolSender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().unwrap().senders += 1;
        PoolSender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for PoolSender<T> {
    fn drop(&mut self) {
        let mut s = self.chan.state.lock().unwrap();
        s.senders -= 1;
        if s.senders == 0 {
            // EOF: wake every parked receiver so it observes Disconnected.
            let woken = std::mem::take(&mut s.recv_waiters);
            drop(s);
            self.chan.waker.wake_all_of(woken);
        }
    }
}

impl<T> PoolReceiver<T> {
    /// Non-blocking receive; on Empty the task is registered for wakeup
    /// under the channel lock. Disconnected means drained *and* every
    /// sender gone.
    pub(crate) fn try_recv(&self, cx: &Ctx) -> Result<T, TryRecv> {
        let mut s = self.chan.state.lock().unwrap();
        if let Some(v) = s.queue.pop_front() {
            let woken = std::mem::take(&mut s.send_waiters);
            drop(s);
            self.chan.waker.wake_all_of(woken);
            return Ok(v);
        }
        if s.senders == 0 {
            return Err(TryRecv::Disconnected);
        }
        if !s.recv_waiters.contains(&cx.task) {
            s.recv_waiters.push(cx.task);
        }
        Err(TryRecv::Empty)
    }
}

impl<T> Drop for PoolReceiver<T> {
    fn drop(&mut self) {
        let mut s = self.chan.state.lock().unwrap();
        s.rx_alive = false;
        s.queue.clear();
        let woken = std::mem::take(&mut s.send_waiters);
        drop(s);
        self.chan.waker.wake_all_of(woken);
    }
}

// ---------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------

struct GateState {
    remaining: usize,
    waiters: Vec<usize>,
}

struct GateInner {
    state: Mutex<GateState>,
    waker: Arc<Waker>,
}

/// A countdown latch for phase boundaries (the barrier engine's
/// map→reduce join): producers [`arrive`](Gate::arrive), consumers park
/// on [`open`](Gate::open) until the count hits zero.
#[derive(Clone)]
pub(crate) struct Gate {
    inner: Arc<GateInner>,
}

impl Gate {
    /// Counts down one arrival; at zero, every parked waiter wakes.
    pub(crate) fn arrive(&self) {
        let mut s = self.inner.state.lock().unwrap();
        s.remaining = s.remaining.saturating_sub(1);
        if s.remaining == 0 {
            let woken = std::mem::take(&mut s.waiters);
            drop(s);
            self.inner.waker.wake_all_of(woken);
        }
    }

    /// True once every arrival happened; otherwise registers the task
    /// for wakeup (caller should `Park`).
    pub(crate) fn open(&self, cx: &Ctx) -> bool {
        let mut s = self.inner.state.lock().unwrap();
        if s.remaining == 0 {
            return true;
        }
        if !s.waiters.contains(&cx.task) {
            s.waiters.push(cx.task);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Producer → bounded channel → consumer, every value accounted for,
    /// across pool widths including heavy oversubscription.
    #[test]
    fn bounded_channel_ping_pong_across_widths() {
        for workers in [1, 2, 8] {
            let total = 10_000u64;
            let got = Mutex::new(Vec::new());
            let pool = Pool::new();
            let (tx, rx) = pool.channel::<u64>(4);
            let mut pool = pool;

            struct Producer {
                tx: Option<PoolSender<u64>>,
                next: u64,
                total: u64,
            }
            impl PoolTask for Producer {
                fn step(&mut self, cx: &mut Ctx) -> Step {
                    while self.next < self.total {
                        match self.tx.as_ref().unwrap().try_send(cx, self.next) {
                            Ok(()) => self.next += 1,
                            Err(TrySend::Full(_)) => return Step::Park,
                            Err(TrySend::Disconnected(_)) => panic!("consumer vanished"),
                        }
                    }
                    self.tx = None; // EOF
                    Step::Done
                }
            }
            struct Consumer<'g> {
                rx: PoolReceiver<u64>,
                got: &'g Mutex<Vec<u64>>,
            }
            impl PoolTask for Consumer<'_> {
                fn step(&mut self, cx: &mut Ctx) -> Step {
                    loop {
                        match self.rx.try_recv(cx) {
                            Ok(v) => self.got.lock().unwrap().push(v),
                            Err(TryRecv::Empty) => return Step::Park,
                            Err(TryRecv::Disconnected) => return Step::Done,
                        }
                    }
                }
            }
            pool.spawn(Producer {
                tx: Some(tx),
                next: 0,
                total,
            });
            pool.spawn(Consumer { rx, got: &got });
            let report = pool.run(workers).expect("pool run");
            assert!(report.peak_threads <= workers);
            let got = got.into_inner().unwrap();
            assert_eq!(got.len(), total as usize);
            assert_eq!(got, (0..total).collect::<Vec<_>>(), "FIFO order broken");
        }
    }

    /// A panicking task fails the run and its peers unwind via channel
    /// EOF instead of hanging.
    #[test]
    fn panic_poisons_the_pool_without_hanging() {
        let mut pool = Pool::new();
        let (tx, rx) = pool.channel::<u64>(1);
        struct Bomb {
            _tx: PoolSender<u64>,
        }
        impl PoolTask for Bomb {
            fn step(&mut self, _cx: &mut Ctx) -> Step {
                panic!("boom in a pool task");
            }
        }
        struct Waiter {
            rx: PoolReceiver<u64>,
        }
        impl PoolTask for Waiter {
            fn step(&mut self, cx: &mut Ctx) -> Step {
                match self.rx.try_recv(cx) {
                    Ok(_) => Step::Yield,
                    Err(TryRecv::Empty) => Step::Park,
                    Err(TryRecv::Disconnected) => Step::Done,
                }
            }
        }
        pool.spawn(Waiter { rx });
        pool.spawn(Bomb { _tx: tx });
        let err = pool.run(2);
        assert!(
            matches!(err, Err(MrError::WorkerPanic(ref what)) if what.contains("boom")),
            "expected the task panic to surface, got {err:?}"
        );
    }

    /// A graph that parks forever is detected and failed, not hung.
    #[test]
    fn stalled_graph_is_an_error_not_a_hang() {
        let mut pool = Pool::new();
        let (_tx, rx) = pool.channel::<u64>(1);
        // The sender stays alive outside the pool, so the receiver never
        // sees data or EOF: a permanently parked task.
        struct Stuck {
            rx: PoolReceiver<u64>,
        }
        impl PoolTask for Stuck {
            fn step(&mut self, cx: &mut Ctx) -> Step {
                match self.rx.try_recv(cx) {
                    Ok(_) => Step::Yield,
                    Err(TryRecv::Empty) => Step::Park,
                    Err(TryRecv::Disconnected) => Step::Done,
                }
            }
        }
        pool.spawn(Stuck { rx });
        let err = pool.run(2);
        assert!(
            matches!(err, Err(MrError::WorkerPanic(ref what)) if what.contains("stalled")),
            "expected a stall report, got {err:?}"
        );
    }

    /// The gate opens exactly once every arrival happened.
    #[test]
    fn gate_holds_until_all_arrivals() {
        let order = Mutex::new(Vec::new());
        let pool = Pool::new();
        let gate = pool.gate(3);
        let mut pool = pool;
        struct Arriver<'g> {
            gate: Gate,
            order: &'g Mutex<Vec<&'static str>>,
        }
        impl PoolTask for Arriver<'_> {
            fn step(&mut self, _cx: &mut Ctx) -> Step {
                self.order.lock().unwrap().push("arrive");
                self.gate.arrive();
                Step::Done
            }
        }
        struct Waiter<'g> {
            gate: Gate,
            order: &'g Mutex<Vec<&'static str>>,
        }
        impl PoolTask for Waiter<'_> {
            fn step(&mut self, cx: &mut Ctx) -> Step {
                if !self.gate.open(cx) {
                    return Step::Park;
                }
                self.order.lock().unwrap().push("open");
                Step::Done
            }
        }
        pool.spawn(Waiter {
            gate: gate.clone(),
            order: &order,
        });
        for _ in 0..3 {
            pool.spawn(Arriver {
                gate: gate.clone(),
                order: &order,
            });
        }
        pool.run(1).expect("pool run");
        let order = order.into_inner().unwrap();
        assert_eq!(order, vec!["arrive", "arrive", "arrive", "open"]);
    }

    /// Service mode: tasks park on an empty work queue, an *external*
    /// thread (the `run_service` body) feeds work and wakes them through
    /// the pool's waker handle, and close drains everything out — no
    /// stall report, every item processed.
    #[test]
    fn service_mode_accepts_external_work_and_drains_on_close() {
        struct Shared {
            queue: VecDeque<u64>,
            closed: bool,
            parked: Vec<usize>,
        }
        let shared = Arc::new(Mutex::new(Shared {
            queue: VecDeque::new(),
            closed: false,
            parked: Vec::new(),
        }));
        let seen = Arc::new(Mutex::new(Vec::new()));
        struct Runner {
            shared: Arc<Mutex<Shared>>,
            seen: Arc<Mutex<Vec<u64>>>,
        }
        impl PoolTask for Runner {
            fn step(&mut self, cx: &mut Ctx) -> Step {
                let mut s = self.shared.lock().unwrap();
                if let Some(v) = s.queue.pop_front() {
                    drop(s);
                    self.seen.lock().unwrap().push(v);
                    return Step::Yield;
                }
                if s.closed {
                    return Step::Done;
                }
                if !s.parked.contains(&cx.task) {
                    s.parked.push(cx.task);
                }
                Step::Park
            }
        }
        let mut pool = Pool::new();
        let waker = pool.waker();
        for _ in 0..2 {
            pool.spawn(Runner {
                shared: Arc::clone(&shared),
                seen: Arc::clone(&seen),
            });
        }
        let total = 100u64;
        let (_, report) = pool
            .run_service(2, || {
                for v in 0..total {
                    let woken = {
                        let mut s = shared.lock().unwrap();
                        s.queue.push_back(v);
                        std::mem::take(&mut s.parked)
                    };
                    waker.wake_all_of(woken);
                }
                // Service-level close: wake every parked runner so it
                // observes the flag before the pool's drain begins.
                let woken = {
                    let mut s = shared.lock().unwrap();
                    s.closed = true;
                    std::mem::take(&mut s.parked)
                };
                waker.wake_all_of(woken);
            })
            .expect("service pool run");
        assert_eq!(report.workers, 2);
        assert_eq!(report.tasks, 2);
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    /// One worker runs the scheduler as a deterministic FIFO: two
    /// identical runs interleave identically.
    #[test]
    fn single_worker_schedule_is_deterministic() {
        let run = || {
            let log = Mutex::new(Vec::new());
            let mut pool = Pool::new();
            struct Chatty<'g> {
                name: usize,
                left: usize,
                log: &'g Mutex<Vec<usize>>,
            }
            impl PoolTask for Chatty<'_> {
                fn step(&mut self, _cx: &mut Ctx) -> Step {
                    self.log.lock().unwrap().push(self.name);
                    self.left -= 1;
                    if self.left == 0 {
                        Step::Done
                    } else {
                        Step::Yield
                    }
                }
            }
            for name in 0..5 {
                pool.spawn(Chatty {
                    name,
                    left: 4,
                    log: &log,
                });
            }
            pool.run(1).expect("pool run");
            log.into_inner().unwrap()
        };
        assert_eq!(run(), run());
    }
}
