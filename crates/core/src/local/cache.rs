//! The shared result cache — cross-job memoization of map outputs and
//! sealed reduce partials (the typed layer over `mr-cache`).
//!
//! A [`SharedCache`] is a cheaply cloneable handle to one concurrent,
//! byte-accounted, content-addressed [`ResultCache`]. Two artifact
//! classes live in it:
//!
//! * **Split artifacts** — one input split's *raw, pre-combine*
//!   partitioned map output. A hit replays the cached records through
//!   the engine's normal routing (combiner, shuffle batching), so warm
//!   runs stay byte-identical to cold runs under every engine, store
//!   index and pool width; only the map function itself is skipped.
//! * **Job artifacts** — one job's sealed reduce-output partitions. A
//!   hit skips the whole run.
//!
//! Keys are stable content hashes ([`mr_cache::KeyBuilder`]) over the
//! input-chunk bytes (via [`StableHash`]), the application identity —
//! its type name **plus** its instance parameters, via
//! [`Application::cache_identity`] — the partitioner type and the
//! `JobConfig` fields that affect the artifact (reducers, combiner,
//! store index; plus the engine for job artifacts). Identical work keys
//! identically *across jobs, tenants and executors*; anything differing
//! in content, parameters or config cannot alias. That content
//! addressing is also the isolation story: a tenant can only ever hit an
//! artifact it would have computed bit-for-bit itself. Two guard rails
//! protect it:
//!
//! * An application that does not vouch for its identity (a
//!   parameterized app without a
//!   [`cache_identity`](Application::cache_identity) override) yields
//!   `None` from the key derivations and **bypasses the cache**
//!   (`cache.bypass.count`) instead of keying incompletely.
//! * Jobs with an enabled snapshot policy never use the *job*-level
//!   artifact (a whole-job hit skips the run and therefore cannot
//!   reproduce the snapshot stream a cold run publishes); their split
//!   artifacts still cache, since map output does not feed snapshots.

use crate::config::{CacheBudget, CombinerPolicy, Engine, JobConfig, StoreIndex};
use crate::counters::{names, Counters};
use crate::size::SizeEstimate;
use crate::traits::{Application, IdentityWriter};
use mr_cache::{CacheKey, CacheStats, KeyBuilder, Payload, ResultCache, StableHash};
use std::sync::Arc;

impl IdentityWriter for KeyBuilder {
    fn write_u64(&mut self, v: u64) {
        KeyBuilder::write_u64(self, v)
    }
    fn write_bytes(&mut self, bytes: &[u8]) {
        KeyBuilder::write_bytes(self, bytes)
    }
    fn write_str(&mut self, s: &str) {
        KeyBuilder::write_str(self, s)
    }
}

/// A split's cached artifact: raw (pre-combine) map output, partitioned.
pub(crate) type SplitParts<A> =
    Vec<Vec<(<A as Application>::MapKey, <A as Application>::MapValue)>>;

/// A job's cached artifact: its sealed reduce-output partitions.
pub(crate) type JobParts<A> = Vec<Vec<(<A as Application>::OutKey, <A as Application>::OutValue)>>;

/// A cloneable handle to one shared, byte-budgeted result cache. Every
/// clone addresses the same store; hand one to each runner (or let a
/// [`serve`](crate::local::service::serve) session own one) and repeated
/// work across jobs and tenants is deduplicated.
#[derive(Clone)]
pub struct SharedCache {
    inner: Arc<ResultCache>,
}

impl SharedCache {
    /// A cache bounded at `budget_bytes` of accounted payload.
    pub fn new(budget_bytes: u64) -> Self {
        SharedCache {
            inner: Arc::new(ResultCache::new(budget_bytes)),
        }
    }

    /// A cache sized by a [`CacheBudget`] knob; `None` when the knob is
    /// [`CacheBudget::Disabled`].
    pub fn from_budget(budget: &CacheBudget) -> Option<Self> {
        budget.bytes().map(SharedCache::new)
    }

    /// Lifetime hit/miss/insert/eviction statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Accounted bytes currently resident.
    pub fn used_bytes(&self) -> u64 {
        self.inner.used_bytes()
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.inner.budget_bytes()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drops every resident artifact (statistics survive).
    pub fn clear(&self) {
        self.inner.clear()
    }

    /// Typed zero-copy lookup of a split artifact.
    pub(crate) fn get_split<A>(&self, key: CacheKey) -> Option<(Arc<SplitParts<A>>, u64)>
    where
        A: Application,
        A::MapKey: Sync,
        A::MapValue: Sync,
    {
        let (payload, bytes) = self.inner.get(key)?;
        payload.downcast::<SplitParts<A>>().ok().map(|p| (p, bytes))
    }

    /// Publishes a split artifact, returning what the store did with it.
    pub(crate) fn put_split<A>(&self, key: CacheKey, parts: SplitParts<A>) -> InsertOutcome
    where
        A: Application,
        A::MapKey: Sync,
        A::MapValue: Sync,
    {
        let bytes = parts_bytes(&parts);
        self.put(key, Arc::new(parts) as Payload, bytes)
    }

    /// Typed zero-copy lookup of a sealed job artifact.
    pub(crate) fn get_job<A>(&self, key: CacheKey) -> Option<(Arc<JobParts<A>>, u64)>
    where
        A: Application,
        A::OutKey: Sync,
        A::OutValue: Sync,
    {
        let (payload, bytes) = self.inner.get(key)?;
        payload.downcast::<JobParts<A>>().ok().map(|p| (p, bytes))
    }

    /// Publishes a sealed job artifact.
    pub(crate) fn put_job<A>(&self, key: CacheKey, parts: JobParts<A>) -> InsertOutcome
    where
        A: Application,
        A::OutKey: Sync + SizeEstimate,
        A::OutValue: Sync + SizeEstimate,
    {
        let bytes = parts_bytes(&parts);
        self.put(key, Arc::new(parts) as Payload, bytes)
    }

    fn put(&self, key: CacheKey, payload: Payload, bytes: u64) -> InsertOutcome {
        match self.inner.insert(key, payload, bytes) {
            Ok(evicted) => InsertOutcome {
                bytes,
                evictions: evicted.len() as u64,
                evict_bytes: evicted.iter().map(|e| e.bytes).sum(),
                oversize: false,
            },
            Err(_) => InsertOutcome {
                bytes,
                evictions: 0,
                evict_bytes: 0,
                oversize: true,
            },
        }
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedCache")
            .field("budget_bytes", &self.budget_bytes())
            .field("used_bytes", &self.used_bytes())
            .field("len", &self.len())
            .finish()
    }
}

/// What one publish attempt did, for the publisher's counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct InsertOutcome {
    /// The artifact's accounted byte charge.
    pub bytes: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Accounted bytes those evictions released.
    pub evict_bytes: u64,
    /// Whether the artifact exceeded the whole budget and was rejected.
    pub oversize: bool,
}

impl InsertOutcome {
    /// Charges this outcome into a job's counters: the recomputed bytes
    /// (`cache.miss.bytes`) always, then either the insert or the typed
    /// oversize rejection, plus any evictions the insert forced.
    pub(crate) fn charge(&self, counters: &mut Counters) {
        counters.add(names::CACHE_MISS_BYTES, self.bytes);
        if self.oversize {
            counters.incr(names::CACHE_OVERSIZE);
            return;
        }
        counters.incr(names::CACHE_INSERTS);
        counters.add(names::CACHE_INSERT_BYTES, self.bytes);
        counters.add(names::CACHE_EVICTIONS, self.evictions);
        counters.add(names::CACHE_EVICT_BYTES, self.evict_bytes);
    }
}

/// Estimated resident bytes of a partitioned artifact (the charge the
/// byte budget accounts), from the same [`SizeEstimate`] model the heap
/// caps and combiner budgets use.
pub(crate) fn parts_bytes<K: SizeEstimate, V: SizeEstimate>(parts: &[Vec<(K, V)>]) -> u64 {
    parts
        .iter()
        .flatten()
        .map(|(k, v)| (k.estimated_bytes() + v.estimated_bytes()) as u64)
        .sum()
}

/// The `JobConfig` fields that shape a cached artifact. Anything else
/// (pool width, tracing, snapshots, deadlines) must *not* enter the key:
/// artifacts are deterministic across those knobs, and sharing across
/// them is the point.
fn write_config(k: &mut KeyBuilder, cfg: &JobConfig) {
    k.write_u64(cfg.reducers as u64);
    match cfg.combiner {
        CombinerPolicy::Disabled => k.write_u64(0),
        CombinerPolicy::Enabled { budget_bytes } => {
            k.write_u64(1);
            k.write_u64(budget_bytes);
        }
    }
    k.write_u64(match cfg.store_index {
        StoreIndex::Ordered => 0,
        StoreIndex::Hashed => 1,
    });
}

/// Application + partitioner identity, the "same computation" half of
/// the key (the other half is the input content). Returns `false` — and
/// the caller must decline caching — when the app cannot vouch for a
/// complete instance identity ([`Application::cache_identity`]).
fn write_identity<A: Application>(k: &mut KeyBuilder, app: &A, partitioner_id: &str) -> bool {
    k.write_str(std::any::type_name::<A>());
    k.write_str(app.name());
    k.write_str(partitioner_id);
    app.cache_identity(k)
}

/// Whether `app` vouches for a complete cache identity — parameterless
/// (zero-sized) or carrying a faithful
/// [`cache_identity`](Application::cache_identity) override. Apps that
/// do not must bypass the shared cache entirely.
pub(crate) fn identity_complete<A: Application>(app: &A) -> bool {
    app.cache_identity(&mut KeyBuilder::new())
}

/// Content-addressed key of one input split's map-output artifact;
/// `None` when the app's identity is incomplete (the split must then run
/// uncached).
pub(crate) fn split_key<A>(
    app: &A,
    cfg: &JobConfig,
    partitioner_id: &str,
    split: &[(A::InKey, A::InValue)],
) -> Option<CacheKey>
where
    A: Application,
    A::InKey: StableHash,
    A::InValue: StableHash,
{
    let mut k = KeyBuilder::new();
    k.write_str("mr.split.v2");
    if !write_identity(&mut k, app, partitioner_id) {
        return None;
    }
    write_config(&mut k, cfg);
    k.write_u64(split.len() as u64);
    for (key, value) in split {
        key.stable_hash(&mut k);
        value.stable_hash(&mut k);
    }
    Some(k.finish())
}

/// Content-addressed key of one whole job's sealed output artifact, or
/// `None` when the app's identity is incomplete. Adds the engine
/// discriminant on top of the split-key ingredients: both engines
/// produce byte-identical partitions, but keeping their sealed
/// artifacts distinct keeps the key an honest description of what ran.
pub(crate) fn job_key<A>(
    app: &A,
    cfg: &JobConfig,
    partitioner_id: &str,
    splits: &[Vec<(A::InKey, A::InValue)>],
) -> Option<CacheKey>
where
    A: Application,
    A::InKey: StableHash,
    A::InValue: StableHash,
{
    let mut k = KeyBuilder::new();
    k.write_str("mr.job.v2");
    if !write_identity(&mut k, app, partitioner_id) {
        return None;
    }
    write_config(&mut k, cfg);
    k.write_u64(match cfg.engine {
        Engine::Barrier => 0,
        Engine::BarrierLess { .. } => 1,
    });
    k.write_u64(splits.len() as u64);
    for split in splits {
        k.write_u64(split.len() as u64);
        for (key, value) in split {
            key.stable_hash(&mut k);
            value.stable_hash(&mut k);
        }
    }
    Some(k.finish())
}

/// A job-scoped consultation plan for per-split artifacts: keys are
/// derived up front (where the `StableHash`/`Sync` bounds hold) and the
/// cache handle is captured in boxed closures, so the generic task state
/// machines consult the cache without carrying any cache bounds.
pub(crate) struct SplitCachePlan<A: Application> {
    #[allow(clippy::type_complexity)]
    lookup: Box<dyn Fn(usize) -> Option<(Arc<SplitParts<A>>, u64)> + Send + Sync>,
    #[allow(clippy::type_complexity)]
    insert: Box<dyn Fn(usize, SplitParts<A>) -> InsertOutcome + Send + Sync>,
}

impl<A: Application> SplitCachePlan<A> {
    /// Derives one key per split and binds both cache directions;
    /// `None` when the app's instance identity is incomplete (the job
    /// must then bypass the cache).
    pub(crate) fn new(
        cache: &SharedCache,
        app: &A,
        cfg: &JobConfig,
        partitioner_id: &str,
        splits: &[Vec<(A::InKey, A::InValue)>],
    ) -> Option<Self>
    where
        A::InKey: StableHash,
        A::InValue: StableHash,
        A::MapKey: Sync,
        A::MapValue: Sync,
    {
        let keys: Vec<CacheKey> = splits
            .iter()
            .map(|s| split_key(app, cfg, partitioner_id, s))
            .collect::<Option<_>>()?;
        let keys2 = keys.clone();
        let lookup_cache = cache.clone();
        let insert_cache = cache.clone();
        Some(SplitCachePlan {
            lookup: Box::new(move |idx| lookup_cache.get_split::<A>(keys[idx])),
            insert: Box::new(move |idx, parts| insert_cache.put_split::<A>(keys2[idx], parts)),
        })
    }

    /// Consults the cache for split `idx`'s artifact.
    pub(crate) fn lookup(&self, idx: usize) -> Option<(Arc<SplitParts<A>>, u64)> {
        (self.lookup)(idx)
    }

    /// Publishes split `idx`'s freshly computed artifact.
    pub(crate) fn insert(&self, idx: usize, parts: SplitParts<A>) -> InsertOutcome {
        (self.insert)(idx, parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::WordCountApp;
    use crate::traits::Emit;

    fn split(tag: u64) -> Vec<(u64, String)> {
        (0..4).map(|i| (i, format!("word{tag} w{i}"))).collect()
    }

    #[test]
    fn split_keys_are_content_addressed() {
        let cfg = JobConfig::new(2);
        let a = split_key(&WordCountApp, &cfg, "hash", &split(1)).unwrap();
        let b = split_key(&WordCountApp, &cfg, "hash", &split(1)).unwrap();
        let c = split_key(&WordCountApp, &cfg, "hash", &split(2)).unwrap();
        assert_eq!(a, b, "same content, same config: same key");
        assert_ne!(a, c, "different content: different key");
        let other_reducers =
            split_key(&WordCountApp, &JobConfig::new(3), "hash", &split(1)).unwrap();
        assert_ne!(a, other_reducers, "reducer count shapes the artifact");
        let other_partitioner = split_key(&WordCountApp, &cfg, "range", &split(1)).unwrap();
        assert_ne!(a, other_partitioner, "partitioner shapes the artifact");
    }

    #[test]
    fn job_and_split_keys_never_alias() {
        let cfg = JobConfig::new(2);
        let s = split_key(&WordCountApp, &cfg, "hash", &split(1));
        let j = job_key(&WordCountApp, &cfg, "hash", &[split(1)]);
        assert_ne!(s, j, "artifact classes are key-separated");
    }

    /// A parameterized app whose `needle` shapes map output, with a
    /// faithful `cache_identity`.
    struct NeedleCount {
        needle: String,
    }

    impl Application for NeedleCount {
        type InKey = u64;
        type InValue = String;
        type MapKey = String;
        type MapValue = u64;
        type OutKey = String;
        type OutValue = u64;
        type State = u64;
        type Shared = ();
        fn map(&self, _k: &u64, v: &String, out: &mut dyn Emit<String, u64>) {
            if v.contains(&self.needle) {
                out.emit(self.needle.clone(), 1);
            }
        }
        fn new_shared(&self) {}
        fn reduce_grouped(
            &self,
            key: &String,
            values: Vec<u64>,
            _s: &mut (),
            out: &mut dyn Emit<String, u64>,
        ) {
            out.emit(key.clone(), values.iter().sum());
        }
        fn init(&self, _k: &String) -> u64 {
            0
        }
        fn absorb(&self, _k: &String, st: &mut u64, v: u64, _s: &mut (), _o: &mut dyn Emit<String, u64>) {
            *st += v;
        }
        fn merge(&self, _k: &String, a: u64, b: u64) -> u64 {
            a + b
        }
        fn finalize(&self, k: String, st: u64, _s: &mut (), out: &mut dyn Emit<String, u64>) {
            out.emit(k, st);
        }
        fn cache_identity(&self, w: &mut dyn IdentityWriter) -> bool {
            w.write_str(&self.needle);
            true
        }
    }

    /// Same shape, but *without* a `cache_identity` override: the
    /// non-zero-sized default must refuse to vouch for it.
    struct UnkeyedNeedle {
        needle: String,
    }

    impl Application for UnkeyedNeedle {
        type InKey = u64;
        type InValue = String;
        type MapKey = String;
        type MapValue = u64;
        type OutKey = String;
        type OutValue = u64;
        type State = u64;
        type Shared = ();
        fn map(&self, _k: &u64, v: &String, out: &mut dyn Emit<String, u64>) {
            if v.contains(&self.needle) {
                out.emit(self.needle.clone(), 1);
            }
        }
        fn new_shared(&self) {}
        fn reduce_grouped(
            &self,
            key: &String,
            values: Vec<u64>,
            _s: &mut (),
            out: &mut dyn Emit<String, u64>,
        ) {
            out.emit(key.clone(), values.iter().sum());
        }
        fn init(&self, _k: &String) -> u64 {
            0
        }
        fn absorb(&self, _k: &String, st: &mut u64, v: u64, _s: &mut (), _o: &mut dyn Emit<String, u64>) {
            *st += v;
        }
        fn merge(&self, _k: &String, a: u64, b: u64) -> u64 {
            a + b
        }
        fn finalize(&self, k: String, st: u64, _s: &mut (), out: &mut dyn Emit<String, u64>) {
            out.emit(k, st);
        }
    }

    #[test]
    fn instance_parameters_shape_the_key() {
        let cfg = JobConfig::new(2);
        let input = split(1);
        let foo = NeedleCount { needle: "foo".into() };
        let bar = NeedleCount { needle: "bar".into() };
        let a = split_key(&foo, &cfg, "hash", &input).unwrap();
        let b = split_key(&bar, &cfg, "hash", &input).unwrap();
        assert_ne!(a, b, "differently parameterized instances must not alias");
        let j1 = job_key(&foo, &cfg, "hash", std::slice::from_ref(&input)).unwrap();
        let j2 = job_key(&bar, &cfg, "hash", std::slice::from_ref(&input)).unwrap();
        assert_ne!(j1, j2);
    }

    #[test]
    fn incomplete_identity_declines_every_key() {
        let cfg = JobConfig::new(2);
        let app = UnkeyedNeedle { needle: "foo".into() };
        assert!(!identity_complete(&app));
        assert!(split_key(&app, &cfg, "hash", &split(1)).is_none());
        assert!(job_key(&app, &cfg, "hash", &[split(1)]).is_none());
        let cache = SharedCache::new(1 << 20);
        assert!(SplitCachePlan::new(&cache, &app, &cfg, "hash", &[split(1)]).is_none());
        // Zero-sized apps vouch for themselves.
        assert!(identity_complete(&WordCountApp));
    }

    #[test]
    fn shared_hits_are_zero_copy_across_clones() {
        let cache = SharedCache::new(1 << 20);
        let clone = cache.clone();
        let cfg = JobConfig::new(2);
        let key = split_key(&WordCountApp, &cfg, "hash", &split(7)).unwrap();
        let parts: SplitParts<WordCountApp> = vec![vec![("a".into(), 1)], vec![("b".into(), 2)]];
        let outcome = cache.put_split::<WordCountApp>(key, parts);
        assert!(!outcome.oversize);
        let (via_clone, bytes) = clone.get_split::<WordCountApp>(key).expect("hit via clone");
        assert_eq!(bytes, outcome.bytes);
        assert_eq!(via_clone[1], vec![("b".to_string(), 2)]);
        assert_eq!(clone.stats().hits, 1);
        assert_eq!(cache.len(), 1, "one store behind every clone");
    }

    #[test]
    fn oversize_outcome_charges_the_typed_counter() {
        let cache = SharedCache::new(8);
        let cfg = JobConfig::new(1);
        let key = split_key(&WordCountApp, &cfg, "hash", &split(3)).unwrap();
        let parts: SplitParts<WordCountApp> = vec![vec![("oversized".into(), 1); 64]];
        let outcome = cache.put_split::<WordCountApp>(key, parts);
        assert!(outcome.oversize);
        let mut counters = Counters::new();
        outcome.charge(&mut counters);
        assert_eq!(counters.get(names::CACHE_OVERSIZE), 1);
        assert_eq!(counters.get(names::CACHE_INSERTS), 0);
        assert_eq!(counters.get(names::CACHE_MISS_BYTES), outcome.bytes);
    }
}
