//! Multi-tenant job-service simulation: many jobs from many tenants
//! contending for one simulated cluster's slots.
//!
//! This is the simulator-side mirror of `mr_core::serve`: the same
//! admission rules (bounded queue, per-tenant queued-job quotas, typed
//! [`RejectReason`]s), the same deficit-style weighted-fair pick with
//! priority classes, and the same per-tenant concurrent-slot caps — but
//! applied to *task* placement on a [`SlotLedger`] over the virtual
//! cluster, so slot contention between concurrent jobs is modeled
//! rather than hidden. Two job shapes contend:
//!
//! * **Barrier jobs** — map tasks, then reduce tasks once every map is
//!   done (one slot per task, the classic two-phase shape).
//! * **Chained jobs** — a two-stage pipeline in which stage-2 map `m`
//!   becomes runnable the moment stage-1 reducer `m` finishes (the
//!   per-partition handoff dependency), so the two stages overlap and
//!   compete for the *same* map and reduce slots as every other job.
//!   Stage-2 tasks take slots through the shared ledger like everything
//!   else — the slotless chained placement that once let a chained and
//!   an unchained job deadlock over recovery is structurally gone.
//!
//! Priorities preempt: a pending task of a higher-priority tenant with
//! no free slot of its kind evicts a running task of a lower-priority
//! tenant (the victim's attempt is bumped and it re-queues), so a
//! latency-sensitive tenant is never stuck behind a batch tenant's
//! long-running tasks.
//!
//! Node kills mid-run trigger Hadoop-style recovery: running tasks on
//! the dead node re-queue; completed map output on the dead node is
//! re-executed while its consumers still need it; a dead stage-1
//! reducer whose handoff was not yet fully consumed restarts, together
//! with its stage-2 consumer.
//!
//! **Outputs are schedule-independent by construction**: a job's actual
//! records are computed once, analytically, with the same core map /
//! partition / barrier-reduce calls every engine uses — whatever the
//! contention, eviction or recovery history, a completed job's bytes
//! are identical to running it alone. (The service simulator models
//! *contention*; multi-stage *data* flow is `ChainSimExecutor`'s job.)
//! The schedule itself is deterministic per seed, and every task span
//! is tenant-stamped so `TraceQuery::per_tenant_secs` turns the trace
//! into per-tenant slot-share evidence.

use crate::executor::Fault;
use crate::params::ClusterParams;
use crate::placement::{SlotLedger, TieBreak};
use mr_core::engine::barrier::reduce_partition_barrier;
use mr_core::local::service::RejectReason;
use mr_core::traits::FnEmit;
use mr_core::{
    Application, Counters, MrError, MrResult, Partitioner, Scope, TaskKind, TenantSpec, TraceEvent,
    TraceInstant, TraceLog, TraceQuery,
};
use mr_sim::{EventQueue, SimDuration, SimTime};
use mr_trace::SpanKind;
use mr_workloads::dist::hetero_factor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Service-level knobs for a simulated multi-tenant run.
#[derive(Debug, Clone)]
pub struct ServiceParams {
    /// The simulated cluster (node count, slots per node, heterogeneity,
    /// seed).
    pub cluster: ClusterParams,
    /// The tenant table — the same [`TenantSpec`] the local service
    /// uses: weight, priority class, concurrent-slot cap, queued-job
    /// quota.
    pub tenants: Vec<TenantSpec>,
    /// Bound on jobs waiting to start across all tenants.
    pub queue_cap: usize,
    /// Base virtual cost of one map task on a factor-1.0 node.
    pub map_task_secs: f64,
    /// Base virtual cost of one reduce task on a factor-1.0 node.
    pub red_task_secs: f64,
}

impl ServiceParams {
    /// Paper-testbed cluster, `tenants` default-spec tenants, a
    /// generous queue, and small task costs.
    pub fn new(tenants: usize) -> Self {
        ServiceParams {
            cluster: ClusterParams::paper_testbed(0),
            tenants: vec![TenantSpec::default(); tenants],
            queue_cap: 1024,
            map_task_secs: 4.0,
            red_task_secs: 6.0,
        }
    }

    /// Replaces tenant `index`'s spec.
    pub fn tenant(mut self, index: usize, spec: TenantSpec) -> Self {
        self.tenants[index] = spec;
        self
    }

    /// Sets the global admission-queue bound.
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Same contract as `ServiceConfig::validate`: nonsense fails with
    /// [`MrError::InvalidConfig`] before the event loop starts.
    pub fn validate(&self) -> MrResult<()> {
        fn bad(what: impl Into<String>) -> MrResult<()> {
            Err(MrError::InvalidConfig(what.into()))
        }
        if self.tenants.is_empty() {
            return bad("a service sim needs at least one tenant");
        }
        if self.queue_cap == 0 {
            return bad("queue_cap must be >= 1 (a zero-length queue rejects every submission)");
        }
        if self.cluster.nodes == 0 || self.cluster.map_slots == 0 || self.cluster.reduce_slots == 0
        {
            return bad("the simulated cluster needs nodes and per-node slots");
        }
        if !self.map_task_secs.is_finite()
            || self.map_task_secs <= 0.0
            || !self.red_task_secs.is_finite()
            || self.red_task_secs <= 0.0
        {
            return bad("task costs must be finite and > 0");
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.weight == 0 {
                return bad(format!("tenant {i} weight must be >= 1"));
            }
            if t.max_concurrent_slots == 0 {
                return bad(format!("tenant {i} max_concurrent_slots must be >= 1"));
            }
            if t.max_queued_jobs == 0 {
                return bad(format!("tenant {i} max_queued_jobs must be >= 1"));
            }
        }
        Ok(())
    }
}

/// One job submitted to the simulated service.
pub struct SimJobSpec<A: Application> {
    /// The submitting tenant (index into [`ServiceParams::tenants`]).
    pub tenant: usize,
    /// Virtual submission time in seconds.
    pub submit_at_secs: f64,
    /// Input splits; each split is one map task.
    pub splits: Vec<Vec<(A::InKey, A::InValue)>>,
    /// Reduce partitions (= stage-1 reduce tasks).
    pub reducers: usize,
    /// `true` adds a dependent second stage: one stage-2 map per
    /// stage-1 partition (runnable when that partition's reducer
    /// finishes) feeding as many stage-2 reducers.
    pub chained: bool,
}

/// What became of one submitted job.
#[derive(Debug)]
pub struct SimJobOutcome<A: Application> {
    /// The submitting tenant.
    pub tenant: usize,
    /// `Some` if admission turned the job away (it then ran nothing).
    pub rejected: Option<RejectReason>,
    /// Virtual completion time; `None` if the job never finished
    /// (rejected, or the run ended in failure).
    pub completed_at: Option<f64>,
    /// The job's output partitions — analytically computed, so
    /// byte-identical to running the job alone. Empty unless completed.
    pub output: Vec<Vec<(A::OutKey, A::OutValue)>>,
}

/// The finished run: per-job outcomes plus the tenant-stamped trace.
pub struct ServiceSimReport<A: Application> {
    /// One outcome per submitted job, in submission order.
    pub jobs: Vec<SimJobOutcome<A>>,
    /// Every task span, tenant-stamped, on the virtual clock.
    pub trace: TraceLog,
    /// Priority evictions performed.
    pub evictions: u64,
    /// `Some((at_secs, why))` if the run died (every node failed).
    pub failure: Option<(f64, String)>,
}

impl<A: Application> ServiceSimReport<A> {
    /// Busy virtual seconds per tenant — the slot-share evidence the
    /// fairness assertions read.
    pub fn per_tenant_secs(&self) -> BTreeMap<u32, f64> {
        TraceQuery::new(&self.trace).per_tenant_secs()
    }
}

/// Which stage a task belongs to; order is dispatch preference within a
/// job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Map1,
    Red1,
    Map2,
    Red2,
}

impl Stage {
    fn is_map(self) -> bool {
        matches!(self, Stage::Map1 | Stage::Map2)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Pending,
    Running { node: usize, started: SimTime },
    Done { node: usize },
}

#[derive(Debug, Clone)]
struct SimTask {
    state: TState,
    attempt: u32,
}

impl SimTask {
    fn new() -> Self {
        SimTask {
            state: TState::Pending,
            attempt: 0,
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.state, TState::Done { .. })
    }

    fn requeue(&mut self) {
        self.state = TState::Pending;
        self.attempt += 1;
    }
}

struct JobRec {
    tenant: usize,
    chained: bool,
    maps1: Vec<SimTask>,
    reds1: Vec<SimTask>,
    maps2: Vec<SimTask>,
    reds2: Vec<SimTask>,
    admitted: bool,
    started: bool,
    done_at: Option<SimTime>,
    rejected: Option<RejectReason>,
}

impl JobRec {
    fn tasks(&mut self, stage: Stage) -> &mut Vec<SimTask> {
        match stage {
            Stage::Map1 => &mut self.maps1,
            Stage::Red1 => &mut self.reds1,
            Stage::Map2 => &mut self.maps2,
            Stage::Red2 => &mut self.reds2,
        }
    }

    fn complete(&self) -> bool {
        let finals = if self.chained {
            &self.reds2
        } else {
            &self.reds1
        };
        !finals.is_empty() && finals.iter().all(SimTask::is_done)
    }

    /// First runnable pending task, in stage order. `Map2` entries gate
    /// on their own stage-1 partition, not the whole stage — that
    /// per-partition dependency is what makes chained jobs overlap.
    fn next_runnable(&self) -> Option<(Stage, usize)> {
        if let Some(m) = self.maps1.iter().position(|t| t.state == TState::Pending) {
            return Some((Stage::Map1, m));
        }
        if self.maps1.iter().all(SimTask::is_done) {
            if let Some(r) = self.reds1.iter().position(|t| t.state == TState::Pending) {
                return Some((Stage::Red1, r));
            }
        }
        if self.chained {
            if let Some(m) = (0..self.maps2.len())
                .find(|&m| self.maps2[m].state == TState::Pending && self.reds1[m].is_done())
            {
                return Some((Stage::Map2, m));
            }
            if self.maps2.iter().all(SimTask::is_done) {
                if let Some(r) = self.reds2.iter().position(|t| t.state == TState::Pending) {
                    return Some((Stage::Red2, r));
                }
            }
        }
        None
    }
}

#[derive(Debug)]
enum Ev {
    Submit(usize),
    Done {
        job: usize,
        stage: Stage,
        index: usize,
        attempt: u32,
    },
    NodeFail(usize),
}

/// The multi-tenant contention simulator. See the module docs.
pub struct ServiceSimExecutor;

struct ServiceSim<'a> {
    p: &'a ServiceParams,
    slots: SlotLedger,
    node_factor: Vec<f64>,
    queue: EventQueue<Ev>,
    jobs: Vec<JobRec>,
    /// `(maps, reducers)` per job, for stable stage-2 scope indexes.
    shapes: Vec<(usize, usize)>,
    served: Vec<u64>,
    running_slots: Vec<usize>,
    queued: Vec<usize>,
    queued_total: usize,
    trace: TraceLog,
    evictions: u64,
    failure: Option<(f64, String)>,
}

fn vt(at: SimTime) -> TraceInstant {
    TraceInstant::Virtual {
        micros: at.as_micros(),
    }
}

impl ServiceSim<'_> {
    /// The local service's deficit pick, verbatim: highest priority
    /// class first, then lowest served/weight by cross-multiplication,
    /// ties to the lowest tenant index.
    fn fairer(&self, t: usize, b: usize) -> bool {
        let ts = &self.p.tenants;
        let higher = ts[t].priority > ts[b].priority;
        let same = ts[t].priority == ts[b].priority;
        let less_served = (self.served[t] as u128) * (ts[b].weight as u128)
            < (self.served[b] as u128) * (ts[t].weight as u128);
        higher || (same && less_served)
    }

    /// First dispatchable task of tenant `t` given current slot
    /// availability, scanning jobs in submission order.
    fn next_task_for(
        &self,
        t: usize,
        map_free: bool,
        red_free: bool,
    ) -> Option<(usize, Stage, usize)> {
        for (j, job) in self.jobs.iter().enumerate() {
            if job.tenant != t || !job.admitted || job.rejected.is_some() || job.complete() {
                continue;
            }
            if let Some((stage, idx)) = job.next_runnable() {
                let free = if stage.is_map() { map_free } else { red_free };
                if free {
                    return Some((j, stage, idx));
                }
            }
        }
        None
    }

    fn duration(&self, stage: Stage, node: usize) -> SimDuration {
        let base = if stage.is_map() {
            self.p.map_task_secs
        } else {
            self.p.red_task_secs
        };
        SimDuration::from_secs_f64(base * self.node_factor[node])
    }

    fn dispatch(&mut self, at: SimTime, j: usize, stage: Stage, idx: usize) {
        let is_map = stage.is_map();
        let node = if is_map {
            self.slots
                .first_free_map()
                .expect("caller checked a free map slot")
        } else {
            self.slots
                .least_loaded(false, TieBreak::LowIndex)
                .expect("caller checked a free reduce slot")
        };
        self.slots.take(is_map, node);
        let tenant = self.jobs[j].tenant;
        self.running_slots[tenant] += 1;
        self.served[tenant] += 1;
        if !self.jobs[j].started {
            self.jobs[j].started = true;
            self.queued[tenant] -= 1;
            self.queued_total -= 1;
        }
        let task = &mut self.jobs[j].tasks(stage)[idx];
        task.state = TState::Running { node, started: at };
        let attempt = task.attempt;
        let end = at + self.duration(stage, node);
        self.queue.schedule(
            end,
            Ev::Done {
                job: j,
                stage,
                index: idx,
                attempt,
            },
        );
    }

    /// Fair dispatch until no eligible tenant can place a task, then
    /// priority preemption for what is still stuck.
    fn schedule(&mut self, at: SimTime) {
        loop {
            let map_free = self.slots.first_free_map().is_some();
            let red_free = self.slots.least_loaded(false, TieBreak::LowIndex).is_some();
            if !map_free && !red_free {
                break;
            }
            let mut best: Option<usize> = None;
            for t in 0..self.p.tenants.len() {
                if self.running_slots[t] >= self.p.tenants[t].max_concurrent_slots {
                    continue;
                }
                if self.next_task_for(t, map_free, red_free).is_none() {
                    continue;
                }
                best = Some(match best {
                    None => t,
                    Some(b) => {
                        if self.fairer(t, b) {
                            t
                        } else {
                            b
                        }
                    }
                });
            }
            let Some(t) = best else { break };
            let (j, stage, idx) = self
                .next_task_for(t, map_free, red_free)
                .expect("candidate tenant has a task");
            self.dispatch(at, j, stage, idx);
        }
        self.preempt(at);
    }

    /// Evicts lower-priority running tasks to place higher-priority
    /// pending ones that found every slot of their kind occupied.
    fn preempt(&mut self, at: SimTime) {
        loop {
            let map_free = self.slots.first_free_map().is_some();
            let red_free = self.slots.least_loaded(false, TieBreak::LowIndex).is_some();
            // The stuck demand: best tenant (same comparator) with spare
            // quota and a runnable task whose slot kind is exhausted.
            let mut best: Option<(usize, Stage)> = None;
            for t in 0..self.p.tenants.len() {
                if self.running_slots[t] >= self.p.tenants[t].max_concurrent_slots {
                    continue;
                }
                let Some((_, stage, _)) = self.next_task_for(t, true, true) else {
                    continue;
                };
                if stage.is_map() && map_free || !stage.is_map() && red_free {
                    continue; // not stuck: a slot is free, fairness just deferred it
                }
                best = Some(match best {
                    None => (t, stage),
                    Some((b, bs)) => {
                        if self.fairer(t, b) {
                            (t, stage)
                        } else {
                            (b, bs)
                        }
                    }
                });
            }
            let Some((t, stage)) = best else { break };
            let want_map = stage.is_map();
            let prio = self.p.tenants[t].priority;
            // Victim: a running same-kind task of a strictly
            // lower-priority tenant; lowest priority first, ties evict
            // the latest job then the highest task index — protects the
            // oldest work, and is deterministic.
            let mut victim: Option<(u32, usize, Stage, usize)> = None;
            let mut victim_key: Option<(u32, std::cmp::Reverse<usize>, std::cmp::Reverse<usize>)> =
                None;
            for (j, job) in self.jobs.iter().enumerate() {
                let vprio = self.p.tenants[job.tenant].priority;
                if vprio >= prio {
                    continue;
                }
                for vstage in [Stage::Map1, Stage::Red1, Stage::Map2, Stage::Red2] {
                    if vstage.is_map() != want_map {
                        continue;
                    }
                    let tasks = match vstage {
                        Stage::Map1 => &job.maps1,
                        Stage::Red1 => &job.reds1,
                        Stage::Map2 => &job.maps2,
                        Stage::Red2 => &job.reds2,
                    };
                    for (i, task) in tasks.iter().enumerate() {
                        if matches!(task.state, TState::Running { .. }) {
                            let key = (vprio, std::cmp::Reverse(j), std::cmp::Reverse(i));
                            if victim_key.is_none_or(|vk| key < vk) {
                                victim_key = Some(key);
                                victim = Some((vprio, j, vstage, i));
                            }
                        }
                    }
                }
            }
            let Some((_, vj, vstage, vi)) = victim else {
                break;
            };
            let vtenant = self.jobs[vj].tenant;
            let task = &mut self.jobs[vj].tasks(vstage)[vi];
            let TState::Running { node, .. } = task.state else {
                unreachable!("victim was running")
            };
            task.requeue();
            self.slots.release(vstage.is_map(), node);
            self.running_slots[vtenant] -= 1;
            self.evictions += 1;
            // The freed slot goes straight to the stuck tenant.
            let (j, stage, idx) = self
                .next_task_for(t, want_map, !want_map)
                .expect("stuck tenant still has the task");
            self.dispatch(at, j, stage, idx);
        }
    }

    fn task_done(&mut self, at: SimTime, j: usize, stage: Stage, idx: usize, attempt: u32) {
        let tenant = self.jobs[j].tenant;
        let task = &mut self.jobs[j].tasks(stage)[idx];
        if task.attempt != attempt {
            return; // a stale attempt: evicted or killed since
        }
        let TState::Running { node, started } = task.state else {
            return;
        };
        task.state = TState::Done { node };
        self.slots.release(stage.is_map(), node);
        self.running_slots[tenant] -= 1;
        let (maps1, reds1) = self.shapes[j];
        let (kind, span, index) = match stage {
            Stage::Map1 => (TaskKind::Map, SpanKind::Map, idx),
            Stage::Red1 => (TaskKind::Reduce, SpanKind::SortReduce, idx),
            Stage::Map2 => (TaskKind::Map, SpanKind::Map, maps1 + idx),
            Stage::Red2 => (TaskKind::Reduce, SpanKind::SortReduce, reds1 + idx),
        };
        self.trace.push(
            Scope::task(j as u32, kind, index as u32, attempt, node as u32)
                .with_tenant(tenant as u32),
            TraceEvent::Span {
                kind: span,
                start: vt(started),
                end: vt(at),
            },
        );
        if self.jobs[j].complete() && self.jobs[j].done_at.is_none() {
            self.jobs[j].done_at = Some(at);
        }
        self.schedule(at);
    }

    fn submit(&mut self, at: SimTime, j: usize) {
        let tenant = self.jobs[j].tenant;
        if self.queued_total >= self.p.queue_cap {
            self.jobs[j].rejected = Some(RejectReason::QueueFull {
                cap: self.p.queue_cap,
            });
            return;
        }
        let quota = self.p.tenants[tenant].max_queued_jobs;
        if self.queued[tenant] >= quota {
            self.jobs[j].rejected = Some(RejectReason::TenantQueueFull { tenant, cap: quota });
            return;
        }
        self.jobs[j].admitted = true;
        self.queued[tenant] += 1;
        self.queued_total += 1;
        self.schedule(at);
    }

    /// Hadoop-style recovery, in dependency order: running work on the
    /// dead node re-queues; a dead stage-1 reducer whose handoff was
    /// not fully consumed restarts together with its running consumer;
    /// completed map output on any dead node re-runs while reducers of
    /// its stage still need it.
    fn fail_node(&mut self, at: SimTime, n: usize) {
        if !self.slots.alive[n] {
            return;
        }
        self.slots.fail_node(n);
        if !self.slots.any_alive() {
            self.failure = Some((
                at.as_secs_f64(),
                "every node has failed; service lost".to_string(),
            ));
            return;
        }
        let dead: Vec<bool> = self.slots.alive.iter().map(|&a| !a).collect();
        for j in 0..self.jobs.len() {
            if !self.jobs[j].admitted || self.jobs[j].complete() {
                continue;
            }
            let tenant = self.jobs[j].tenant;
            // 1. Running tasks on the dead node die with it. The ledger
            // zeroed its slot counters; only the tenant's quota
            // accounting needs the release.
            for stage in [Stage::Map1, Stage::Red1, Stage::Map2, Stage::Red2] {
                for task in self.jobs[j].tasks(stage).iter_mut() {
                    if matches!(task.state, TState::Running { node, .. } if node == n) {
                        task.requeue();
                        self.running_slots[tenant] -= 1;
                    }
                }
            }
            // 2. A dead stage-1 reducer with an unconsumed handoff
            // restarts; a consumer mid-read restarts with it.
            if self.jobs[j].chained {
                for r in 0..self.jobs[j].reds1.len() {
                    let lost = matches!(self.jobs[j].reds1[r].state,
                        TState::Done { node } if dead[node])
                        && !self.jobs[j].maps2[r].is_done();
                    if lost {
                        self.jobs[j].reds1[r].requeue();
                        let consumer = &mut self.jobs[j].maps2[r];
                        if let TState::Running { node, .. } = consumer.state {
                            consumer.requeue();
                            if self.slots.alive[node] {
                                self.slots.release(true, node);
                            }
                            self.running_slots[tenant] -= 1;
                        }
                    }
                }
            }
            // 3. Completed map output on any dead node re-runs while the
            // reducers it feeds are unfinished.
            if !self.jobs[j].reds1.iter().all(SimTask::is_done) {
                for task in self.jobs[j].maps1.iter_mut() {
                    if matches!(task.state, TState::Done { node } if dead[node]) {
                        task.requeue();
                    }
                }
            }
            if self.jobs[j].chained && !self.jobs[j].reds2.iter().all(SimTask::is_done) {
                for task in self.jobs[j].maps2.iter_mut() {
                    if matches!(task.state, TState::Done { node } if dead[node]) {
                        task.requeue();
                    }
                }
            }
        }
        self.schedule(at);
    }
}

impl ServiceSimExecutor {
    /// Runs `jobs` through the simulated service under `params`,
    /// killing nodes per `faults`. Outcomes are in submission order.
    pub fn run<A, P>(
        app: &A,
        partitioner: &P,
        params: &ServiceParams,
        jobs: Vec<SimJobSpec<A>>,
        faults: &[Fault],
    ) -> MrResult<ServiceSimReport<A>>
    where
        A: Application,
        P: Partitioner<A::MapKey>,
    {
        params.validate()?;
        for (j, spec) in jobs.iter().enumerate() {
            if spec.tenant >= params.tenants.len() {
                return Err(MrError::InvalidConfig(format!(
                    "job {j} names tenant {} but the service has {}",
                    spec.tenant,
                    params.tenants.len()
                )));
            }
            if spec.reducers == 0 || spec.splits.is_empty() {
                return Err(MrError::InvalidConfig(format!(
                    "job {j} needs at least one split and one reducer"
                )));
            }
            if !(spec.submit_at_secs.is_finite() && spec.submit_at_secs >= 0.0) {
                return Err(MrError::InvalidConfig(format!(
                    "job {j} submit time must be finite and >= 0"
                )));
            }
        }
        let p = &params.cluster;
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0xC1A5_7E12);
        let node_factor: Vec<f64> = (0..p.nodes)
            .map(|_| hetero_factor(&mut rng, p.hetero_sigma))
            .collect();
        let mut queue = EventQueue::new();
        for (j, spec) in jobs.iter().enumerate() {
            queue.schedule(SimTime::from_secs_f64(spec.submit_at_secs), Ev::Submit(j));
        }
        for &(at, node) in faults {
            queue.schedule(SimTime::from_secs_f64(at), Ev::NodeFail(node));
        }
        let recs: Vec<JobRec> = jobs
            .iter()
            .map(|spec| {
                let stage2 = if spec.chained { spec.reducers } else { 0 };
                JobRec {
                    tenant: spec.tenant,
                    chained: spec.chained,
                    maps1: (0..spec.splits.len()).map(|_| SimTask::new()).collect(),
                    reds1: (0..spec.reducers).map(|_| SimTask::new()).collect(),
                    maps2: (0..stage2).map(|_| SimTask::new()).collect(),
                    reds2: (0..stage2).map(|_| SimTask::new()).collect(),
                    admitted: false,
                    started: false,
                    done_at: None,
                    rejected: None,
                }
            })
            .collect();
        let tenants = params.tenants.len();
        let mut sim = ServiceSim {
            p: params,
            slots: SlotLedger::new(p.nodes, p.map_slots, p.reduce_slots),
            node_factor,
            queue,
            shapes: jobs.iter().map(|s| (s.splits.len(), s.reducers)).collect(),
            jobs: recs,
            served: vec![0; tenants],
            running_slots: vec![0; tenants],
            queued: vec![0; tenants],
            queued_total: 0,
            trace: TraceLog::default(),
            evictions: 0,
            failure: None,
        };
        while let Some((at, ev)) = sim.queue.pop() {
            if sim.failure.is_some() {
                break;
            }
            match ev {
                Ev::Submit(j) => sim.submit(at, j),
                Ev::Done {
                    job,
                    stage,
                    index,
                    attempt,
                } => sim.task_done(at, job, stage, index, attempt),
                Ev::NodeFail(n) => sim.fail_node(at, n),
            }
        }
        // Outputs: the same map → partition → barrier-reduce calls the
        // real engines run, once per completed job — byte-identical to a
        // solo run of the same job by construction.
        let outcomes = jobs
            .into_iter()
            .zip(&sim.jobs)
            .map(|(spec, rec)| {
                let output = if rec.done_at.is_some() {
                    analytic_output(app, partitioner, &spec)?
                } else {
                    Vec::new()
                };
                Ok(SimJobOutcome {
                    tenant: spec.tenant,
                    rejected: rec.rejected.clone(),
                    completed_at: rec.done_at.map(|t| t.as_secs_f64()),
                    output,
                })
            })
            .collect::<MrResult<Vec<_>>>()?;
        Ok(ServiceSimReport {
            jobs: outcomes,
            trace: sim.trace,
            evictions: sim.evictions,
            failure: sim.failure,
        })
    }
}

/// A job's output partitions: keyed records per reduce partition.
pub type JobPartitions<A> = Vec<Vec<(<A as Application>::OutKey, <A as Application>::OutValue)>>;

/// One job's records, computed with the core engine calls and nothing
/// from the schedule.
pub fn analytic_output<A, P>(
    app: &A,
    partitioner: &P,
    spec: &SimJobSpec<A>,
) -> MrResult<JobPartitions<A>>
where
    A: Application,
    P: Partitioner<A::MapKey>,
{
    let mut partitions: Vec<Vec<(A::MapKey, A::MapValue)>> =
        (0..spec.reducers).map(|_| Vec::new()).collect();
    {
        let mut emit = FnEmit(|k: A::MapKey, v: A::MapValue| {
            let part = partitioner.partition(&k, spec.reducers);
            partitions[part].push((k, v));
        });
        for split in &spec.splits {
            for (k, v) in split {
                app.map(k, v, &mut emit);
            }
        }
    }
    let mut counters = Counters::new();
    partitions
        .into_iter()
        .map(|records| reduce_partition_barrier(app, records, &mut counters))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mr_core::{Emit, HashPartitioner};

    struct CountApp;

    impl Application for CountApp {
        type InKey = u64;
        type InValue = String;
        type MapKey = String;
        type MapValue = u64;
        type OutKey = String;
        type OutValue = u64;
        type State = u64;
        type Shared = ();

        fn map(&self, _: &u64, value: &String, out: &mut dyn Emit<String, u64>) {
            for w in value.split_whitespace() {
                out.emit(w.to_string(), 1);
            }
        }

        fn new_shared(&self) {}

        fn reduce_grouped(
            &self,
            key: &String,
            values: Vec<u64>,
            _: &mut (),
            out: &mut dyn Emit<String, u64>,
        ) {
            out.emit(key.clone(), values.iter().sum());
        }

        fn init(&self, _: &String) -> u64 {
            0
        }

        fn absorb(
            &self,
            _: &String,
            state: &mut u64,
            v: u64,
            _: &mut (),
            _: &mut dyn Emit<String, u64>,
        ) {
            *state += v;
        }

        fn merge(&self, _: &String, a: u64, b: u64) -> u64 {
            a + b
        }

        fn finalize(&self, key: String, state: u64, _: &mut (), out: &mut dyn Emit<String, u64>) {
            out.emit(key, state);
        }
    }

    fn splits(tag: usize, n: usize) -> Vec<Vec<(u64, String)>> {
        let vocab = ["alpha", "beta", "gamma", "delta", "epsilon"];
        (0..n)
            .map(|s| {
                (0..6)
                    .map(|l| {
                        (
                            (s * 6 + l) as u64,
                            format!("{} {}", vocab[(tag + s + l) % 5], vocab[(tag * 2 + l) % 5]),
                        )
                    })
                    .collect()
            })
            .collect()
    }

    fn spec(tenant: usize, at: f64, tag: usize, chained: bool) -> SimJobSpec<CountApp> {
        SimJobSpec {
            tenant,
            submit_at_secs: at,
            splits: splits(tag, 4),
            reducers: 3,
            chained,
        }
    }

    #[test]
    fn contended_jobs_complete_with_solo_outputs() {
        let params = ServiceParams::new(2);
        let jobs: Vec<SimJobSpec<CountApp>> =
            (0..6).map(|i| spec(i % 2, 0.0, i, i % 3 == 0)).collect();
        let report =
            ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[]).unwrap();
        assert!(report.failure.is_none());
        for (i, job) in report.jobs.iter().enumerate() {
            assert!(job.completed_at.is_some(), "job {i} should complete");
            let solo =
                analytic_output(&CountApp, &HashPartitioner, &spec(i % 2, 0.0, i, false)).unwrap();
            assert_eq!(job.output, solo, "job {i} output must match solo bytes");
        }
        let per = report.per_tenant_secs();
        assert_eq!(per.len(), 2, "both tenants show up in the trace: {per:?}");
    }

    #[test]
    fn same_seed_same_schedule() {
        let params = ServiceParams::new(2);
        let mk = || {
            let jobs: Vec<SimJobSpec<CountApp>> =
                (0..5).map(|i| spec(i % 2, i as f64, i, i == 2)).collect();
            ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[(30.0, 3)])
                .unwrap()
        };
        let (a, b) = (mk(), mk());
        let ends = |r: &ServiceSimReport<CountApp>| {
            r.jobs.iter().map(|j| j.completed_at).collect::<Vec<_>>()
        };
        assert_eq!(ends(&a), ends(&b));
        assert_eq!(a.trace.len(), b.trace.len());
        assert_eq!(a.evictions, b.evictions);
    }

    #[test]
    fn admission_quotas_reject_typed() {
        let mut params = ServiceParams::new(2)
            .tenant(0, TenantSpec::default().max_queued_jobs(1))
            .queue_cap(2);
        // Flood a 1-slot cluster so submissions pile up in the queue.
        params.cluster.nodes = 1;
        params.cluster.map_slots = 1;
        params.cluster.reduce_slots = 1;
        // Submission order on a saturated cluster: job 0 starts at once
        // (taking the only slot), job 1 waits in tenant 0's queue
        // (filling its quota of 1), job 2 overflows that quota, job 3
        // fills the global queue, job 4 overflows it.
        let jobs: Vec<SimJobSpec<CountApp>> = vec![
            spec(0, 0.0, 0, false),
            spec(0, 0.0, 1, false),
            spec(0, 0.0, 2, false), // tenant 0's queue quota is 1: rejected
            spec(1, 0.0, 3, false),
            spec(1, 0.0, 4, false), // global queue cap 2: rejected
        ];
        let report =
            ServiceSimExecutor::run(&CountApp, &HashPartitioner, &params, jobs, &[]).unwrap();
        assert!(matches!(
            report.jobs[2].rejected,
            Some(RejectReason::TenantQueueFull { tenant: 0, cap: 1 })
        ));
        assert!(matches!(
            report.jobs[4].rejected,
            Some(RejectReason::QueueFull { cap: 2 })
        ));
        for i in [0, 1, 3] {
            assert!(report.jobs[i].completed_at.is_some(), "job {i} admitted");
        }
    }
}
