//! Input sources for simulated jobs.

use mr_core::Application;

/// Supplies the records of each input chunk on demand.
///
/// Implementations are usually thin adapters over `mr-workloads`
/// generators: deterministic functions of the chunk index.
pub trait SimInput<A: Application>: Sync {
    /// The records stored in chunk `chunk`.
    fn records(&self, chunk: u64) -> Vec<(A::InKey, A::InValue)>;
}

/// Adapts a closure into a [`SimInput`].
pub struct FnInput<F>(pub F);

impl<A, F> SimInput<A> for FnInput<F>
where
    A: Application,
    F: Fn(u64) -> Vec<(A::InKey, A::InValue)> + Sync,
{
    fn records(&self, chunk: u64) -> Vec<(A::InKey, A::InValue)> {
        (self.0)(chunk)
    }
}
