//! `SimTracer` — the simulators' single writer into the unified trace
//! pipeline.
//!
//! The event loops are single-threaded, so no dispatcher/batching is
//! needed: events are appended to one [`TraceLog`] in emission order,
//! which is deterministic because the virtual clock is. The tracer
//! *always* records — recording costs no virtual time, speculation
//! ticks query live spans mid-run, and `Outcome::Completed` timestamps
//! come from the last span end — and `TracePolicy` gates only whether
//! the finished log (and the views derived from it) is exported in the
//! report.

use mr_core::{Counters, Scope, TaskKind, TraceEvent, TraceInstant, TraceLog};
use mr_sim::SimTime;
use mr_trace::{SpanKind, SpecEvent, SpecTaskKind};

/// A virtual-clock instant as a trace instant.
fn vt(at: SimTime) -> TraceInstant {
    TraceInstant::Virtual {
        micros: at.as_micros(),
    }
}

/// The task category a span's scope carries: map spans belong to map
/// tasks, every reducer-phase span to reduce tasks.
fn span_task_kind(kind: SpanKind) -> TaskKind {
    match kind {
        SpanKind::Map => TaskKind::Map,
        SpanKind::Shuffle | SpanKind::SortReduce | SpanKind::ShuffleReduce | SpanKind::Output => {
            TaskKind::Reduce
        }
    }
}

/// Per-run trace recorder for the simulated executors. `job` is the
/// chain-stage index (0 for single jobs); chains share one tracer so a
/// run yields one canonical stream.
#[derive(Debug, Default)]
pub(crate) struct SimTracer {
    log: TraceLog,
}

impl SimTracer {
    pub(crate) fn new() -> Self {
        SimTracer::default()
    }

    fn task_scope(job: u32, kind: TaskKind, index: usize, attempt: u32, node: usize) -> Scope {
        Scope::task(job, kind, index as u32, attempt, node as u32)
    }

    /// Records a finished task span.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn span(
        &mut self,
        job: u32,
        kind: SpanKind,
        task: usize,
        attempt: u32,
        node: usize,
        start: SimTime,
        end: SimTime,
    ) {
        self.log.push(
            Self::task_scope(job, span_task_kind(kind), task, attempt, node),
            TraceEvent::Span {
                kind,
                start: vt(start),
                end: vt(end),
            },
        );
    }

    /// Records a reducer heap sample.
    pub(crate) fn heap_sample(
        &mut self,
        job: u32,
        reducer: usize,
        attempt: u32,
        node: usize,
        at: SimTime,
        bytes: u64,
    ) {
        self.log.push(
            Self::task_scope(job, TaskKind::Reduce, reducer, attempt, node),
            TraceEvent::HeapSample { at: vt(at), bytes },
        );
    }

    /// Records a snapshot publication.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn snapshot_mark(
        &mut self,
        job: u32,
        reducer: usize,
        attempt: u32,
        node: usize,
        at: SimTime,
        seq: u64,
        records: u64,
        entries: usize,
    ) {
        self.log.push(
            Self::task_scope(job, TaskKind::Reduce, reducer, attempt, node),
            TraceEvent::SnapshotMark {
                at: vt(at),
                seq,
                records,
                entries: entries as u64,
            },
        );
    }

    /// Records a cross-job handoff edge (scope names the upstream
    /// reducer; `job` is the upstream stage).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handoff_mark(
        &mut self,
        job: u32,
        upstream_reducer: usize,
        attempt: u32,
        node: usize,
        at: SimTime,
        downstream_map: usize,
        records: u64,
        bytes: u64,
    ) {
        self.log.push(
            Self::task_scope(job, TaskKind::Reduce, upstream_reducer, attempt, node),
            TraceEvent::HandoffMark {
                at: vt(at),
                downstream_map: downstream_map as u32,
                records,
                bytes,
            },
        );
    }

    /// Records a speculation event for the affected attempt.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn speculation_mark(
        &mut self,
        job: u32,
        kind: SpecTaskKind,
        task: usize,
        attempt: u32,
        node: usize,
        at: SimTime,
        event: SpecEvent,
    ) {
        let task_kind = match kind {
            SpecTaskKind::Map => TaskKind::Map,
            SpecTaskKind::Reduce => TaskKind::Reduce,
        };
        self.log.push(
            Self::task_scope(job, task_kind, task, attempt, node),
            TraceEvent::SpeculationMark { at: vt(at), event },
        );
    }

    /// Records the deadline firing.
    pub(crate) fn deadline_mark(&mut self, job: u32, at: SimTime) {
        self.log
            .push(Scope::job(job), TraceEvent::DeadlineMark { at: vt(at) });
    }

    /// Records a chain stage finishing its last task.
    pub(crate) fn stage_done(&mut self, job: u32, at: SimTime) {
        self.log
            .push(Scope::job(job), TraceEvent::StageDone { at: vt(at) });
    }

    /// Emits one batch of counter totals under `scope`, one `Counter`
    /// event per name in name order. Zero-valued entries are emitted
    /// too: the legacy direct merge keeps keys that were touched but
    /// never incremented, and the trace-derived `Counters` view must
    /// reproduce exactly that map.
    pub(crate) fn counters(&mut self, scope: Scope, counters: &Counters) {
        for (name, value) in counters.iter() {
            self.log.push(
                scope,
                TraceEvent::Counter {
                    label: name.to_string().into(),
                    delta: value,
                },
            );
        }
    }

    /// Live span query for speculation ticks: `(task, start, end)` of
    /// every recorded span of `kind` in `job`, in recording order.
    pub(crate) fn spans_of(&self, job: u32, kind: SpanKind) -> Vec<(usize, SimTime, SimTime)> {
        self.log
            .iter()
            .filter(|e| e.scope.job == job)
            .filter_map(|e| match &e.event {
                TraceEvent::Span {
                    kind: k,
                    start,
                    end,
                } if *k == kind => Some((
                    e.scope.index as usize,
                    SimTime::from_micros(start.virtual_micros().unwrap_or(0)),
                    SimTime::from_micros(end.virtual_micros().unwrap_or(0)),
                )),
                _ => None,
            })
            .collect()
    }

    /// Latest span end across the whole run (job completion).
    pub(crate) fn last_end(&self) -> SimTime {
        self.log
            .iter()
            .filter_map(|e| match &e.event {
                TraceEvent::Span { end, .. } => end.virtual_micros(),
                _ => None,
            })
            .max()
            .map(SimTime::from_micros)
            .unwrap_or(SimTime::ZERO)
    }

    /// Snapshot publications recorded so far in `job`.
    pub(crate) fn snapshot_count(&self, job: u32) -> usize {
        self.log
            .iter()
            .filter(|e| e.scope.job == job && matches!(e.event, TraceEvent::SnapshotMark { .. }))
            .count()
    }

    /// Consumes the tracer into the finished, ordered log.
    pub(crate) fn into_log(self) -> TraceLog {
        self.log
    }
}
