//! The event-driven cluster executor.
//!
//! One `Sim` instance owns all mutable state for a run: task tables,
//! per-node disks, the network, the event queue. Map and reduce functions
//! execute for real on generated records; the clock is virtual.

use crate::costs::CostModel;
use crate::input::SimInput;
use crate::params::ClusterParams;
use crate::placement::{SlotLedger, TieBreak};
use crate::report::{Outcome, SimReport};
use crate::timeline::{SpanKind, SpecEvent, SpecTaskKind, Timeline};
use crate::trace::SimTracer;
use mr_core::counters::names;
use mr_core::engine::barrier::reduce_partition_barrier;
use mr_core::engine::pipeline::IncrementalDriver;
use mr_core::engine::DriverReport;
use mr_core::{
    Application, CombinerBuffer, Counters, Engine, JobConfig, JobOutput, MemoryPolicy, MrError,
    Partitioner, Scope, Snapshot, SnapshotPolicy, SpeculationPolicy, TaskKind, TraceLog,
};
use mr_dfs::{ChunkId, Dfs, DfsConfig};
use mr_net::{Network, NetworkConfig, NodeId};
use mr_sim::{EventQueue, FifoResource, SimDuration, SimTime};
use mr_workloads::dist::hetero_factor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Public entry point: runs jobs on a simulated cluster.
pub struct SimExecutor {
    params: ClusterParams,
}

/// A scheduled node failure: `(seconds, node index)`.
pub type Fault = (f64, usize);

impl SimExecutor {
    /// An executor for the given cluster.
    pub fn new(params: ClusterParams) -> Self {
        params.validate();
        SimExecutor { params }
    }

    /// Simulates `app` over `chunks` input chunks.
    pub fn run<A, I, P>(
        &self,
        app: &A,
        input: &I,
        chunks: u64,
        cfg: &JobConfig,
        costs: &CostModel,
        partitioner: &P,
    ) -> SimReport<A>
    where
        A: Application,
        I: SimInput<A>,
        P: Partitioner<A::MapKey>,
    {
        self.run_with_faults(app, input, chunks, cfg, costs, partitioner, &[])
    }

    /// Simulates with node failures injected at the given times.
    #[allow(clippy::too_many_arguments)]
    pub fn run_with_faults<A, I, P>(
        &self,
        app: &A,
        input: &I,
        chunks: u64,
        cfg: &JobConfig,
        costs: &CostModel,
        partitioner: &P,
        faults: &[Fault],
    ) -> SimReport<A>
    where
        A: Application,
        I: SimInput<A>,
        P: Partitioner<A::MapKey>,
    {
        costs.validate();
        assert!(chunks >= 1, "need at least one input chunk");
        // Validate the *effective* config — every cluster-level override
        // applied in one place (`ClusterParams::effective_config`).
        let effective = self.params.effective_config(cfg);
        if let Err(e) = effective.validate() {
            // A nonsense knob combination fails the job up front — the
            // same Err-not-panic contract as the local executor, shaped
            // as a failed report since simulation returns one either way.
            return SimReport {
                outcome: Outcome::Failed {
                    at: SimTime::ZERO,
                    reason: e.to_string(),
                },
                output: None,
                trace: TraceLog::new(),
                timeline: Timeline::default(),
                first_map_done: SimTime::ZERO,
                last_map_done: SimTime::ZERO,
                shuffle_done: SimTime::ZERO,
                shuffle_bytes: 0,
                map_tasks_run: 0,
                reduce_tasks_run: 0,
                snapshots_taken: 0,
            };
        }
        let mut sim = Sim::new(
            &self.params,
            app,
            input,
            chunks,
            &effective,
            costs,
            partitioner,
        );
        for &(secs, node) in faults {
            sim.queue
                .schedule(SimTime::from_secs_f64(secs), Ev::NodeFail(node));
        }
        sim.run()
    }
}

/// Events in the simulation. Task events carry an attempt stamp so events
/// addressed to a killed attempt are ignored.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Schedule,
    MapFetched(usize, u32),
    MapComputed(usize, u32),
    MapWritten(usize, u32),
    Batch(usize, u32),
    SortDone(usize, u32),
    GroupedDone(usize, u32),
    FinalizeDone(usize, u32),
    OutputPartDone(usize, u32),
    NodeFail(usize),
    /// Global time-driven snapshot tick (`SnapshotPolicy::EverySecs`):
    /// every live reduce task publishes a point-in-time estimate.
    SnapshotTick,
    /// Periodic straggler check (`SpeculationPolicy::Enabled`): compares
    /// every running task's progress against the median and launches
    /// backup attempts for the ones that fall behind.
    SpecTick,
    /// A backup map attempt's setup latency elapsed; issue its input read.
    MapBackupStart(usize, u32),
    /// A backup reduce attempt's setup latency elapsed; pull map output.
    RedBackupStart(usize, u32),
    /// A cancelled attempt's slot finishes teardown and frees. The bool
    /// distinguishes map (`true`) from reduce (`false`) slots.
    SpecSlotFree(usize, bool),
    /// The job's `DeadlinePolicy` expires: stop and answer from the
    /// latest published snapshots.
    Deadline,
}

/// Network flow tags.
#[derive(Debug, Clone, Copy)]
enum Tag {
    /// Remote chunk fetch for map task `m`.
    Fetch(usize, u32),
    /// Shuffle of map `m`'s partition for reducer `r`.
    Shuffle {
        map: usize,
        map_attempt: u32,
        red: usize,
        red_attempt: u32,
    },
    /// Output replica write for reducer `r`.
    Output(usize, u32, NodeId),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MapState {
    Pending,
    Fetching,
    Computing,
    Writing,
    Done,
}

struct MapTask<A: Application> {
    chunk: ChunkId,
    state: MapState,
    node: usize,
    attempt: u32,
    started: SimTime,
    /// Per-reducer record batches, produced by really running map().
    #[allow(clippy::type_complexity)]
    output: Option<Vec<Vec<(A::MapKey, A::MapValue)>>>,
    /// Nominal map-output bytes (chunk bytes × shuffle selectivity).
    out_bytes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RedState {
    Pending,
    Running,
    Finalizing,
    Writing,
    Done,
}

struct ReduceTask<A: Application> {
    state: RedState,
    node: usize,
    attempt: u32,
    started: SimTime,
    /// Map tasks whose batch has been *delivered*.
    fetched_from: Vec<bool>,
    /// Map tasks we have an in-flight or delivered flow from.
    flow_from: Vec<bool>,
    /// Barrier mode: buffered records awaiting the sort.
    buffer: Vec<(A::MapKey, A::MapValue)>,
    /// Pipelined mode: the live incremental driver.
    driver: Option<IncrementalDriver<A>>,
    /// Batches delivered but not yet charged/absorbed.
    batches: VecDeque<Vec<(A::MapKey, A::MapValue)>>,
    /// When the reducer's CPU drains everything scheduled on it.
    cpu_free: SimTime,
    /// Store I/O bytes already charged to the disk.
    io_charged: u64,
    shuffle_done_at: Option<SimTime>,
    reduce_phase_started: Option<SimTime>,
    finalize_done_at: Option<SimTime>,
    /// Nominal bytes received through the shuffle.
    input_bytes: u64,
    out: Vec<(A::OutKey, A::OutValue)>,
    counters: Counters,
    report: Option<DriverReport>,
    /// Output pieces (local disk + remote replicas) still outstanding.
    write_parts_left: usize,
    /// Every snapshot this partition has published, across task
    /// re-executions — the stream an observer saw. Never cleared on
    /// restart; sequence numbers stay monotone through faults.
    published_snaps: Vec<Snapshot<A>>,
    /// Next snapshot sequence number, preserved across restarts (the
    /// restarted attempt's driver resumes numbering above it).
    next_snap_seq: u64,
}

/// Resolves a `&mut` to one attempt of map task `$m`: the primary slot
/// (`$bk == false`) or the backup slot. A macro rather than a method so
/// the borrow stays confined to the task tables and the caller can keep
/// using `self.queue`, `self.disks` etc. concurrently.
macro_rules! map_mut {
    ($s:expr, $m:expr, $bk:expr) => {
        if $bk {
            $s.maps_bk[$m].as_mut().expect("backup map attempt present")
        } else {
            &mut $s.maps[$m]
        }
    };
}

/// `map_mut!` for reduce tasks.
macro_rules! red_mut {
    ($s:expr, $r:expr, $bk:expr) => {
        if $bk {
            $s.reds_bk[$r]
                .as_mut()
                .expect("backup reduce attempt present")
        } else {
            &mut $s.reds[$r]
        }
    };
}

struct Sim<'a, A: Application, I, P> {
    p: &'a ClusterParams,
    app: &'a A,
    input: &'a I,
    /// The job's config with the cluster-level overrides applied
    /// (`ClusterParams::store_index` wins over the job's own knob), so
    /// every store and combiner this sim builds sees one effective
    /// config.
    cfg: JobConfig,
    costs: &'a CostModel,
    partitioner: &'a P,
    queue: EventQueue<Ev>,
    net: Network<Tag>,
    disks: Vec<FifoResource>,
    dfs: Dfs,
    slots: SlotLedger,
    node_factor: Vec<f64>,
    maps: Vec<MapTask<A>>,
    reds: Vec<ReduceTask<A>>,
    /// Speculative backup attempts, one slot per task. `Some` while a
    /// backup races the primary; resolved first-wins (the winner is
    /// promoted into the primary table, the loser cancelled).
    maps_bk: Vec<Option<MapTask<A>>>,
    reds_bk: Vec<Option<ReduceTask<A>>>,
    /// Whether a backup was ever launched for this task — at most one
    /// backup per task, across its whole lifetime.
    map_speculated: Vec<bool>,
    red_speculated: Vec<bool>,
    /// Per-task attempt counters. Every restart *and* backup launch draws
    /// a fresh stamp from here, so no two live attempts of one task can
    /// ever share an attempt number (events and flow tags stay unambiguous).
    map_seq: Vec<u32>,
    red_seq: Vec<u32>,
    /// Effective speculation policy, cluster override applied (the
    /// effective deadline lives in `cfg.deadline`; it is consumed once,
    /// when the `Ev::Deadline` event is scheduled).
    speculation: SpeculationPolicy,
    /// Set when the deadline fired before completion.
    deadline_hit: Option<SimTime>,
    /// `cfg` with snapshots disabled — backup reducers run their drivers
    /// on this so only the primary attempt feeds the observer's snapshot
    /// stream (a promoted winner resumes numbering above it).
    cfg_bk: JobConfig,
    maps_done: usize,
    reds_done: usize,
    /// The run's unified trace recorder. Always records (recording costs
    /// no virtual time and speculation ticks query live spans); the
    /// effective `cfg.trace` policy gates only what `finish_report`
    /// exports.
    tracer: SimTracer,
    first_map_done: Option<SimTime>,
    last_map_done: SimTime,
    shuffle_done: SimTime,
    shuffle_bytes: u64,
    map_tasks_run: usize,
    reduce_tasks_run: usize,
    map_counters: Counters,
    noise_rng: StdRng,
    failure: Option<(SimTime, String)>,
    now: SimTime,
}

impl<'a, A, I, P> Sim<'a, A, I, P>
where
    A: Application,
    I: SimInput<A>,
    P: Partitioner<A::MapKey>,
{
    fn new(
        p: &'a ClusterParams,
        app: &'a A,
        input: &'a I,
        chunks: u64,
        cfg: &'a JobConfig,
        costs: &'a CostModel,
        partitioner: &'a P,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(p.seed ^ 0xC1A5_7E12);
        let node_factor: Vec<f64> = (0..p.nodes)
            .map(|_| hetero_factor(&mut rng, p.hetero_sigma))
            .collect();
        let mut dfs = Dfs::new(
            DfsConfig {
                nodes: p.nodes,
                chunk_bytes: p.chunk_bytes,
                replication: p.replication,
            },
            p.seed,
        );
        let file = dfs.create_file("job-input", chunks * p.chunk_bytes);
        let chunk_ids: Vec<ChunkId> = dfs.file_chunks(file).to_vec();
        let maps: Vec<MapTask<A>> = chunk_ids
            .into_iter()
            .map(|chunk| MapTask::<A> {
                chunk,
                state: MapState::Pending,
                node: usize::MAX,
                attempt: 0,
                started: SimTime::ZERO,
                output: None,
                out_bytes: (p.chunk_bytes as f64 * costs.shuffle_selectivity) as u64,
            })
            .collect();
        // `cfg` is already the *effective* config — cluster overrides
        // were applied by `ClusterParams::effective_config` before entry.
        let cfg = cfg.clone();
        let speculation = cfg.speculation;
        let deadline = cfg.deadline;
        let mut cfg_bk = cfg.clone();
        cfg_bk.snapshots = SnapshotPolicy::Disabled;
        let reds: Vec<ReduceTask<A>> = (0..cfg.reducers)
            .map(|_| ReduceTask {
                state: RedState::Pending,
                node: usize::MAX,
                attempt: 0,
                started: SimTime::ZERO,
                fetched_from: Vec::new(),
                flow_from: Vec::new(),
                buffer: Vec::new(),
                driver: None,
                batches: VecDeque::new(),
                cpu_free: SimTime::ZERO,
                io_charged: 0,
                shuffle_done_at: None,
                reduce_phase_started: None,
                finalize_done_at: None,
                input_bytes: 0,
                out: Vec::new(),
                counters: Counters::new(),
                report: None,
                write_parts_left: 0,
                published_snaps: Vec::new(),
                next_snap_seq: 0,
            })
            .collect();
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Ev::Schedule);
        if let Some(secs) = cfg.snapshots.secs_interval() {
            queue.schedule(SimTime::from_secs_f64(secs), Ev::SnapshotTick);
        }
        if let SpeculationPolicy::Enabled { check_secs, .. } = speculation {
            queue.schedule(SimTime::from_secs_f64(check_secs), Ev::SpecTick);
        }
        if let Some(secs) = deadline.secs() {
            queue.schedule(SimTime::from_secs_f64(secs), Ev::Deadline);
        }
        Sim {
            net: Network::new(NetworkConfig {
                nodes: p.nodes,
                link_bytes_per_sec: p.link_bytes_per_sec,
                oversubscription: p.oversubscription,
            }),
            disks: (0..p.nodes)
                .map(|_| FifoResource::new(p.disk_bytes_per_sec))
                .collect(),
            slots: SlotLedger::new(p.nodes, p.map_slots, p.reduce_slots),
            noise_rng: StdRng::seed_from_u64(p.seed ^ 0x5EED_0F0F),
            p,
            app,
            input,
            cfg,
            costs,
            partitioner,
            queue,
            dfs,
            node_factor,
            maps_bk: (0..maps.len()).map(|_| None).collect(),
            reds_bk: (0..reds.len()).map(|_| None).collect(),
            map_speculated: vec![false; maps.len()],
            red_speculated: vec![false; reds.len()],
            map_seq: vec![0; maps.len()],
            red_seq: vec![0; reds.len()],
            speculation,
            deadline_hit: None,
            cfg_bk,
            maps,
            reds,
            maps_done: 0,
            reds_done: 0,
            tracer: SimTracer::new(),
            first_map_done: None,
            last_map_done: SimTime::ZERO,
            shuffle_done: SimTime::ZERO,
            shuffle_bytes: 0,
            map_tasks_run: 0,
            reduce_tasks_run: 0,
            map_counters: Counters::new(),
            failure: None,
            now: SimTime::ZERO,
        }
    }

    fn pipelined(&self) -> bool {
        matches!(self.cfg.engine, Engine::BarrierLess { .. })
    }

    /// The combiner byte budget if map-side combining is active for this
    /// run: the application must opt in, and the *effective* combiner
    /// policy (cluster knob wins over the job's own; resolved by
    /// `ClusterParams::effective_config`) must enable it.
    fn combine_budget(&self) -> Option<u64> {
        if !(self.app.combine_enabled() && self.app.uses_keyed_state()) {
            return None;
        }
        self.cfg.combiner.budget_bytes()
    }

    fn absorb_cost_per_record(&self) -> f64 {
        match &self.cfg.engine {
            Engine::BarrierLess {
                memory: MemoryPolicy::KvStore { .. },
            } => self.costs.kv_cpu_per_record,
            Engine::BarrierLess { .. } => {
                self.costs.reduce_cpu_per_record + self.costs.absorb_extra_per_record
            }
            Engine::Barrier => self.costs.reduce_cpu_per_record,
        }
    }

    fn noise(&mut self) -> f64 {
        hetero_factor(&mut self.noise_rng, self.p.task_noise_sigma)
    }

    // ---------------------------------------------------------------- run

    fn run(mut self) -> SimReport<A> {
        loop {
            if self.failure.is_some() || self.deadline_hit.is_some() {
                break;
            }
            let tq = self.queue.peek_time();
            let tn = self.net.next_event_time();
            match (tq, tn) {
                (None, None) => break,
                (Some(tq_at), tn_opt) if tn_opt.is_none_or(|tn_at| tq_at <= tn_at) => {
                    let (at, ev) = self.queue.pop().expect("peeked");
                    self.now = at;
                    self.handle_event(at, ev);
                }
                (_, Some(tn_at)) => {
                    self.now = tn_at;
                    for (_, tag) in self.net.advance_to(tn_at) {
                        self.handle_flow(tn_at, tag);
                    }
                }
                (Some(_), None) => unreachable!("guard above covers this"),
            }
            if self.maps_done == self.maps.len() && self.reds_done == self.reds.len() {
                break;
            }
        }
        self.finish_report()
    }

    fn finish_report(mut self) -> SimReport<A> {
        let outcome = match self.failure.take() {
            Some((at, reason)) => Outcome::Failed { at, reason },
            None => match self.deadline_hit {
                Some(at) => Outcome::Approximate { at },
                None => Outcome::Completed {
                    at: self.tracer.last_end(),
                },
            },
        };
        // Emit the run's counter totals into the trace: the merged
        // map-side tallies as one job-scope batch (per-worker attribution
        // would add nothing — the sim merges them as they land), each
        // reducer's tallies under its own task scope. The direct merge of
        // exactly these values is what the legacy report carried, so the
        // trace-derived `Counters` below is equal by construction.
        self.tracer.counters(Scope::job(0), &self.map_counters);
        for (idx, r) in self.reds.iter().enumerate() {
            self.tracer.counters(
                Scope::task(0, TaskKind::Reduce, idx as u32, r.attempt, r.node as u32),
                &r.counters,
            );
        }
        let snapshots_taken = self.tracer.snapshot_count(0);
        // `TracePolicy` gates the export: enabled runs ship the log and
        // derive the legacy views from it; disabled runs ship an empty
        // log, an empty timeline, and directly-merged counters — the
        // job's answer is byte-identical either way.
        let trace_on = self.cfg.trace.is_enabled();
        let (trace, timeline) = if trace_on {
            let log = std::mem::take(&mut self.tracer).into_log();
            let timeline = Timeline::from_log(&log, 0);
            (log, timeline)
        } else {
            (TraceLog::new(), Timeline::default())
        };
        let run_counters = if trace_on {
            Counters::from_trace_job(&trace, 0)
        } else {
            let mut c = std::mem::take(&mut self.map_counters);
            for r in &self.reds {
                c.merge(&r.counters);
            }
            c
        };
        let output = if outcome.is_completed() {
            let mut partitions = Vec::with_capacity(self.reds.len());
            let mut reports = Vec::new();
            let mut snapshots = Vec::with_capacity(self.reds.len());
            for r in &mut self.reds {
                partitions.push(std::mem::take(&mut r.out));
                snapshots.push(std::mem::take(&mut r.published_snaps));
                if let Some(rep) = r.report.take() {
                    reports.push(rep);
                }
            }
            Some(JobOutput {
                partitions,
                counters: run_counters,
                reports,
                snapshots,
                trace: TraceLog::new(),
            })
        } else if outcome.is_approximate() {
            // Deadline-bounded answer: each partition reports the latest
            // estimate its primary attempt published (empty if it never
            // published — honesty over optimism). Counters are the
            // partial tallies accumulated so far.
            let mut partitions = Vec::with_capacity(self.reds.len());
            let mut snapshots = Vec::with_capacity(self.reds.len());
            for r in &mut self.reds {
                partitions.push(
                    r.published_snaps
                        .last()
                        .map(|s| s.estimate.clone())
                        .unwrap_or_default(),
                );
                snapshots.push(std::mem::take(&mut r.published_snaps));
            }
            Some(JobOutput {
                partitions,
                counters: run_counters,
                reports: Vec::new(),
                snapshots,
                trace: TraceLog::new(),
            })
        } else {
            None
        };
        SimReport {
            outcome,
            output,
            snapshots_taken,
            trace,
            timeline,
            first_map_done: self.first_map_done.unwrap_or(SimTime::ZERO),
            last_map_done: self.last_map_done,
            shuffle_done: self.shuffle_done,
            shuffle_bytes: self.shuffle_bytes,
            map_tasks_run: self.map_tasks_run,
            reduce_tasks_run: self.reduce_tasks_run,
        }
    }

    // ---------------------------------------------------------- scheduler

    /// Resolves an attempt stamp for map task `m` to the slot it lives
    /// in: `Some(false)` = primary, `Some(true)` = backup, `None` = a
    /// dead attempt (event dropped). Attempt stamps are drawn from a
    /// shared per-task counter, so a stamp never matches both slots.
    fn map_slot(&self, m: usize, a: u32) -> Option<bool> {
        if self.maps[m].attempt == a {
            Some(false)
        } else if self.maps_bk[m].as_ref().is_some_and(|t| t.attempt == a) {
            Some(true)
        } else {
            None
        }
    }

    /// `map_slot` for reduce tasks.
    fn red_slot(&self, r: usize, a: u32) -> Option<bool> {
        if self.reds[r].attempt == a {
            Some(false)
        } else if self.reds_bk[r].as_ref().is_some_and(|t| t.attempt == a) {
            Some(true)
        } else {
            None
        }
    }

    fn map_state(&self, m: usize, bk: bool) -> MapState {
        if bk {
            self.maps_bk[m].as_ref().expect("backup present").state
        } else {
            self.maps[m].state
        }
    }

    fn red_state(&self, r: usize, bk: bool) -> RedState {
        if bk {
            self.reds_bk[r].as_ref().expect("backup present").state
        } else {
            self.reds[r].state
        }
    }

    fn handle_event(&mut self, at: SimTime, ev: Ev) {
        match ev {
            Ev::Schedule => self.schedule_tasks(at),
            Ev::MapFetched(m, a) => {
                if let Some(bk) = self.map_slot(m, a) {
                    if self.map_state(m, bk) == MapState::Fetching {
                        self.map_compute(at, m, bk);
                    }
                }
            }
            Ev::MapComputed(m, a) => {
                if let Some(bk) = self.map_slot(m, a) {
                    if self.map_state(m, bk) == MapState::Computing {
                        self.map_write(at, m, bk);
                    }
                }
            }
            Ev::MapWritten(m, a) => {
                if let Some(bk) = self.map_slot(m, a) {
                    if self.map_state(m, bk) == MapState::Writing {
                        self.map_done(at, m, bk);
                    }
                }
            }
            Ev::Batch(r, a) => {
                if let Some(bk) = self.red_slot(r, a) {
                    if self.red_state(r, bk) == RedState::Running {
                        self.reduce_batch(at, r, bk);
                    }
                }
            }
            Ev::SortDone(r, a) => {
                if let Some(bk) = self.red_slot(r, a) {
                    self.grouped_reduce_start(at, r, bk);
                }
            }
            Ev::GroupedDone(r, a) => {
                if let Some(bk) = self.red_slot(r, a) {
                    self.grouped_reduce_done(at, r, bk);
                }
            }
            Ev::FinalizeDone(r, a) => {
                if let Some(bk) = self.red_slot(r, a) {
                    if self.red_state(r, bk) == RedState::Finalizing {
                        self.finalize_done(at, r, bk);
                    }
                }
            }
            Ev::OutputPartDone(r, a) => {
                // Only the resolved primary ever writes output.
                if self.reds[r].attempt == a && self.reds[r].state == RedState::Writing {
                    self.output_part_done(at, r);
                }
            }
            Ev::NodeFail(n) => self.fail_node(at, n),
            Ev::SnapshotTick => self.snapshot_tick(at),
            Ev::SpecTick => self.spec_tick(at),
            // Backup-start events resolve their slot by attempt, not by
            // assuming the backup slot: if the original's node died
            // during the setup latency, `fail_node` has already promoted
            // the not-yet-started backup to primary, and the attempt must
            // start from wherever it now lives (dropping the event would
            // wedge the promoted attempt in its initial state forever).
            Ev::MapBackupStart(m, a) => {
                if let Some(bk) = self.map_slot(m, a) {
                    if self.map_state(m, bk) == MapState::Fetching {
                        self.start_fetch(at, m, bk);
                    }
                }
            }
            Ev::RedBackupStart(r, a) => {
                if let Some(bk) = self.red_slot(r, a) {
                    if self.red_state(r, bk) == RedState::Running {
                        // Pull from every map that finished before launch;
                        // later finishers feed the attempt as they complete.
                        for m in 0..self.maps.len() {
                            if self.maps[m].state == MapState::Done
                                && !red_mut!(self, r, bk).flow_from[m]
                            {
                                self.start_shuffle_flow(at, m, r, bk);
                            }
                        }
                    }
                }
            }
            Ev::SpecSlotFree(n, is_map) => {
                if self.slots.alive[n] {
                    let slots = if is_map {
                        &mut self.slots.map_used[n]
                    } else {
                        &mut self.slots.red_used[n]
                    };
                    *slots = slots.saturating_sub(1);
                    self.queue.schedule(at, Ev::Schedule);
                }
            }
            Ev::Deadline => {
                if self.maps_done < self.maps.len() || self.reds_done < self.reds.len() {
                    self.deadline_hit = Some(at);
                    self.tracer.deadline_mark(0, at);
                }
            }
        }
    }

    // ---------------------------------------------------------- snapshots

    /// Time-driven snapshot tick: every live reduce task publishes a
    /// consistent point-in-time estimate. Pipelined reducers walk their
    /// partial store (real contents, frozen view); barrier reducers that
    /// have not finished their grouped reduce have *nothing* to show —
    /// an empty estimate, which is precisely the paper's argument for
    /// breaking the barrier.
    fn snapshot_tick(&mut self, at: SimTime) {
        let pipelined = self.pipelined();
        for r in 0..self.reds.len() {
            match self.reds[r].state {
                RedState::Running | RedState::Finalizing => {}
                _ => continue,
            }
            if pipelined {
                let task = &mut self.reds[r];
                if let Some(driver) = task.driver.as_mut() {
                    driver.set_now_secs(at.as_secs_f64());
                    if let Err(e) = driver.snapshot_now(self.app) {
                        self.fail_job(at, r, e);
                        return;
                    }
                }
                self.collect_snapshots(at, r);
            } else {
                // Pre-barrier: publish the honest answer — nothing yet.
                let task = &mut self.reds[r];
                let seq = task.next_snap_seq;
                let (attempt, node) = (task.attempt, task.node);
                task.next_snap_seq += 1;
                task.counters.incr(mr_core::counters::names::SNAPSHOT_COUNT);
                task.published_snaps.push(Snapshot {
                    reducer: r,
                    seq,
                    records_absorbed: task.buffer.len() as u64,
                    live_entries: 0,
                    at_secs: at.as_secs_f64(),
                    estimate: Vec::new(),
                });
                self.tracer
                    .snapshot_mark(0, r, attempt, node, at, seq, 0, 0);
            }
        }
        // Keep ticking until the job drains (the run loop stops firing
        // events once everything is done or the job failed).
        if self.maps_done < self.maps.len() || self.reds_done < self.reds.len() {
            let secs = self.cfg.snapshots.secs_interval().expect("timed policy");
            self.queue
                .schedule(at + SimDuration::from_secs_f64(secs), Ev::SnapshotTick);
        }
    }

    /// Drains freshly published snapshots out of reducer `r`'s driver:
    /// records timeline marks, charges the snapshot CPU on the reducer's
    /// core (delaying subsequent absorption — observation is not free),
    /// and appends to the partition's published stream.
    fn collect_snapshots(&mut self, at: SimTime, r: usize) {
        let node = self.reds[r].node;
        let attempt = self.reds[r].attempt;
        let factor = self.node_factor[node];
        let task = &mut self.reds[r];
        let Some(driver) = task.driver.as_mut() else {
            return;
        };
        let fresh = driver.take_snapshots();
        if fresh.is_empty() {
            return;
        }
        task.next_snap_seq = driver.snapshot_seq();
        let mut cpu = 0.0;
        for snap in &fresh {
            self.tracer.snapshot_mark(
                0,
                r,
                attempt,
                node,
                at,
                snap.seq,
                snap.estimate.len() as u64,
                snap.live_entries,
            );
            cpu += self.costs.snapshot_cpu_per_record * snap.estimate.len() as f64 * factor;
        }
        task.published_snaps.extend(fresh);
        if cpu > 0.0 {
            let start = task.cpu_free.max(at);
            task.cpu_free = start + SimDuration::from_secs_f64(cpu);
            // The charge may push the CPU past every scheduled batch
            // event; re-arm one at the new drain time so the finalize
            // check (`cpu_free <= at`) is re-evaluated and the reducer
            // can never stall on a snapshot bill.
            if task.state == RedState::Running {
                let when = task.cpu_free;
                let attempt = task.attempt;
                self.queue.schedule(when, Ev::Batch(r, attempt));
            }
        }
    }

    fn schedule_tasks(&mut self, at: SimTime) {
        // Map tasks: prefer chunk-local placement, like Hadoop's scheduler.
        while let Some(node) = self.slots.first_free_map() {
            // First pass: a pending map with a replica on this node.
            let local = self.maps.iter().position(|m| {
                m.state == MapState::Pending && self.dfs.is_local(m.chunk, NodeId(node as u32))
            });
            let pick =
                local.or_else(|| self.maps.iter().position(|m| m.state == MapState::Pending));
            let Some(m) = pick else { break };
            self.start_map(at, m, node);
        }
        // Reduce tasks: id order onto free reduce slots.
        while let Some(r) = self.reds.iter().position(|r| r.state == RedState::Pending) {
            let Some(node) = self.slots.least_loaded(false, TieBreak::LowIndex) else {
                break;
            };
            self.start_reduce(at, r, node);
        }
    }

    // -------------------------------------------------------- speculation

    /// Periodic straggler check, in the role of a LATE-style scheduler
    /// that tracks both task progress and per-node throughput. Two kinds
    /// of trigger, each compared against a median so a straggler is
    /// always judged relative to its healthy peers:
    ///
    /// * **Progress triggers** catch per-task noise: a map that has run
    ///   `slowdown`× longer than the median completed map, or a reducer
    ///   whose compute time exceeds `slowdown`× the expectation *for its
    ///   own input size* (a heavy partition on a healthy node is skew,
    ///   not a straggler). Shuffle-delivery counts are deliberately NOT
    ///   a trigger: the simulator models the network explicitly, so
    ///   delivery lag always traces to fair link contention (e.g. two
    ///   reducers sharing one node's inbound link) — never to a hidden
    ///   slow node — and backing up a contended-but-healthy reducer can
    ///   only lose the race.
    /// * **Speed triggers** catch slow nodes early, while a backup can
    ///   still win the race: a task on a node whose throughput factor
    ///   trails the alive-node median by `slowdown` is backed up as soon
    ///   as it has consumed its fair share of time (maps) or received
    ///   its first shuffle delivery (reducers) — the simulated stand-in
    ///   for the per-node speed estimates a LATE scheduler maintains.
    ///
    /// All comparisons are strict, so on a homogeneous noise-free
    /// cluster — where every attempt tracks the median exactly —
    /// speculation never fires, even at `slowdown = 1`.
    fn spec_tick(&mut self, at: SimTime) {
        let SpeculationPolicy::Enabled {
            check_secs,
            slowdown,
        } = self.speculation
        else {
            return;
        };
        let mut facs: Vec<f64> = (0..self.p.nodes)
            .filter(|&n| self.slots.alive[n])
            .map(|n| self.node_factor[n])
            .collect();
        facs.sort_by(|a, b| a.partial_cmp(b).expect("factors are finite"));
        let median_factor = facs.get(facs.len() / 2).copied().unwrap_or(1.0);
        let slow_node = |factor: f64| factor > slowdown * median_factor;
        // Maps. The noise trigger needs a meaningful median of completed
        // maps before judging anyone; the speed trigger needs none — a
        // map on a slow node is outpaced from the moment it starts, and
        // slot availability regulates how early its backup can actually
        // launch (while primaries fill every slot, the launch finds no
        // slot and retries at a later tick).
        let mut durs: Vec<f64> = self
            .tracer
            .spans_of(0, SpanKind::Map)
            .iter()
            .map(|(_, start, end)| end.as_secs_f64() - start.as_secs_f64())
            .collect();
        durs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let map_median = (durs.len() >= 3).then(|| durs[durs.len() / 2]);
        for m in 0..self.maps.len() {
            let task = &self.maps[m];
            let running = matches!(
                task.state,
                MapState::Fetching | MapState::Computing | MapState::Writing
            );
            if !running || self.map_speculated[m] {
                continue;
            }
            let elapsed = at.as_secs_f64() - task.started.as_secs_f64();
            let noisy = map_median.is_some_and(|median| elapsed > slowdown * median);
            if noisy || slow_node(self.node_factor[task.node]) {
                self.launch_map_backup(at, m);
            }
        }
        // Reducer speed trigger: a reducer placed on a slow node will
        // lose by roughly its node's throughput deficit no matter how
        // the shuffle goes, so it is backed up as soon as real work has
        // reached it.
        for r in 0..self.reds.len() {
            let task = &self.reds[r];
            if task.state != RedState::Running
                || self.red_speculated[r]
                || !task.fetched_from.iter().any(|&f| f)
            {
                continue;
            }
            if slow_node(self.node_factor[task.node]) {
                self.launch_red_backup(at, r);
            }
        }
        // Reducer progress trigger. The baseline must match what the
        // engine's reducer span measures.
        // The barrier engine's SortReduce span covers only the
        // post-shuffle CPU work, whose length scales with the partition —
        // so completed reducers establish a median per-byte rate, and a
        // straggler is one whose elapsed CPU time exceeds `slowdown` ×
        // the expectation for *its own* input size (a heavy partition on
        // a healthy node is skew, not a straggler). The pipelined
        // ShuffleReduce span covers the whole running window, which is
        // dominated by the map stage every reducer waits out together, so
        // raw durations are already comparable there.
        let pipelined = self.pipelined();
        if pipelined {
            let mut rdurs: Vec<f64> = self
                .tracer
                .spans_of(0, SpanKind::ShuffleReduce)
                .iter()
                .map(|(_, start, end)| end.as_secs_f64() - start.as_secs_f64())
                .collect();
            if rdurs.len() >= 3 {
                rdurs.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
                let median = rdurs[rdurs.len() / 2];
                for r in 0..self.reds.len() {
                    let task = &self.reds[r];
                    if task.state != RedState::Running || self.red_speculated[r] {
                        continue;
                    }
                    let elapsed = at.as_secs_f64() - task.started.as_secs_f64();
                    if elapsed > slowdown * median {
                        self.launch_red_backup(at, r);
                    }
                }
            }
        } else {
            let mut rates: Vec<f64> = self
                .tracer
                .spans_of(0, SpanKind::SortReduce)
                .iter()
                .filter_map(|&(task, start, end)| {
                    let bytes = self.reds[task].input_bytes;
                    (bytes > 0).then(|| (end.as_secs_f64() - start.as_secs_f64()) / bytes as f64)
                })
                .collect();
            if rates.len() >= 3 {
                rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
                let per_byte = rates[rates.len() / 2];
                for r in 0..self.reds.len() {
                    let task = &self.reds[r];
                    if task.state != RedState::Running
                        || self.red_speculated[r]
                        || task.input_bytes == 0
                    {
                        continue;
                    }
                    let Some(from) = task.shuffle_done_at else {
                        continue;
                    };
                    let elapsed = at.as_secs_f64() - from.as_secs_f64();
                    if elapsed > slowdown * per_byte * task.input_bytes as f64 {
                        self.launch_red_backup(at, r);
                    }
                }
            }
        }
        // Keep checking until the job drains.
        if self.maps_done < self.maps.len() || self.reds_done < self.reds.len() {
            self.queue
                .schedule(at + SimDuration::from_secs_f64(check_secs), Ev::SpecTick);
        }
    }

    /// Picks a node for a backup attempt: alive, not the straggler's own
    /// node, with a free slot of the right kind. Among the candidates the
    /// *fastest* node wins (the simulator plays the LATE-style scheduler
    /// that tracks per-node throughput) — a backup only pays off if it
    /// can outrun the straggler, so placement on another slow node would
    /// just burn a slot. Ties prefer chunk locality for maps, then the
    /// lightest load.
    fn backup_node(&self, avoid: usize, is_map: bool, chunk: Option<ChunkId>) -> Option<usize> {
        let free = |n: usize| n != avoid && self.slots.has_free(is_map, n);
        let key = |n: usize| {
            let local = chunk.is_some_and(|c| self.dfs.is_local(c, NodeId(n as u32)));
            let load = self.slots.used(is_map, n);
            (self.node_factor[n], !local, load, n)
        };
        (0..self.p.nodes)
            .filter(|&n| free(n))
            .min_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("factors are finite"))
    }

    fn launch_map_backup(&mut self, at: SimTime, m: usize) {
        let avoid = self.maps[m].node;
        let chunk = self.maps[m].chunk;
        let Some(node) = self.backup_node(avoid, true, Some(chunk)) else {
            return;
        };
        self.map_speculated[m] = true;
        self.slots.map_used[node] += 1;
        self.map_tasks_run += 1;
        self.map_seq[m] += 1;
        let attempt = self.map_seq[m];
        self.maps_bk[m] = Some(MapTask {
            chunk,
            state: MapState::Fetching,
            node,
            attempt,
            started: at,
            output: None,
            out_bytes: (self.p.chunk_bytes as f64 * self.costs.shuffle_selectivity) as u64,
        });
        self.map_counters.incr(names::SPECULATION_LAUNCHED);
        self.tracer.speculation_mark(
            0,
            SpecTaskKind::Map,
            m,
            attempt,
            node,
            at,
            SpecEvent::Launched,
        );
        // The input read starts once the task-setup latency elapses.
        let when = at + SimDuration::from_secs_f64(self.costs.speculation_launch_overhead_secs);
        self.queue.schedule(when, Ev::MapBackupStart(m, attempt));
    }

    fn launch_red_backup(&mut self, at: SimTime, r: usize) {
        let avoid = self.reds[r].node;
        let Some(node) = self.backup_node(avoid, false, None) else {
            return;
        };
        let launch = at + SimDuration::from_secs_f64(self.costs.speculation_launch_overhead_secs);
        self.red_speculated[r] = true;
        self.slots.red_used[node] += 1;
        self.reduce_tasks_run += 1;
        self.red_seq[r] += 1;
        let attempt = self.red_seq[r];
        let n_maps = self.maps.len();
        let mut task = ReduceTask {
            state: RedState::Running,
            node,
            attempt,
            // `started` doubles as the launch gate: map completions
            // before this instant do not feed the backup (RedBackupStart
            // pulls everything available once setup finishes).
            started: launch,
            fetched_from: vec![false; n_maps],
            flow_from: vec![false; n_maps],
            buffer: Vec::new(),
            driver: None,
            batches: VecDeque::new(),
            cpu_free: launch,
            io_charged: 0,
            shuffle_done_at: None,
            reduce_phase_started: None,
            finalize_done_at: None,
            input_bytes: 0,
            out: Vec::new(),
            counters: Counters::new(),
            report: None,
            write_parts_left: 0,
            published_snaps: Vec::new(),
            next_snap_seq: 0,
        };
        if self.pipelined() {
            // Backups run with snapshots disabled: only the primary
            // attempt feeds the observer's stream. On promotion the
            // winner resumes the partition's sequence numbering.
            match IncrementalDriver::new(self.app, &self.cfg_bk, r) {
                Ok(driver) => task.driver = Some(driver),
                Err(e) => {
                    self.failure = Some((at, format!("backup driver init failed: {e}")));
                    return;
                }
            }
        }
        self.reds_bk[r] = Some(task);
        self.map_counters.incr(names::SPECULATION_LAUNCHED);
        self.tracer.speculation_mark(
            0,
            SpecTaskKind::Reduce,
            r,
            attempt,
            node,
            at,
            SpecEvent::Launched,
        );
        self.queue.schedule(launch, Ev::RedBackupStart(r, attempt));
    }

    // ---------------------------------------------------------- map side

    fn start_map(&mut self, at: SimTime, m: usize, node: usize) {
        self.slots.map_used[node] += 1;
        self.map_tasks_run += 1;
        let task = &mut self.maps[m];
        task.state = MapState::Fetching;
        task.node = node;
        task.started = at;
        self.start_fetch(at, m, false);
    }

    /// Issues the input read for map `m` from the best replica of its
    /// chunk. Also used to retry after the replica serving an in-flight
    /// fetch died (the flow is cancelled; placement has been refreshed).
    fn start_fetch(&mut self, at: SimTime, m: usize, bk: bool) {
        let task = &*map_mut!(self, m, bk);
        let node = task.node;
        let chunk = task.chunk;
        let attempt = task.attempt;
        let bytes = self.dfs.chunk(chunk).bytes;
        let src = self.dfs.read_source(chunk, NodeId(node as u32));
        if src.local {
            let done = self.disks[node].submit(at, bytes);
            self.queue.schedule(done, Ev::MapFetched(m, attempt));
        } else {
            // Remote read: source disk + a network flow; the flow completes
            // last on a loaded link, the disk first on an idle one.
            self.disks[src.node.0 as usize].submit(at, bytes);
            self.net.start_flow(
                at,
                src.node,
                NodeId(node as u32),
                bytes,
                Tag::Fetch(m, attempt),
            );
        }
    }

    fn map_compute(&mut self, at: SimTime, m: usize, bk: bool) {
        let task = map_mut!(self, m, bk);
        task.state = MapState::Computing;
        let node = task.node;
        let attempt = task.attempt;
        let dur = SimDuration::from_secs_f64(
            self.costs.map_cpu_per_chunk * self.node_factor[node] * self.noise(),
        );
        self.queue.schedule(at + dur, Ev::MapComputed(m, attempt));
    }

    fn map_write(&mut self, at: SimTime, m: usize, bk: bool) {
        // The compute time is charged; now actually run the map function.
        let chunk_index = self.dfs.chunk(map_mut!(self, m, bk).chunk).index as u64;
        let records = self.input.records(chunk_index);
        let reducers = self.cfg.reducers;
        let mut parts: Vec<Vec<(A::MapKey, A::MapValue)>> =
            (0..reducers).map(|_| Vec::new()).collect();
        let mut emitted = 0u64;
        {
            let mut emit = mr_core::FnEmit(|k: A::MapKey, v: A::MapValue| {
                emitted += 1;
                let p = self.partitioner.partition(&k, reducers);
                parts[p].push((k, v));
            });
            for (k, v) in &records {
                self.app.map(k, v, &mut emit);
            }
        }
        self.map_counters.add(names::MAP_OUTPUT_RECORDS, emitted);
        // Map-side combining: pre-aggregate each partition, charge the
        // combiner CPU on the map node, and shrink the nominal shuffle
        // bytes by the real record reduction. `out_bytes` is recomputed
        // from the nominal base every attempt so re-run maps (fault
        // recovery) land on the same value, and the combined output
        // itself is deterministic (combiners drain in key order).
        let node = map_mut!(self, m, bk).node;
        let mut write_at = at;
        if let Some(budget) = self.combine_budget() {
            let mut combined_total = 0u64;
            for part in &mut parts {
                let mut comb = CombinerBuffer::new(self.app, budget as usize, self.cfg.store_index);
                let mut combined: Vec<(A::MapKey, A::MapValue)> = Vec::new();
                for (k, v) in part.drain(..) {
                    comb.push(self.app, k, v, &mut |k2, v2| combined.push((k2, v2)));
                }
                comb.drain(self.app, &mut |k2, v2| combined.push((k2, v2)));
                combined_total += combined.len() as u64;
                *part = combined;
            }
            self.map_counters.add(names::COMBINE_INPUT_RECORDS, emitted);
            self.map_counters
                .add(names::COMBINE_OUTPUT_RECORDS, combined_total);
            let dur = SimDuration::from_secs_f64(
                self.costs.combine_cpu_per_record * emitted as f64 * self.node_factor[node],
            );
            write_at = at + dur;
            let base = (self.p.chunk_bytes as f64 * self.costs.shuffle_selectivity) as u64;
            map_mut!(self, m, bk).out_bytes = if emitted > 0 {
                (base as f64 * combined_total as f64 / emitted as f64) as u64
            } else {
                base
            };
        }
        let task = map_mut!(self, m, bk);
        task.output = Some(parts);
        task.state = MapState::Writing;
        let out_bytes = task.out_bytes;
        let attempt = task.attempt;
        let done = self.disks[node].submit(write_at, out_bytes);
        self.queue.schedule(done, Ev::MapWritten(m, attempt));
    }

    fn map_done(&mut self, at: SimTime, m: usize, bk: bool) {
        // First-wins resolution: whichever attempt gets here first is the
        // map's output; the other attempt (if any) is cancelled and its
        // in-flight work torn down, exactly like a fault cancellation.
        if bk {
            let backup = self.maps_bk[m].take().expect("backup finished");
            let loser = std::mem::replace(&mut self.maps[m], backup);
            self.cancel_map_attempt(at, m, &loser);
            self.map_counters.incr(names::SPECULATION_WON);
            let node = self.maps[m].node;
            let attempt = self.maps[m].attempt;
            self.tracer.speculation_mark(
                0,
                SpecTaskKind::Map,
                m,
                attempt,
                node,
                at,
                SpecEvent::Won,
            );
        } else if let Some(loser) = self.maps_bk[m].take() {
            self.cancel_map_attempt(at, m, &loser);
        }
        let node = self.maps[m].node;
        self.maps[m].state = MapState::Done;
        self.maps_done += 1;
        self.slots.map_used[node] -= 1;
        self.tracer.span(
            0,
            SpanKind::Map,
            m,
            self.maps[m].attempt,
            node,
            self.maps[m].started,
            at,
        );
        if self.first_map_done.is_none() {
            self.first_map_done = Some(at);
        }
        self.last_map_done = self.last_map_done.max(at);
        // Feed every running reduce attempt that lacks this map's output.
        for r in 0..self.reds.len() {
            if self.reds[r].state == RedState::Running && !self.reds[r].flow_from[m] {
                self.start_shuffle_flow(at, m, r, false);
            }
            if self.reds_bk[r]
                .as_ref()
                .is_some_and(|t| t.state == RedState::Running && t.started <= at && !t.flow_from[m])
            {
                self.start_shuffle_flow(at, m, r, true);
            }
        }
        // A *re-run* map's completion can be the last thing a reducer
        // was waiting for even though it gets no new delivery (it
        // already fetched the earlier attempt's identical output), so
        // shuffle completion must be re-evaluated for everyone —
        // `check_shuffle_complete` otherwise only runs on delivery, and
        // `maps_done` dipped below full while the map re-ran.
        for r in 0..self.reds.len() {
            if self.reds[r].state == RedState::Running {
                self.check_shuffle_complete(at, r, false);
            }
            if self.reds_bk[r]
                .as_ref()
                .is_some_and(|t| t.state == RedState::Running)
            {
                self.check_shuffle_complete(at, r, true);
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }

    /// Tears down a losing map attempt after first-wins resolution: its
    /// in-flight input fetch is cancelled off the network (the same way
    /// `fail_node` kills flows) and its slot frees once the cancel
    /// overhead elapses. Queued events addressed to the dead attempt
    /// fail the stamp guards and drop.
    fn cancel_map_attempt(&mut self, at: SimTime, m: usize, loser: &MapTask<A>) {
        let a = loser.attempt;
        self.net.cancel_where(
            at,
            |t| matches!(*t, Tag::Fetch(mm, aa) if mm == m && aa == a),
        );
        self.map_counters.incr(names::SPECULATION_CANCELLED);
        self.tracer.speculation_mark(
            0,
            SpecTaskKind::Map,
            m,
            loser.attempt,
            loser.node,
            at,
            SpecEvent::Cancelled,
        );
        let when = at + SimDuration::from_secs_f64(self.costs.speculation_cancel_overhead_secs);
        self.queue
            .schedule(when, Ev::SpecSlotFree(loser.node, true));
    }

    // -------------------------------------------------------- reduce side

    fn start_reduce(&mut self, at: SimTime, r: usize, node: usize) {
        self.slots.red_used[node] += 1;
        self.reduce_tasks_run += 1;
        let n_maps = self.maps.len();
        let task = &mut self.reds[r];
        task.state = RedState::Running;
        task.node = node;
        task.started = at;
        task.fetched_from = vec![false; n_maps];
        task.flow_from = vec![false; n_maps];
        task.cpu_free = at;
        if self.pipelined() {
            match IncrementalDriver::new(self.app, &self.cfg, r) {
                Ok(mut driver) => {
                    // Restarted attempts resume snapshot numbering above
                    // their predecessor: the published stream never
                    // regresses through fault recovery.
                    driver.set_snapshot_seq_base(self.reds[r].next_snap_seq);
                    self.reds[r].driver = Some(driver);
                }
                Err(e) => {
                    self.failure = Some((at, format!("driver init failed: {e}")));
                    return;
                }
            }
        }
        // Pull from every already-finished map.
        for m in 0..n_maps {
            if self.maps[m].state == MapState::Done {
                self.start_shuffle_flow(at, m, r, false);
            }
        }
    }

    fn start_shuffle_flow(&mut self, at: SimTime, m: usize, r: usize, bk: bool) {
        let total_records: usize = self.maps[m]
            .output
            .as_ref()
            .expect("done map has output")
            .iter()
            .map(Vec::len)
            .sum();
        let part_records = self.maps[m].output.as_ref().unwrap()[r].len();
        // Nominal bytes proportional to the partition's record share;
        // uniform share when the map produced nothing (pure cost model).
        let bytes = if total_records > 0 {
            (self.maps[m].out_bytes as f64 * part_records as f64 / total_records as f64) as u64
        } else {
            self.maps[m].out_bytes / self.cfg.reducers as u64
        };
        let task = red_mut!(self, r, bk);
        task.flow_from[m] = true;
        let dst = NodeId(task.node as u32);
        let red_attempt = task.attempt;
        self.shuffle_bytes += bytes;
        let src = NodeId(self.maps[m].node as u32);
        self.net.start_flow(
            at,
            src,
            dst,
            bytes,
            Tag::Shuffle {
                map: m,
                map_attempt: self.maps[m].attempt,
                red: r,
                red_attempt,
            },
        );
    }

    fn handle_flow(&mut self, at: SimTime, tag: Tag) {
        match tag {
            Tag::Fetch(m, a) => {
                if let Some(bk) = self.map_slot(m, a) {
                    if self.map_state(m, bk) == MapState::Fetching {
                        self.map_compute(at, m, bk);
                    }
                }
            }
            Tag::Shuffle {
                map,
                map_attempt,
                red,
                red_attempt,
            } => {
                // Shuffle sources are always Done maps, which live in the
                // primary slot (backup wins are promoted there first);
                // the destination may be either reduce attempt.
                if self.maps[map].attempt != map_attempt {
                    return;
                }
                let Some(bk) = self.red_slot(red, red_attempt) else {
                    return;
                };
                if self.red_state(red, bk) != RedState::Running {
                    return;
                }
                self.shuffle_delivery(at, map, red, bk);
            }
            Tag::Output(r, a, replica) => {
                if self.reds[r].attempt == a && self.reds[r].state == RedState::Writing {
                    // Replica received: write it to the replica's disk.
                    let bytes =
                        (self.reds[r].input_bytes as f64 * self.costs.output_selectivity) as u64;
                    let done = self.disks[replica.0 as usize].submit(at, bytes);
                    self.queue
                        .schedule(done, Ev::OutputPartDone(r, self.reds[r].attempt));
                }
            }
        }
    }

    fn shuffle_delivery(&mut self, at: SimTime, m: usize, r: usize, bk: bool) {
        let batch = self.maps[m].output.as_ref().expect("done map")[r].clone();
        let total_records: usize = self.maps[m]
            .output
            .as_ref()
            .unwrap()
            .iter()
            .map(Vec::len)
            .sum();
        let bytes = if total_records > 0 {
            (self.maps[m].out_bytes as f64 * batch.len() as f64 / total_records as f64) as u64
        } else {
            self.maps[m].out_bytes / self.cfg.reducers as u64
        };
        let pipelined = self.pipelined();
        let absorb_cost = self.absorb_cost_per_record();
        let task = red_mut!(self, r, bk);
        task.fetched_from[m] = true;
        task.input_bytes += bytes;

        if pipelined {
            // Charge the absorb CPU as one batch on the reducer's core.
            let cost = absorb_cost * batch.len() as f64;
            let dur = SimDuration::from_secs_f64(cost * self.node_factor[task.node]);
            let start = task.cpu_free.max(at);
            task.cpu_free = start + dur;
            task.batches.push_back(batch);
            let when = task.cpu_free;
            let attempt = task.attempt;
            self.queue.schedule(when, Ev::Batch(r, attempt));
        } else {
            task.buffer.extend(batch);
        }
        self.check_shuffle_complete(at, r, bk);
    }

    fn check_shuffle_complete(&mut self, at: SimTime, r: usize, bk: bool) {
        let task = &*red_mut!(self, r, bk);
        let all = task.fetched_from.iter().all(|&f| f)
            && task.fetched_from.len() == self.maps.len()
            && self.maps_done == self.maps.len();
        if !all || task.shuffle_done_at.is_some() {
            return;
        }
        red_mut!(self, r, bk).shuffle_done_at = Some(at);
        self.shuffle_done = self.shuffle_done.max(at);
        if self.pipelined() {
            // Finalize once the CPU drains the queued batches.
            let task = &*red_mut!(self, r, bk);
            let when = task.cpu_free.max(at);
            let attempt = task.attempt;
            self.queue.schedule(when, Ev::Batch(r, attempt));
        } else {
            // Barrier reached: sort, then reduce. The Shuffle span is
            // recorded for the primary attempt only (backups would
            // double-report partition r's fetch window).
            if !bk {
                self.tracer.span(
                    0,
                    SpanKind::Shuffle,
                    r,
                    self.reds[r].attempt,
                    self.reds[r].node,
                    self.reds[r].started,
                    at,
                );
            }
            let task = &*red_mut!(self, r, bk);
            let n = task.buffer.len() as f64;
            let attempt = task.attempt;
            let sort =
                self.costs.sort_cpu_coeff * n * n.max(2.0).log2() * self.node_factor[task.node];
            self.queue.schedule(
                at + SimDuration::from_secs_f64(sort),
                Ev::SortDone(r, attempt),
            );
        }
    }

    /// Pipelined: one delivered batch's absorb work completes.
    fn reduce_batch(&mut self, at: SimTime, r: usize, bk: bool) {
        if let Some(batch) = red_mut!(self, r, bk).batches.pop_front() {
            let task = red_mut!(self, r, bk);
            let node = task.node;
            let driver = task.driver.as_mut().expect("pipelined reducer");
            // Stamp virtual time so record-driven snapshots published
            // mid-batch carry the sim clock.
            driver.set_now_secs(at.as_secs_f64());
            for (k, v) in batch {
                if let Err(e) = driver.push(self.app, k, v, &mut task.out) {
                    self.fail_job(at, r, e);
                    return;
                }
            }
            // Sample the heap and charge new store I/O to the local disk
            // (heap samples track the observer-visible primary only).
            let bytes = driver.modelled_bytes();
            let io = driver.io_bytes();
            if !bk {
                let attempt = self.reds[r].attempt;
                self.tracer.heap_sample(0, r, attempt, node, at, bytes);
            }
            let task = red_mut!(self, r, bk);
            let delta = io - task.io_charged;
            if delta > 0 {
                task.io_charged = io;
                self.disks[node].submit(at, delta);
            }
            // Record-driven snapshots published during this batch:
            // mark, charge, collect (primary only — backup drivers run
            // with snapshots disabled).
            if !bk {
                self.collect_snapshots(at, r);
            }
        }
        // All shuffled + all absorbed => finalize.
        let task = &*red_mut!(self, r, bk);
        if task.shuffle_done_at.is_some() && task.batches.is_empty() && task.cpu_free <= at {
            self.start_finalize(at, r, bk);
        }
    }

    fn fail_job(&mut self, at: SimTime, r: usize, e: MrError) {
        let reason = match e {
            MrError::OutOfMemory {
                used_bytes,
                cap_bytes,
                ..
            } => {
                self.tracer.heap_sample(
                    0,
                    r,
                    self.reds[r].attempt,
                    self.reds[r].node,
                    at,
                    used_bytes,
                );
                format!(
                    "reducer {r} exceeded heap: {} MB > cap {} MB",
                    used_bytes >> 20,
                    cap_bytes >> 20
                )
            }
            other => format!("reducer {r} failed: {other}"),
        };
        self.failure = Some((at, reason));
    }

    fn start_finalize(&mut self, at: SimTime, r: usize, bk: bool) {
        let task = red_mut!(self, r, bk);
        task.state = RedState::Finalizing;
        let entries = task.driver.as_ref().map_or(0, |d| d.entries());
        let attempt = task.attempt;
        let dur = SimDuration::from_secs_f64(
            self.costs.finalize_cpu_per_entry * entries as f64 * self.node_factor[task.node],
        );
        self.queue.schedule(at + dur, Ev::FinalizeDone(r, attempt));
    }

    /// First-wins resolution for reduce task `r`, invoked the moment an
    /// attempt finishes its reduce work (before any output write, so the
    /// DFS never sees duplicate partitions). A winning backup is promoted
    /// into the primary slot and inherits the partition's published
    /// snapshot stream — sequence numbers stay monotone, exactly as they
    /// do across fault restarts. The losing attempt is cancelled and its
    /// in-flight flows torn down like `fail_node` cancellations.
    fn resolve_red_winner(&mut self, at: SimTime, r: usize, bk: bool) {
        if bk {
            let mut backup = self.reds_bk[r].take().expect("backup finished");
            let loser = &mut self.reds[r];
            backup.published_snaps = std::mem::take(&mut loser.published_snaps);
            let mut seq = loser.next_snap_seq.max(backup.next_snap_seq);
            if let Some(d) = &loser.driver {
                seq = seq.max(d.snapshot_seq());
            }
            backup.next_snap_seq = seq;
            if let Some(d) = backup.driver.as_mut() {
                d.set_snapshot_seq_base(seq);
            }
            let loser = std::mem::replace(&mut self.reds[r], backup);
            self.cancel_red_attempt(at, r, &loser);
            self.map_counters.incr(names::SPECULATION_WON);
            let node = self.reds[r].node;
            let attempt = self.reds[r].attempt;
            self.tracer.speculation_mark(
                0,
                SpecTaskKind::Reduce,
                r,
                attempt,
                node,
                at,
                SpecEvent::Won,
            );
        } else if let Some(loser) = self.reds_bk[r].take() {
            self.cancel_red_attempt(at, r, &loser);
        }
    }

    /// Tears down a losing reduce attempt: cancel its in-flight shuffle
    /// fetches, free its slot after the cancel overhead.
    fn cancel_red_attempt(&mut self, at: SimTime, r: usize, loser: &ReduceTask<A>) {
        let a = loser.attempt;
        self.net.cancel_where(at, |t| {
            matches!(*t, Tag::Shuffle { red, red_attempt, .. } if red == r && red_attempt == a)
                || matches!(*t, Tag::Output(rr, aa, _) if rr == r && aa == a)
        });
        self.map_counters.incr(names::SPECULATION_CANCELLED);
        self.tracer.speculation_mark(
            0,
            SpecTaskKind::Reduce,
            r,
            loser.attempt,
            loser.node,
            at,
            SpecEvent::Cancelled,
        );
        let when = at + SimDuration::from_secs_f64(self.costs.speculation_cancel_overhead_secs);
        self.queue
            .schedule(when, Ev::SpecSlotFree(loser.node, false));
    }

    fn finalize_done(&mut self, at: SimTime, r: usize, bk: bool) {
        // Resolve the race before touching output: from here on, `r`'s
        // primary slot holds the winning attempt.
        self.resolve_red_winner(at, r, bk);
        // Periodic policies publish one last snapshot at end-of-input,
        // so the final estimate an observer holds equals the answer.
        if self.cfg.snapshots.is_periodic() {
            if let Some(driver) = self.reds[r].driver.as_mut() {
                driver.set_now_secs(at.as_secs_f64());
                if let Err(e) = driver.snapshot_now(self.app) {
                    self.fail_job(at, r, e);
                    return;
                }
            }
            self.collect_snapshots(at, r);
        }
        // Run the real merge+finalize.
        let driver = self.reds[r].driver.take().expect("pipelined reducer");
        let mut out = std::mem::take(&mut self.reds[r].out);
        let mut counters = std::mem::take(&mut self.reds[r].counters);
        match driver.finish(self.app, &mut counters, &mut out) {
            Ok(report) => {
                // Spill-merge reads its runs back during the merge.
                let merge_read = report.store.spill_bytes;
                if merge_read > 0 {
                    self.disks[self.reds[r].node].submit(at, merge_read);
                }
                counters.add(names::REDUCE_OUTPUT_RECORDS, out.len() as u64);
                self.reds[r].report = Some(report);
                self.reds[r].out = out;
                self.reds[r].counters = counters;
            }
            Err(e) => {
                self.fail_job(at, r, e);
                return;
            }
        }
        self.reds[r].finalize_done_at = Some(at);
        self.tracer.span(
            0,
            SpanKind::ShuffleReduce,
            r,
            self.reds[r].attempt,
            self.reds[r].node,
            self.reds[r].started,
            at,
        );
        self.start_output_write(at, r);
    }

    /// Barrier: sort finished; charge the grouped reduce pass.
    fn grouped_reduce_start(&mut self, at: SimTime, r: usize, bk: bool) {
        let task = &*red_mut!(self, r, bk);
        let n = task.buffer.len() as f64;
        let attempt = task.attempt;
        let dur = SimDuration::from_secs_f64(
            self.costs.reduce_cpu_per_record * n * self.node_factor[task.node],
        );
        self.queue.schedule(at + dur, Ev::GroupedDone(r, attempt));
    }

    fn grouped_reduce_done(&mut self, at: SimTime, r: usize, bk: bool) {
        // First-wins resolution before the real reduce runs and the
        // output write starts.
        self.resolve_red_winner(at, r, bk);
        // Run the real sort+group+reduce.
        let records = std::mem::take(&mut self.reds[r].buffer);
        let absorbed = records.len() as u64;
        let mut counters = std::mem::take(&mut self.reds[r].counters);
        match reduce_partition_barrier(self.app, records, &mut counters) {
            Ok(out) => {
                self.reds[r].out = out;
                self.reds[r].counters = counters;
            }
            Err(e) => {
                self.fail_job(at, r, e);
                return;
            }
        }
        // The barrier engine's one useful snapshot: its finished output,
        // publishable only now — after the barrier, the sort and the
        // full grouped pass.
        if self.cfg.snapshots.is_enabled() {
            let task = &mut self.reds[r];
            let seq = task.next_snap_seq;
            let (attempt, node) = (task.attempt, task.node);
            task.next_snap_seq += 1;
            task.counters.incr(mr_core::counters::names::SNAPSHOT_COUNT);
            task.counters.add(
                mr_core::counters::names::SNAPSHOT_RECORDS,
                task.out.len() as u64,
            );
            let records = task.out.len() as u64;
            task.published_snaps.push(Snapshot {
                reducer: r,
                seq,
                records_absorbed: absorbed,
                live_entries: 0,
                at_secs: at.as_secs_f64(),
                estimate: task.out.clone(),
            });
            self.tracer
                .snapshot_mark(0, r, attempt, node, at, seq, records, 0);
        }
        let start = self.reds[r].shuffle_done_at.expect("sorted after shuffle");
        self.tracer.span(
            0,
            SpanKind::SortReduce,
            r,
            self.reds[r].attempt,
            self.reds[r].node,
            start,
            at,
        );
        self.start_output_write(at, r);
    }

    fn start_output_write(&mut self, at: SimTime, r: usize) {
        let task = &mut self.reds[r];
        task.state = RedState::Writing;
        task.reduce_phase_started = Some(at);
        let bytes = (task.input_bytes as f64 * self.costs.output_selectivity) as u64;
        let node = task.node;
        let attempt = task.attempt;
        // Replication pipeline: local disk + (replication-1) remote copies.
        let targets = self.dfs.write_targets(NodeId(node as u32));
        task.write_parts_left = targets.len();
        let local_done = self.disks[node].submit(at, bytes);
        self.queue
            .schedule(local_done, Ev::OutputPartDone(r, attempt));
        for &replica in targets.iter().skip(1) {
            self.net.start_flow(
                at,
                NodeId(node as u32),
                replica,
                bytes,
                Tag::Output(r, attempt, replica),
            );
        }
    }

    fn output_part_done(&mut self, at: SimTime, r: usize) {
        self.reds[r].write_parts_left -= 1;
        if self.reds[r].write_parts_left > 0 {
            return;
        }
        let task = &mut self.reds[r];
        task.state = RedState::Done;
        self.reds_done += 1;
        self.slots.red_used[task.node] -= 1;
        let wrote_from = task.reduce_phase_started.expect("write started");
        let (attempt, node) = (task.attempt, task.node);
        self.tracer
            .span(0, SpanKind::Output, r, attempt, node, wrote_from, at);
        self.queue.schedule(at, Ev::Schedule);
    }

    // ------------------------------------------------------------- faults

    fn fail_node(&mut self, at: SimTime, n: usize) {
        if !self.slots.alive[n] {
            return;
        }
        self.slots.fail_node(n);
        // With every node dead there is nothing to recover onto — the
        // job is gone. Report that loudly rather than letting the event
        // queue drain into a bogus "completed with empty output".
        if !self.slots.any_alive() {
            self.failure = Some((at, "every node has failed; job lost".to_string()));
            return;
        }
        let cancelled = self.net.fail_node(at, NodeId(n as u32));
        // Chunks whose last replica died are re-ingested from the job's
        // input source onto surviving nodes (the workloads are
        // generated, so the source always exists); any map that still
        // needs such a chunk re-fetches from the restored replicas.
        for cid in self.dfs.fail_node(NodeId(n as u32)) {
            self.dfs.restore_chunk(cid);
        }
        // Reducers on the dead node restart from scratch elsewhere —
        // unless a live backup attempt survives, in which case it is
        // promoted to primary and simply keeps running. Backups that died
        // with the node are dropped (a task is speculated at most once,
        // so no replacement backup is launched). Restart/promote *before*
        // deciding map re-runs: the surviving attempt's `fetched_from` is
        // what tells the scan below which map outputs are still needed —
        // including output stored on a node that died in an *earlier*
        // failure.
        for r in 0..self.reds.len() {
            if self.reds_bk[r].as_ref().is_some_and(|t| t.node == n) {
                self.reds_bk[r] = None;
            }
            if self.reds[r].node == n
                && self.reds[r].state != RedState::Done
                && self.reds[r].state != RedState::Pending
            {
                if let Some(mut backup) = self.reds_bk[r].take() {
                    // Promote the surviving backup: it inherits the
                    // partition's snapshot stream like any restarted
                    // attempt would, and continues from wherever its own
                    // shuffle progress stands.
                    let dead = &mut self.reds[r];
                    backup.published_snaps = std::mem::take(&mut dead.published_snaps);
                    let mut seq = dead.next_snap_seq.max(backup.next_snap_seq);
                    if let Some(driver) = &dead.driver {
                        seq = seq.max(driver.snapshot_seq());
                    }
                    backup.next_snap_seq = seq;
                    if let Some(driver) = backup.driver.as_mut() {
                        driver.set_snapshot_seq_base(seq);
                    }
                    self.reds[r] = backup;
                } else {
                    let seq = {
                        self.red_seq[r] += 1;
                        self.red_seq[r]
                    };
                    let task = &mut self.reds[r];
                    task.state = RedState::Pending;
                    task.attempt = seq;
                    task.node = usize::MAX;
                    task.fetched_from.clear();
                    task.flow_from.clear();
                    task.buffer.clear();
                    // Snapshots the dying attempt published stay published
                    // (`published_snaps` is never cleared); carry its next
                    // sequence number so the restart continues above it.
                    if let Some(driver) = &task.driver {
                        task.next_snap_seq = task.next_snap_seq.max(driver.snapshot_seq());
                    }
                    task.driver = None;
                    task.batches.clear();
                    task.shuffle_done_at = None;
                    task.reduce_phase_started = None;
                    task.out.clear();
                    task.counters = Counters::new();
                    task.io_charged = 0;
                    task.input_bytes = 0;
                }
            }
        }
        // Maps: running ones on the dead node restart (or hand over to a
        // surviving backup attempt); completed ones whose locally stored
        // output now sits on *any* dead node must re-run if some reducer
        // (including one just restarted above) still needs that output.
        for m in 0..self.maps.len() {
            if self.maps_bk[m].as_ref().is_some_and(|t| t.node == n) {
                self.maps_bk[m] = None;
            }
            let running_here = matches!(
                self.maps[m].state,
                MapState::Fetching | MapState::Computing | MapState::Writing
            ) && self.maps[m].node == n;
            if running_here {
                if let Some(backup) = self.maps_bk[m].take() {
                    // The backup races on alone as the primary.
                    self.maps[m] = backup;
                    continue;
                }
            }
            let needs_rerun = running_here
                || (self.maps[m].state == MapState::Done
                    && !self.slots.alive[self.maps[m].node]
                    && self
                        .reds
                        .iter()
                        .chain(self.reds_bk.iter().flatten())
                        .any(|r| {
                            r.state != RedState::Done
                                && (r.fetched_from.len() <= m || !r.fetched_from[m])
                        }));
            if needs_rerun {
                if self.maps[m].state == MapState::Done {
                    self.maps_done -= 1;
                }
                let seq = {
                    self.map_seq[m] += 1;
                    self.map_seq[m]
                };
                let task = &mut self.maps[m];
                task.state = MapState::Pending;
                task.attempt = seq;
                task.output = None;
                task.node = usize::MAX;
                // Reducers with an in-flight (now cancelled) flow from this
                // map must be allowed to re-request it.
                for r in &mut self.reds {
                    if !r.flow_from.is_empty() && !r.fetched_from[m] {
                        r.flow_from[m] = false;
                    }
                }
                for r in self.reds_bk.iter_mut().flatten() {
                    if !r.flow_from.is_empty() && !r.fetched_from[m] {
                        r.flow_from[m] = false;
                    }
                }
            }
        }
        // Cancelled flows whose *surviving* endpoint is still mid-task
        // must be retried, or that task waits forever on a completion
        // that will never arrive. Flows whose surviving task was itself
        // restarted above fail the attempt/state guards and are dropped.
        for tag in cancelled {
            match tag {
                Tag::Fetch(m, a) => {
                    // The replica serving this input read died; re-read
                    // from a surviving replica (either attempt may have
                    // been the reader).
                    if let Some(bk) = self.map_slot(m, a) {
                        if self.map_state(m, bk) == MapState::Fetching {
                            self.start_fetch(at, m, bk);
                        }
                    }
                }
                Tag::Shuffle { .. } => {
                    // Handled by the map-rerun loop above: the dead
                    // source's map output is regenerated and the reducer
                    // re-requests it (`flow_from` was reset).
                }
                Tag::Output(r, a, _replica) => {
                    // One target of the output-replication pipeline died
                    // mid-write. The block lives on the remaining
                    // replicas; like HDFS, leave it under-replicated
                    // rather than stall the job on a dead datanode.
                    if self.reds[r].attempt == a && self.reds[r].state == RedState::Writing {
                        self.output_part_done(at, r);
                    }
                }
            }
        }
        self.queue.schedule(at, Ev::Schedule);
    }
}
