//! Per-application cost model.
//!
//! Record volumes are scaled down in simulation (a 64 MB chunk carries a
//! few hundred representative records, not tens of millions), so CPU
//! costs are expressed **per simulated record** and calibrated per app by
//! the benchmark harness so stage durations land near the paper's
//! observations. Byte volumes (shuffle, output) are *nominal* — derived
//! from the real chunk size via selectivities — so disk and network time
//! is realistic regardless of record scaling.

/// Cost coefficients for one application.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU seconds for the map function over one full chunk (on a
    /// speed-1.0 node).
    pub map_cpu_per_chunk: f64,
    /// Map output bytes per input byte (shuffle volume ratio).
    pub shuffle_selectivity: f64,
    /// CPU seconds per simulated record on the reduce side (the grouped
    /// pass, or the barrier-less absorb).
    pub reduce_cpu_per_record: f64,
    /// CPU seconds per raw map-output record fed through the map-side
    /// combiner (charged on the map node, before the output write).
    /// Only applies when combining is active.
    pub combine_cpu_per_record: f64,
    /// Extra CPU per record the barrier-less version pays for ordered-map
    /// insertion (the Sort-class penalty, §6.1.1). Zero when absorbing is
    /// no costlier than grouped reduction.
    pub absorb_extra_per_record: f64,
    /// CPU per record under the KV-store policy's read-modify-update
    /// cycle; stands in for the "30,000 inserts per second" BDB limit
    /// (§6.3). Replaces `reduce_cpu_per_record` when the policy is in use.
    pub kv_cpu_per_record: f64,
    /// Barrier sort cost: seconds per record × log₂(records).
    pub sort_cpu_coeff: f64,
    /// CPU per live store entry during barrier-less finalize.
    pub finalize_cpu_per_entry: f64,
    /// CPU seconds per estimated output record emitted by a partial-
    /// result snapshot (the frozen-view walk plus `snapshot_emit`).
    /// Charged on the reducer's core at each snapshot, so aggressive
    /// policies visibly delay absorption. Only applies when a
    /// `SnapshotPolicy` is active.
    pub snapshot_cpu_per_record: f64,
    /// Final output bytes per reducer-input byte (DFS write volume).
    pub output_selectivity: f64,
    /// CPU seconds per handed-off record on a *downstream* chained map
    /// task (the `adapt_input` conversion plus the map function),
    /// charged on the downstream node as handoff batches arrive. Only
    /// applies to job chains.
    pub chain_map_cpu_per_record: f64,
    /// Nominal wire bytes per real byte of handed-off records (records
    /// are scale-reduced in simulation; this scales the chain handoff
    /// volume back up, like `shuffle_selectivity` does for map output).
    /// Charged as network flows on the cross-job edge in streaming mode,
    /// and as the materialized-read volume in barrier mode.
    pub chain_handoff_byte_scale: f64,
    /// Seconds between a straggler being detected and its speculative
    /// backup attempt starting work (task setup: JVM launch, split
    /// re-open). Backups are not free — this keeps speculation honest
    /// about its own scheduling latency.
    pub speculation_launch_overhead_secs: f64,
    /// Seconds a losing attempt's slot stays occupied after first-wins
    /// resolution cancels it (teardown before the slot frees).
    pub speculation_cancel_overhead_secs: f64,
}

impl CostModel {
    /// A neutral baseline; benches override per figure.
    ///
    /// Calibrated so the reduce stage carries realistic weight relative
    /// to the map stage (in the paper's WordCount the post-barrier tail
    /// is ~30% of the job): with a few hundred simulated records per
    /// reducer, the grouped pass runs tens of simulated seconds.
    pub fn default_for_tests() -> Self {
        CostModel {
            map_cpu_per_chunk: 30.0,
            shuffle_selectivity: 0.5,
            reduce_cpu_per_record: 2e-2,
            combine_cpu_per_record: 5e-4,
            absorb_extra_per_record: 0.0,
            kv_cpu_per_record: 1e-1,
            sort_cpu_coeff: 8e-4,
            finalize_cpu_per_entry: 1e-4,
            snapshot_cpu_per_record: 1e-4,
            output_selectivity: 0.2,
            chain_map_cpu_per_record: 5e-3,
            chain_handoff_byte_scale: 4096.0,
            speculation_launch_overhead_secs: 1.0,
            speculation_cancel_overhead_secs: 0.5,
        }
    }

    /// Validates that every coefficient is non-negative and the ones that
    /// must be positive are.
    pub fn validate(&self) {
        assert!(self.map_cpu_per_chunk >= 0.0);
        assert!(self.shuffle_selectivity >= 0.0);
        assert!(self.reduce_cpu_per_record >= 0.0);
        assert!(self.combine_cpu_per_record >= 0.0);
        assert!(self.absorb_extra_per_record >= 0.0);
        assert!(self.kv_cpu_per_record >= 0.0);
        assert!(self.sort_cpu_coeff >= 0.0);
        assert!(self.finalize_cpu_per_entry >= 0.0);
        assert!(self.snapshot_cpu_per_record >= 0.0);
        assert!(self.output_selectivity >= 0.0);
        assert!(self.chain_map_cpu_per_record >= 0.0);
        assert!(self.chain_handoff_byte_scale >= 0.0);
        assert!(self.speculation_launch_overhead_secs >= 0.0);
        assert!(self.speculation_cancel_overhead_secs >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        CostModel::default_for_tests().validate();
    }
}
