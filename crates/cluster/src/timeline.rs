//! Task-span and heap-sample views — the raw material for Figures 4
//! and 5.
//!
//! Since the trace redesign this module no longer *records* anything:
//! the simulators emit [`mr_trace::TraceEvent`]s, and a [`Timeline`] is
//! a compatibility view rebuilt from the run's [`TraceLog`] via
//! [`Timeline::from_log`]. The span/mark structs and every query method
//! keep their historical names and values.

use mr_sim::SimTime;
use mr_trace::{TaskKind, TraceEvent, TraceInstant, TraceLog};

pub use mr_trace::{SpanKind, SpecEvent, SpecTaskKind};

/// One task's activity interval.
#[derive(Debug, Clone, Copy)]
pub struct TaskSpan {
    /// Span category.
    pub kind: SpanKind,
    /// Task index within its category.
    pub task: usize,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
}

/// A point sample of one reducer's partial-result heap.
#[derive(Debug, Clone, Copy)]
pub struct HeapSample {
    /// Sample instant.
    pub at: SimTime,
    /// Reduce partition.
    pub reducer: usize,
    /// Modelled heap bytes at `at`.
    pub bytes: u64,
}

/// One partial-result snapshot publication, as the simulator saw it —
/// the timeline-level record of early-answer estimation (the estimate
/// contents themselves travel in `JobOutput::snapshots`).
#[derive(Debug, Clone, Copy)]
pub struct SnapshotMark {
    /// Publication instant (virtual time).
    pub at: SimTime,
    /// Reduce partition that published.
    pub reducer: usize,
    /// Per-reducer sequence number (monotone across task re-runs).
    pub seq: u64,
    /// Estimated output records in the snapshot.
    pub records: u64,
    /// Live partial results covered.
    pub entries: usize,
}

/// One cross-job handoff edge: a slice of an upstream reduce task's
/// output leaving for a downstream chained map task. Streaming chains
/// record one mark per shipped increment; barrier chains record one per
/// materialized partition read.
#[derive(Debug, Clone, Copy)]
pub struct HandoffMark {
    /// Departure instant (virtual time).
    pub at: SimTime,
    /// Upstream reduce partition.
    pub upstream_reducer: usize,
    /// Downstream chained map task.
    pub downstream_map: usize,
    /// Records in this increment.
    pub records: u64,
    /// Nominal wire bytes of this increment.
    pub bytes: u64,
}

/// One speculative-execution event: a backup attempt being launched,
/// winning the race against the original, or an attempt being cancelled
/// after the other one won.
#[derive(Debug, Clone, Copy)]
pub struct SpeculationMark {
    /// Event instant (virtual time).
    pub at: SimTime,
    /// Map or reduce task.
    pub kind: SpecTaskKind,
    /// Task index within its kind.
    pub task: usize,
    /// What happened.
    pub event: SpecEvent,
    /// The node the affected attempt runs (or ran) on.
    pub node: usize,
}

/// Everything recorded during a simulated run.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Completed task spans.
    pub spans: Vec<TaskSpan>,
    /// Reducer heap samples in time order.
    pub heap: Vec<HeapSample>,
    /// Snapshot publications in time order.
    pub snapshots: Vec<SnapshotMark>,
    /// Cross-job handoff edges in time order (job chains only).
    pub handoffs: Vec<HandoffMark>,
    /// Speculation events in time order (empty unless a
    /// `SpeculationPolicy` is active).
    pub speculation: Vec<SpeculationMark>,
}

/// A trace instant as a [`SimTime`]. Simulator logs only carry virtual
/// instants; a wall instant (impossible from the sim) maps through the
/// same rounding as `SimTime::from_secs_f64`.
fn sim_time(at: &TraceInstant) -> SimTime {
    match at {
        TraceInstant::Virtual { micros } => SimTime::from_micros(*micros),
        TraceInstant::Wall { secs } => SimTime::from_secs_f64(*secs),
    }
}

impl Timeline {
    /// Rebuilds the legacy timeline view for one job from a trace log.
    ///
    /// Events appear in the log in the order the simulator emitted them,
    /// so every `Vec` here comes back in the historical recording order.
    /// Task indices are the trace scope's `index`; speculation kinds are
    /// read off the scope's task kind. Counter deltas and stage marks are
    /// not timeline material and are skipped.
    pub fn from_log(log: &TraceLog, job: u32) -> Timeline {
        let mut t = Timeline::default();
        for entry in log.iter().filter(|e| e.scope.job == job) {
            let task = entry.scope.index as usize;
            match &entry.event {
                TraceEvent::Span { kind, start, end } => {
                    t.span(*kind, task, sim_time(start), sim_time(end));
                }
                TraceEvent::HeapSample { at, bytes } => {
                    t.heap_sample(sim_time(at), task, *bytes);
                }
                TraceEvent::SnapshotMark {
                    at,
                    seq,
                    records,
                    entries,
                } => {
                    t.snapshot_mark(sim_time(at), task, *seq, *records, *entries as usize);
                }
                TraceEvent::HandoffMark {
                    at,
                    downstream_map,
                    records,
                    bytes,
                } => {
                    t.handoff_mark(
                        sim_time(at),
                        task,
                        *downstream_map as usize,
                        *records,
                        *bytes,
                    );
                }
                TraceEvent::SpeculationMark { at, event } => {
                    let kind = match entry.scope.kind {
                        TaskKind::Map => SpecTaskKind::Map,
                        _ => SpecTaskKind::Reduce,
                    };
                    t.speculation_mark(sim_time(at), kind, task, *event, entry.scope.node as usize);
                }
                TraceEvent::Counter { .. }
                | TraceEvent::DeadlineMark { .. }
                | TraceEvent::CacheMark { .. }
                | TraceEvent::StageDone { .. } => {}
            }
        }
        t
    }

    /// Records a finished span.
    pub fn span(&mut self, kind: SpanKind, task: usize, start: SimTime, end: SimTime) {
        self.spans.push(TaskSpan {
            kind,
            task,
            start,
            end,
        });
    }

    /// Records a heap sample.
    pub fn heap_sample(&mut self, at: SimTime, reducer: usize, bytes: u64) {
        self.heap.push(HeapSample { at, reducer, bytes });
    }

    /// Records a snapshot publication.
    pub fn snapshot_mark(
        &mut self,
        at: SimTime,
        reducer: usize,
        seq: u64,
        records: u64,
        entries: usize,
    ) {
        self.snapshots.push(SnapshotMark {
            at,
            reducer,
            seq,
            records,
            entries,
        });
    }

    /// Records a cross-job handoff edge.
    pub fn handoff_mark(
        &mut self,
        at: SimTime,
        upstream_reducer: usize,
        downstream_map: usize,
        records: u64,
        bytes: u64,
    ) {
        self.handoffs.push(HandoffMark {
            at,
            upstream_reducer,
            downstream_map,
            records,
            bytes,
        });
    }

    /// Records a speculation event.
    pub fn speculation_mark(
        &mut self,
        at: SimTime,
        kind: SpecTaskKind,
        task: usize,
        event: SpecEvent,
        node: usize,
    ) {
        self.speculation.push(SpeculationMark {
            at,
            kind,
            task,
            event,
            node,
        });
    }

    /// Number of speculation events of the given flavour.
    pub fn speculation_count(&self, event: SpecEvent) -> usize {
        self.speculation.iter().filter(|m| m.event == event).count()
    }

    /// Handoff departures of one upstream reducer: `(seconds, records)`.
    pub fn handoff_series(&self, upstream_reducer: usize) -> Vec<(f64, u64)> {
        self.handoffs
            .iter()
            .filter(|h| h.upstream_reducer == upstream_reducer)
            .map(|h| (h.at.as_secs_f64(), h.records))
            .collect()
    }

    /// Snapshot publications of one reducer: `(seconds, estimate records)`.
    pub fn snapshot_series(&self, reducer: usize) -> Vec<(f64, u64)> {
        self.snapshots
            .iter()
            .filter(|s| s.reducer == reducer)
            .map(|s| (s.at.as_secs_f64(), s.records))
            .collect()
    }

    /// Number of spans of `kind` active at time `t` — one point of a
    /// Figure 4 progress curve.
    pub fn active_at(&self, kind: SpanKind, t: SimTime) -> usize {
        self.spans
            .iter()
            .filter(|s| s.kind == kind && s.start <= t && t < s.end)
            .count()
    }

    /// The full progress series for `kind`, sampled every `step_secs`
    /// from zero through `horizon`: `(seconds, active tasks)` pairs.
    pub fn series(&self, kind: SpanKind, step_secs: f64, horizon: SimTime) -> Vec<(f64, usize)> {
        let mut out = Vec::new();
        let mut t = 0.0f64;
        let end = horizon.as_secs_f64();
        while t <= end + step_secs {
            out.push((t, self.active_at(kind, SimTime::from_secs_f64(t))));
            t += step_secs;
        }
        out
    }

    /// Latest end time across all spans (job completion from the record).
    pub fn last_end(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Heap series of one reducer: `(seconds, bytes)`.
    pub fn heap_series(&self, reducer: usize) -> Vec<(f64, u64)> {
        self.heap
            .iter()
            .filter(|h| h.reducer == reducer)
            .map(|h| (h.at.as_secs_f64(), h.bytes))
            .collect()
    }

    /// First and last end of `kind` spans, if any exist.
    pub fn kind_window(&self, kind: SpanKind) -> Option<(SimTime, SimTime)> {
        let mut first: Option<SimTime> = None;
        let mut last: Option<SimTime> = None;
        for s in self.spans.iter().filter(|s| s.kind == kind) {
            first = Some(first.map_or(s.start, |f| f.min(s.start)));
            last = Some(last.map_or(s.end, |l| l.max(s.end)));
        }
        Some((first?, last?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn active_counts_overlapping_spans() {
        let mut t = Timeline::default();
        t.span(SpanKind::Map, 0, secs(0.0), secs(10.0));
        t.span(SpanKind::Map, 1, secs(5.0), secs(15.0));
        t.span(SpanKind::Shuffle, 0, secs(2.0), secs(20.0));
        assert_eq!(t.active_at(SpanKind::Map, secs(1.0)), 1);
        assert_eq!(t.active_at(SpanKind::Map, secs(7.0)), 2);
        assert_eq!(t.active_at(SpanKind::Map, secs(12.0)), 1);
        assert_eq!(t.active_at(SpanKind::Map, secs(15.0)), 0, "end exclusive");
        assert_eq!(t.active_at(SpanKind::Shuffle, secs(7.0)), 1);
    }

    #[test]
    fn series_covers_horizon() {
        let mut t = Timeline::default();
        t.span(SpanKind::Map, 0, secs(0.0), secs(4.0));
        let s = t.series(SpanKind::Map, 1.0, secs(5.0));
        assert!(s.len() >= 6);
        assert_eq!(s[0], (0.0, 1));
        assert_eq!(s[5].1, 0);
    }

    #[test]
    fn windows_and_heap() {
        let mut t = Timeline::default();
        t.span(SpanKind::Output, 3, secs(8.0), secs(9.0));
        t.span(SpanKind::Output, 4, secs(2.0), secs(5.0));
        assert_eq!(
            t.kind_window(SpanKind::Output),
            Some((secs(2.0), secs(9.0)))
        );
        assert_eq!(t.kind_window(SpanKind::Map), None);
        assert_eq!(t.last_end(), secs(9.0));
        t.heap_sample(secs(1.0), 2, 100);
        t.heap_sample(secs(2.0), 2, 200);
        t.heap_sample(secs(2.0), 3, 999);
        assert_eq!(t.heap_series(2), vec![(1.0, 100), (2.0, 200)]);
    }

    #[test]
    fn handoff_marks_are_recorded_and_filterable() {
        let mut t = Timeline::default();
        t.handoff_mark(secs(5.0), 0, 0, 120, 4096);
        t.handoff_mark(secs(9.0), 0, 0, 40, 1024);
        t.handoff_mark(secs(9.5), 2, 2, 7, 64);
        assert_eq!(t.handoffs.len(), 3);
        assert_eq!(t.handoff_series(0), vec![(5.0, 120), (9.0, 40)]);
        assert_eq!(t.handoff_series(1), Vec::<(f64, u64)>::new());
        assert_eq!(t.handoffs[2].downstream_map, 2);
    }

    #[test]
    fn speculation_marks_are_recorded_and_countable() {
        let mut t = Timeline::default();
        t.speculation_mark(secs(30.0), SpecTaskKind::Map, 4, SpecEvent::Launched, 2);
        t.speculation_mark(secs(55.0), SpecTaskKind::Map, 4, SpecEvent::Won, 2);
        t.speculation_mark(secs(55.0), SpecTaskKind::Map, 4, SpecEvent::Cancelled, 0);
        t.speculation_mark(secs(60.0), SpecTaskKind::Reduce, 1, SpecEvent::Launched, 3);
        assert_eq!(t.speculation.len(), 4);
        assert_eq!(t.speculation_count(SpecEvent::Launched), 2);
        assert_eq!(t.speculation_count(SpecEvent::Won), 1);
        assert_eq!(t.speculation_count(SpecEvent::Cancelled), 1);
        assert_eq!(t.speculation[3].kind, SpecTaskKind::Reduce);
        assert_eq!(t.speculation[3].node, 3);
    }

    #[test]
    fn snapshot_marks_are_recorded_and_filterable() {
        let mut t = Timeline::default();
        t.snapshot_mark(secs(10.0), 1, 0, 40, 40);
        t.snapshot_mark(secs(20.0), 1, 1, 90, 85);
        t.snapshot_mark(secs(20.0), 2, 0, 7, 7);
        assert_eq!(t.snapshots.len(), 3);
        assert_eq!(t.snapshot_series(1), vec![(10.0, 40), (20.0, 90)]);
        assert_eq!(t.snapshot_series(0), Vec::<(f64, u64)>::new());
        assert_eq!(t.snapshots[2].entries, 7);
    }
}
