//! `mr-cluster` — execution-driven discrete-event simulation of the
//! paper's 16-node testbed.
//!
//! The simulator runs *real application code* on *real (scaled) record
//! streams*: map functions produce actual records, barrier-less reducers
//! absorb them through the actual partial-result stores (including real
//! spill files and the real KV store), and outputs are checked for
//! correctness. Only the clock is virtual — task durations, disk
//! transfers and network flows are charged against `mr-sim` resources
//! calibrated to the paper's hardware (§6: 15 slaves, 4+4 slots each,
//! GbE, 64 MB chunks, replication 3).
//!
//! What the model captures — because the figures depend on it:
//!
//! * **Mapper slack** (§3.2, §6.2): heterogeneous map finish times leave a
//!   window in which barrier reducers idle but barrier-less reducers work.
//! * **Shuffle contention**: per-NIC processor sharing; many mappers
//!   feeding one reducer stretch flows.
//! * **Reducer waves** (Figure 8): reduce slots are held until output is
//!   written, so 70 reducers on 60 slots run in two waves.
//! * **Memory behaviour** (Figures 5, 9, 10): heap sampling of the real
//!   stores, OOM kills, spill and KV disk traffic charged to the disks.
//! * **Fault tolerance** (§3.1): nodes can be killed mid-run; lost map
//!   output and dead reducers are re-executed, as in Hadoop.
//! * **Job chains** ([`ChainSimExecutor`]): concatenated jobs share one
//!   event loop; streaming handoff edges are scheduled as timeline
//!   events so stage N+1 map work measurably overlaps stage N reduce
//!   work, and a dead upstream reduce attempt restarts its downstream
//!   consumers.

mod chain;
mod costs;
mod executor;
mod input;
mod params;
mod placement;
mod report;
mod service;
mod timeline;
mod trace;

pub use chain::{ChainSimExecutor, ChainSimReport};
pub use costs::CostModel;
pub use executor::{Fault, SimExecutor};
pub use input::{FnInput, SimInput};
pub use params::ClusterParams;
pub use placement::{SlotLedger, TieBreak};
pub use report::{Outcome, SimReport};
pub use service::{
    analytic_output, ServiceParams, ServiceSimExecutor, ServiceSimReport, SimJobOutcome, SimJobSpec,
};
pub use timeline::{
    HandoffMark, HeapSample, SnapshotMark, SpanKind, SpecEvent, SpecTaskKind, SpeculationMark,
    TaskSpan, Timeline,
};
