//! Static description of the simulated cluster.

use mr_core::{CombinerPolicy, DeadlinePolicy, SnapshotPolicy, SpeculationPolicy, StoreIndex};

/// Cluster hardware and scheduling parameters.
///
/// Defaults mirror §6 of the paper: 15 worker nodes (the 16th ran the
/// JobTracker/NameNode and no tasks), 4 map + 4 reduce slots per node to
/// fill dual quad-cores, Gigabit Ethernet, 64 MB chunks, replication 3.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Worker (slave) node count.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots: usize,
    /// Raw NIC capacity in bytes/second.
    pub link_bytes_per_sec: f64,
    /// Access-link derating (the paper blames oversubscribed links for
    /// extra mapper slack).
    pub oversubscription: f64,
    /// Sequential disk bandwidth in bytes/second.
    pub disk_bytes_per_sec: f64,
    /// DFS chunk size in bytes.
    pub chunk_bytes: u64,
    /// DFS replication factor.
    pub replication: usize,
    /// Per-node speed spread: node factors are `exp(N(0, hetero_sigma))`.
    /// "Datacenters with commodity hardware often show differences in
    /// performance between machines" (§2).
    pub hetero_sigma: f64,
    /// Per-task duration noise: `exp(N(0, task_noise_sigma))`.
    pub task_noise_sigma: f64,
    /// Map-side combining policy for simulated jobs. Figure sweeps toggle
    /// this cluster-level knob without touching the `JobConfig`; when it
    /// is `Disabled` the executor falls back to the job's own
    /// `JobConfig::combiner`. Either way the application must also opt in
    /// via `combine_enabled()`.
    pub combiner: CombinerPolicy,
    /// Partial-store index override for simulated jobs (reduce-side
    /// stores *and* map-side combiner buffers). `Some` wins over the
    /// job's own `JobConfig::store_index`; `None` leaves the job's
    /// choice in force. Ablation sweeps A/B this cluster-wide without
    /// touching per-job configs.
    pub store_index: Option<StoreIndex>,
    /// Snapshot-policy override for simulated jobs. `Some` wins over the
    /// job's own `JobConfig::snapshots`; `None` leaves the job's choice
    /// in force. Figure sweeps toggle early-answer estimation
    /// cluster-wide without touching per-job configs; time-driven
    /// policies tick on the *virtual* clock, scheduled as timeline
    /// events and charged via `CostModel::snapshot_cpu_per_record`.
    pub snapshots: Option<SnapshotPolicy>,
    /// Speculative-execution override for simulated jobs. `Some` wins
    /// over the job's own `JobConfig::speculation`; `None` leaves the
    /// job's choice in force. Straggler sweeps toggle backup attempts
    /// cluster-wide without touching per-job configs.
    pub speculation: Option<SpeculationPolicy>,
    /// Deadline override for simulated jobs. `Some` wins over the job's
    /// own `JobConfig::deadline`; `None` leaves the job's choice in
    /// force.
    pub deadline: Option<DeadlinePolicy>,
    /// Master seed for placement, heterogeneity and noise.
    pub seed: u64,
}

impl ClusterParams {
    /// The paper's testbed (§6) with the given seed.
    pub fn paper_testbed(seed: u64) -> Self {
        ClusterParams {
            nodes: 15,
            map_slots: 4,
            reduce_slots: 4,
            link_bytes_per_sec: 125.0 * 1024.0 * 1024.0,
            oversubscription: 2.0,
            disk_bytes_per_sec: 80.0 * 1024.0 * 1024.0,
            chunk_bytes: 64 << 20,
            replication: 3,
            hetero_sigma: 0.25,
            task_noise_sigma: 0.12,
            combiner: CombinerPolicy::Disabled,
            store_index: None,
            snapshots: None,
            speculation: None,
            deadline: None,
            seed,
        }
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.nodes * self.map_slots
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.nodes * self.reduce_slots
    }

    /// Validates internal consistency (panics on nonsense).
    pub fn validate(&self) {
        assert!(self.nodes >= 1);
        assert!(self.map_slots >= 1 && self.reduce_slots >= 1);
        assert!(self.link_bytes_per_sec > 0.0 && self.disk_bytes_per_sec > 0.0);
        assert!(self.oversubscription >= 1.0);
        assert!(self.chunk_bytes > 0);
        assert!(self.replication >= 1 && self.replication <= self.nodes);
        assert!(self.hetero_sigma >= 0.0 && self.task_noise_sigma >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let p = ClusterParams::paper_testbed(1);
        p.validate();
        assert_eq!(p.total_map_slots(), 60);
        assert_eq!(p.total_reduce_slots(), 60);
        assert_eq!(p.chunk_bytes, 64 << 20);
    }

    #[test]
    #[should_panic]
    fn replication_beyond_nodes_rejected() {
        let mut p = ClusterParams::paper_testbed(1);
        p.nodes = 2;
        p.validate();
    }
}
