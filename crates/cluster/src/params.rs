//! Static description of the simulated cluster.

use mr_core::{
    CacheBudget, CombinerPolicy, DeadlinePolicy, JobConfig, SnapshotPolicy, SpeculationPolicy,
    StoreIndex, TracePolicy,
};

/// Cluster hardware and scheduling parameters.
///
/// Defaults mirror §6 of the paper: 15 worker nodes (the 16th ran the
/// JobTracker/NameNode and no tasks), 4 map + 4 reduce slots per node to
/// fill dual quad-cores, Gigabit Ethernet, 64 MB chunks, replication 3.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Worker (slave) node count.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots: usize,
    /// Raw NIC capacity in bytes/second.
    pub link_bytes_per_sec: f64,
    /// Access-link derating (the paper blames oversubscribed links for
    /// extra mapper slack).
    pub oversubscription: f64,
    /// Sequential disk bandwidth in bytes/second.
    pub disk_bytes_per_sec: f64,
    /// DFS chunk size in bytes.
    pub chunk_bytes: u64,
    /// DFS replication factor.
    pub replication: usize,
    /// Per-node speed spread: node factors are `exp(N(0, hetero_sigma))`.
    /// "Datacenters with commodity hardware often show differences in
    /// performance between machines" (§2).
    pub hetero_sigma: f64,
    /// Per-task duration noise: `exp(N(0, task_noise_sigma))`.
    pub task_noise_sigma: f64,
    /// Map-side combining policy for simulated jobs. Figure sweeps toggle
    /// this cluster-level knob without touching the `JobConfig`; when it
    /// is `Disabled` the executor falls back to the job's own
    /// `JobConfig::combiner`. Either way the application must also opt in
    /// via `combine_enabled()`.
    pub combiner: CombinerPolicy,
    /// Partial-store index override for simulated jobs (reduce-side
    /// stores *and* map-side combiner buffers). `Some` wins over the
    /// job's own `JobConfig::store_index`; `None` leaves the job's
    /// choice in force. Ablation sweeps A/B this cluster-wide without
    /// touching per-job configs.
    pub store_index: Option<StoreIndex>,
    /// Snapshot-policy override for simulated jobs. `Some` wins over the
    /// job's own `JobConfig::snapshots`; `None` leaves the job's choice
    /// in force. Figure sweeps toggle early-answer estimation
    /// cluster-wide without touching per-job configs; time-driven
    /// policies tick on the *virtual* clock, scheduled as timeline
    /// events and charged via `CostModel::snapshot_cpu_per_record`.
    pub snapshots: Option<SnapshotPolicy>,
    /// Speculative-execution override for simulated jobs. `Some` wins
    /// over the job's own `JobConfig::speculation`; `None` leaves the
    /// job's choice in force. Straggler sweeps toggle backup attempts
    /// cluster-wide without touching per-job configs.
    pub speculation: Option<SpeculationPolicy>,
    /// Deadline override for simulated jobs. `Some` wins over the job's
    /// own `JobConfig::deadline`; `None` leaves the job's choice in
    /// force.
    pub deadline: Option<DeadlinePolicy>,
    /// Trace-recording override for simulated jobs. `Some` wins over the
    /// job's own `JobConfig::trace`; `None` leaves the job's choice in
    /// force. Sweeps that only need final numbers can switch trace
    /// export off cluster-wide.
    pub trace: Option<TracePolicy>,
    /// Result-cache override for jobs replayed on the *local* executor.
    /// `Some` wins over the job's own `JobConfig::cache`; `None` leaves
    /// the job's choice in force. Sweeps A/B cross-job memoization
    /// cluster-wide without touching per-job configs.
    pub cache: Option<CacheBudget>,
    /// Worker-pool width override for jobs replayed on the *local*
    /// executor (`JobConfig::pool_workers`). `Some` wins over the job's
    /// own knob; `None` leaves the job's choice in force. The simulator
    /// itself schedules by slots, not OS threads, so this only matters
    /// when a cluster-configured job is handed to [`mr_core::LocalRunner`].
    pub pool_workers: Option<usize>,
    /// Master seed for placement, heterogeneity and noise.
    pub seed: u64,
}

impl ClusterParams {
    /// The paper's testbed (§6) with the given seed.
    pub fn paper_testbed(seed: u64) -> Self {
        ClusterParams {
            nodes: 15,
            map_slots: 4,
            reduce_slots: 4,
            link_bytes_per_sec: 125.0 * 1024.0 * 1024.0,
            oversubscription: 2.0,
            disk_bytes_per_sec: 80.0 * 1024.0 * 1024.0,
            chunk_bytes: 64 << 20,
            replication: 3,
            hetero_sigma: 0.25,
            task_noise_sigma: 0.12,
            combiner: CombinerPolicy::Disabled,
            store_index: None,
            snapshots: None,
            speculation: None,
            deadline: None,
            trace: None,
            cache: None,
            pool_workers: None,
            seed,
        }
    }

    /// Resolves the job's effective config under this cluster: every
    /// cluster-level policy override applied on top of the job's own
    /// knobs, one knob at a time (see the knob table on [`JobConfig`]).
    /// `Some`/enabled overrides win; `None`/disabled leave the job's
    /// choice in force. Both executors run on the config this returns,
    /// so override precedence lives in exactly one place.
    pub fn effective_config(&self, cfg: &JobConfig) -> JobConfig {
        let mut cfg = cfg.clone();
        if self.combiner.is_enabled() {
            cfg.combiner = self.combiner;
        }
        if let Some(index) = self.store_index {
            cfg.store_index = index;
        }
        if let Some(policy) = self.snapshots {
            cfg.snapshots = policy;
        }
        if let Some(policy) = self.speculation {
            cfg.speculation = policy;
        }
        if let Some(policy) = self.deadline {
            cfg.deadline = policy;
        }
        if let Some(policy) = self.trace {
            cfg.trace = policy;
        }
        if let Some(budget) = self.cache {
            cfg.cache = budget;
        }
        if let Some(workers) = self.pool_workers {
            cfg.pool_workers = workers;
        }
        cfg
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.nodes * self.map_slots
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> usize {
        self.nodes * self.reduce_slots
    }

    /// Validates internal consistency (panics on nonsense).
    pub fn validate(&self) {
        assert!(self.nodes >= 1);
        assert!(self.map_slots >= 1 && self.reduce_slots >= 1);
        assert!(self.link_bytes_per_sec > 0.0 && self.disk_bytes_per_sec > 0.0);
        assert!(self.oversubscription >= 1.0);
        assert!(self.chunk_bytes > 0);
        assert!(self.replication >= 1 && self.replication <= self.nodes);
        assert!(self.hetero_sigma >= 0.0 && self.task_noise_sigma >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let p = ClusterParams::paper_testbed(1);
        p.validate();
        assert_eq!(p.total_map_slots(), 60);
        assert_eq!(p.total_reduce_slots(), 60);
        assert_eq!(p.chunk_bytes, 64 << 20);
    }

    #[test]
    #[should_panic]
    fn replication_beyond_nodes_rejected() {
        let mut p = ClusterParams::paper_testbed(1);
        p.nodes = 2;
        p.validate();
    }

    /// Override precedence, knob by knob: a `None`/disabled cluster knob
    /// leaves the job's choice in force; a `Some`/enabled one wins.
    #[test]
    fn effective_config_applies_each_override_with_cluster_wins() {
        let job = JobConfig::new(4)
            .combiner(CombinerPolicy::Enabled { budget_bytes: 111 })
            .store_index(StoreIndex::Ordered)
            .snapshots(SnapshotPolicy::EveryRecords { records: 7 })
            .speculation(SpeculationPolicy::Enabled {
                check_secs: 3.0,
                slowdown: 1.5,
            })
            .deadline(DeadlinePolicy::At { secs: 50.0 })
            .trace(TracePolicy::Disabled)
            .cache(CacheBudget::Limit { bytes: 123 });

        let job = job.pool_workers(3);

        // No overrides set: the job's own knobs pass through untouched.
        let p = ClusterParams::paper_testbed(1);
        let eff = p.effective_config(&job);
        assert_eq!(eff.pool_workers, 3);
        assert_eq!(eff.combiner, job.combiner);
        assert_eq!(eff.store_index, StoreIndex::Ordered);
        assert_eq!(eff.snapshots, SnapshotPolicy::EveryRecords { records: 7 });
        assert_eq!(eff.speculation, job.speculation);
        assert_eq!(eff.deadline, DeadlinePolicy::At { secs: 50.0 });
        assert_eq!(eff.trace, TracePolicy::Disabled);
        assert_eq!(eff.cache, CacheBudget::Limit { bytes: 123 });

        // Every override set: the cluster's choice wins on each knob.
        let mut p = ClusterParams::paper_testbed(1);
        p.combiner = CombinerPolicy::Enabled { budget_bytes: 999 };
        p.store_index = Some(StoreIndex::Hashed);
        p.snapshots = Some(SnapshotPolicy::Disabled);
        p.speculation = Some(SpeculationPolicy::Disabled);
        p.deadline = Some(DeadlinePolicy::Disabled);
        p.trace = Some(TracePolicy::Enabled);
        p.cache = Some(CacheBudget::Disabled);
        p.pool_workers = Some(8);
        let eff = p.effective_config(&job);
        assert_eq!(eff.pool_workers, 8);
        assert_eq!(eff.combiner, CombinerPolicy::Enabled { budget_bytes: 999 });
        assert_eq!(eff.store_index, StoreIndex::Hashed);
        assert_eq!(eff.snapshots, SnapshotPolicy::Disabled);
        assert_eq!(eff.speculation, SpeculationPolicy::Disabled);
        assert_eq!(eff.deadline, DeadlinePolicy::Disabled);
        assert_eq!(eff.trace, TracePolicy::Enabled);
        assert_eq!(
            eff.cache,
            CacheBudget::Disabled,
            "Some(Disabled) forces off"
        );

        // The one asymmetric knob: a *disabled* cluster combiner is "no
        // override", not "force off" (sweeps toggle combining on, never
        // off), so the job's combiner survives.
        let mut p = ClusterParams::paper_testbed(1);
        p.combiner = CombinerPolicy::Disabled;
        assert_eq!(
            p.effective_config(&job).combiner,
            CombinerPolicy::Enabled { budget_bytes: 111 }
        );

        // Untouched non-policy fields ride along unchanged.
        assert_eq!(p.effective_config(&job).reducers, 4);
        assert_eq!(p.effective_config(&job).seed, job.seed);
    }
}
