//! Per-node slot accounting and placement policy, shared by every
//! executor in this crate.
//!
//! The single-job executor ([`crate::executor`]), the chain executor
//! ([`crate::chain`]) and the multi-tenant service simulator
//! ([`crate::service`]) all schedule tasks onto the same abstraction: a
//! cluster of nodes, each with a fixed number of map slots and reduce
//! slots, where a node's death frees its slots and removes it from
//! placement. Before this module each executor carried its own
//! `node_alive`/`map_slots_used`/`red_slots_used` triple and its own
//! copy of the placement loops — and the chain executor's stage-2 tasks
//! briefly ran *slotless*, which is exactly how the cross-job
//! slot-contention deadlock of the fault-torture suite slipped in.
//! [`SlotLedger`] is now the one place slots are taken, released and
//! surveyed.
//!
//! Placement policies are deliberately tiny and deterministic, because
//! pinned traces diff them byte-for-byte:
//!
//! * [`SlotLedger::first_free_map`] — lowest-index alive node with a
//!   free map slot; the caller then prefers chunk-local pending maps on
//!   that node (Hadoop's scheduler order).
//! * [`SlotLedger::least_loaded`] — alive node with the fewest used
//!   slots of a kind. Ties break by [`TieBreak`]: the single-job
//!   executor takes the lowest index; the chain executor's stage-2
//!   placement takes the *highest*, spreading dependent-stage tasks away
//!   from the low indexes the stage-1 loops fill first.

/// How [`SlotLedger::least_loaded`] breaks a load tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the lowest node index (single-job executor reducers).
    LowIndex,
    /// Prefer the highest node index (chain stage-2 tasks, which spread
    /// away from the stage-1 tasks packed onto low indexes).
    HighIndex,
}

/// Which nodes are alive and how many slots of each kind they have in
/// use — the executors' shared placement substrate.
#[derive(Debug, Clone)]
pub struct SlotLedger {
    /// Liveness per node; a dead node never places and holds no slots.
    pub alive: Vec<bool>,
    /// Map slots in use per node.
    pub map_used: Vec<usize>,
    /// Reduce slots in use per node.
    pub red_used: Vec<usize>,
    /// Map slots per node.
    pub map_cap: usize,
    /// Reduce slots per node.
    pub red_cap: usize,
}

impl SlotLedger {
    /// A ledger for `nodes` alive nodes with `map_cap`/`red_cap` slots
    /// each and nothing running.
    pub fn new(nodes: usize, map_cap: usize, red_cap: usize) -> Self {
        SlotLedger {
            alive: vec![true; nodes],
            map_used: vec![0; nodes],
            red_used: vec![0; nodes],
            map_cap,
            red_cap,
        }
    }

    /// Cluster size, dead nodes included.
    pub fn nodes(&self) -> usize {
        self.alive.len()
    }

    /// Whether any node is still alive.
    pub fn any_alive(&self) -> bool {
        self.alive.iter().any(|&a| a)
    }

    /// Used slots of one kind on one node.
    pub fn used(&self, is_map: bool, n: usize) -> usize {
        if is_map {
            self.map_used[n]
        } else {
            self.red_used[n]
        }
    }

    /// Per-node slot capacity of one kind.
    pub fn cap(&self, is_map: bool) -> usize {
        if is_map {
            self.map_cap
        } else {
            self.red_cap
        }
    }

    /// Whether node `n` is alive with a free slot of the given kind.
    pub fn has_free(&self, is_map: bool, n: usize) -> bool {
        self.alive[n] && self.used(is_map, n) < self.cap(is_map)
    }

    /// Free slots of one kind across all alive nodes.
    pub fn free_slots(&self, is_map: bool) -> usize {
        (0..self.nodes())
            .filter(|&n| self.alive[n])
            .map(|n| self.cap(is_map) - self.used(is_map, n))
            .sum()
    }

    /// Lowest-index alive node with a free map slot (the map-placement
    /// scan order every executor uses).
    pub fn first_free_map(&self) -> Option<usize> {
        (0..self.nodes()).find(|&n| self.has_free(true, n))
    }

    /// Alive node with the fewest used slots of a kind, `None` when
    /// every slot is occupied. Load ties break per `tie`.
    pub fn least_loaded(&self, is_map: bool, tie: TieBreak) -> Option<usize> {
        let candidates = (0..self.nodes()).filter(|&n| self.has_free(is_map, n));
        match tie {
            TieBreak::LowIndex => candidates.min_by_key(|&n| (self.used(is_map, n), n)),
            TieBreak::HighIndex => {
                candidates.min_by_key(|&n| (self.used(is_map, n), std::cmp::Reverse(n)))
            }
        }
    }

    /// Takes one slot of the given kind on node `n`.
    pub fn take(&mut self, is_map: bool, n: usize) {
        if is_map {
            self.map_used[n] += 1;
        } else {
            self.red_used[n] += 1;
        }
    }

    /// Releases one slot of the given kind on node `n`.
    pub fn release(&mut self, is_map: bool, n: usize) {
        if is_map {
            self.map_used[n] -= 1;
        } else {
            self.red_used[n] -= 1;
        }
    }

    /// Kills node `n`: removes it from placement and zeroes its slot
    /// counters (everything it ran is gone with it). Idempotent.
    pub fn fail_node(&mut self, n: usize) {
        self.alive[n] = false;
        self.map_used[n] = 0;
        self.red_used[n] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_policies_and_tie_breaks() {
        let mut s = SlotLedger::new(3, 2, 1);
        assert_eq!(s.first_free_map(), Some(0));
        // Equal load everywhere: the tie break decides.
        assert_eq!(s.least_loaded(false, TieBreak::LowIndex), Some(0));
        assert_eq!(s.least_loaded(false, TieBreak::HighIndex), Some(2));
        s.take(true, 0);
        s.take(true, 0);
        assert_eq!(s.first_free_map(), Some(1));
        s.take(false, 0);
        s.take(false, 2);
        assert_eq!(s.least_loaded(false, TieBreak::LowIndex), Some(1));
        s.take(false, 1);
        assert_eq!(s.least_loaded(false, TieBreak::LowIndex), None);
        assert_eq!(s.free_slots(true), 4);
        s.release(false, 1);
        assert!(s.has_free(false, 1));
    }

    #[test]
    fn fail_node_zeroes_and_removes() {
        let mut s = SlotLedger::new(2, 1, 1);
        s.take(true, 0);
        s.take(false, 0);
        s.fail_node(0);
        assert!(!s.alive[0]);
        assert_eq!(s.map_used[0], 0);
        assert_eq!(s.red_used[0], 0);
        assert_eq!(s.first_free_map(), Some(1));
        assert!(s.any_alive());
        s.fail_node(1);
        assert!(!s.any_alive());
        assert_eq!(s.first_free_map(), None);
        assert_eq!(s.least_loaded(false, TieBreak::LowIndex), None);
    }
}
